//! Load generator: drives M concurrent sessions with simulator traces
//! and reports throughput, ingest-to-output latency percentiles, and a
//! per-session isolation check against single-session synchronous
//! replay.
//!
//! ```text
//! loadgen [--sessions M] [--events N] [--program NAME] [--shards N]
//!         [--queue N] [--policy P] [--seed S] [--out BENCH_server.json]
//!         [--chaos] [--snapshot-interval N] [--crash-prob P]
//!         [--panic-prob P] [--journal-fail-prob P] [--stall-prob P]
//! ```
//!
//! `--events` is per session; the default workload is 64 sessions ×
//! 10000 events of mixed mouse/keyboard/timer traffic, each session on
//! its own deterministic seed.
//!
//! Sessions are opened with `observe: true`, so every run also exercises
//! the observability surface: it dumps the Prometheus scrape
//! (`BENCH_metrics.prom`), the reconstructed span trees of a seeded
//! traced workload (`BENCH_trace.json`), and a heat-annotated DOT
//! rendering of the graph (`BENCH_heat.dot`), and fails if span trees on
//! either scheduler do not match the graph's causal structure.
//!
//! `--chaos` turns on the deterministic fault-injection harness: traces
//! are laced with poison-pill events and queue bursts, sessions suffer
//! seeded runtime crashes and journal append failures, and shard workers
//! stall — all derived from `--seed`. The run fails (nonzero exit) if
//! any session's recovery fails, any recovery replays more than the
//! snapshot interval, any recovered session's final output diverges from
//! an uninterrupted synchronous replay, or (with panics enabled) fewer
//! than a quarter of the sessions were actually hit by a panic.
//!
//! `--fleet` hosts a *scenario fleet*: hundreds of distinct seeded FElm
//! programs synthesized by `elm-synth`, opened as ad-hoc sources across
//! the shards under a merged chaos + overload-flood fault plan and a
//! per-event fuel budget. Every program is judged against its
//! machine-checkable temporal property, a budget-governed synchronous
//! replay (scheduler equivalence), a `describe` wire round-trip, and
//! clean subscription-closure semantics; a deliberately mutated oracle
//! must be caught and shrunk to a minimal repro. Any failed check makes
//! the verdict in `BENCH_fleet.json` FAILED and the exit code nonzero.
//!
//! `--cluster` is the kill-chaos harness for cluster mode: it spawns a
//! 3-process `elm-server` peer group, opens keyed sessions at their
//! rendezvous-placement primaries, and kills the busiest peer mid-stream
//! at a `FaultPlan`-scheduled point. Drivers ride the failover through
//! the retrying [`ClusterClient`] (`moved` redirects, `last_seq` resume)
//! and the run fails unless every killed session resumes on a surviving
//! peer with its final output byte-identical to an uninterrupted
//! governed replay, every takeover is counted in the survivors'
//! `elm_cluster_*` metric families, and replication recorded no gaps.
//! Replication lag, takeover latency, and per-peer session counts land
//! in `BENCH_cluster.json`. `--fleet --cluster` composes the two: the
//! cluster hosts distinct synthesized FElm programs instead of the
//! dashboard builtin, under the same kill.
//!
//! `--partition` is the split-brain chaos harness: instead of killing a
//! peer it schedules a deterministic network partition (via the
//! children's `--partition-window` netfault proxy) that isolates the
//! busiest primary from both other peers long enough to trigger a
//! quorum-side takeover, then heals. While the partition holds, the
//! isolated zombie keeps serving its clients at the old epoch and the
//! adopters serve the same sessions at the new one; concurrent probes
//! from both sides record who answers. The verdict fails unless at most
//! one peer serves each session *per epoch*, every stale-epoch append
//! the zombie flushes at heal is rejected and counted
//! (`elm_cluster_fenced_total`), the zombie demotes to redirect-only,
//! replication records no gaps, and every session's final value is
//! byte-identical to an uninterrupted governed replay. `--no-fencing`
//! disables the epoch fences in the children — run it to watch the
//! verdict catch the divergence that fencing prevents (the run exits
//! nonzero by design).

use std::process::exit;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use elm_environment::{FaultPlan, Simulator};
use elm_runtime::{
    assemble, dot, reachable_from, NodeId, PlainSpanTree, PlainValue, Trace, Tracer,
};
use elm_server::{
    AdmissionConfig, BackpressurePolicy, ProgramSpec, RestartPolicy, Server, ServerConfig,
    SessionConfig, Update,
};
use elm_signals::{Engine, Program};
use serde_json::Value as Json;

const BATCH: usize = 64;

struct Args {
    sessions: usize,
    events: usize,
    program: Option<String>,
    shards: usize,
    queue: usize,
    policy: BackpressurePolicy,
    seed: u64,
    out: String,
    chaos: bool,
    overload: bool,
    fleet: bool,
    cluster: bool,
    partition: bool,
    no_fencing: bool,
    fleet_programs: usize,
    snapshot_interval: u64,
    crash_prob: f64,
    panic_prob: f64,
    journal_fail_prob: f64,
    stall_prob: f64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sessions: 64,
            events: 10_000,
            program: None,
            shards: ServerConfig::default().shards,
            queue: 1024,
            policy: BackpressurePolicy::Block,
            seed: 42,
            out: "BENCH_server.json".to_string(),
            chaos: false,
            overload: false,
            fleet: false,
            cluster: false,
            partition: false,
            no_fencing: false,
            fleet_programs: 224,
            snapshot_interval: 256,
            crash_prob: 0.0005,
            panic_prob: 0.005,
            journal_fail_prob: 0.001,
            stall_prob: 0.01,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--sessions M] [--events N] [--program NAME] [--shards N] \
         [--queue N] [--policy block|drop-oldest|coalesce] [--seed S] [--out FILE] \
         [--chaos] [--overload] [--fleet] [--cluster] [--partition] [--no-fencing] \
         [--fleet-programs N] [--snapshot-interval N] \
         [--crash-prob P] [--panic-prob P] [--journal-fail-prob P] [--stall-prob P]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut a = Args::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--sessions" => a.sessions = value().parse().unwrap_or_else(|_| usage()),
            "--events" => a.events = value().parse().unwrap_or_else(|_| usage()),
            "--program" => a.program = Some(value()),
            "--shards" => a.shards = value().parse().unwrap_or_else(|_| usage()),
            "--queue" => a.queue = value().parse().unwrap_or_else(|_| usage()),
            "--policy" => a.policy = BackpressurePolicy::parse(&value()).unwrap_or_else(|| usage()),
            "--seed" => a.seed = value().parse().unwrap_or_else(|_| usage()),
            "--out" => a.out = value(),
            "--chaos" => a.chaos = true,
            "--overload" => a.overload = true,
            "--fleet" => a.fleet = true,
            "--cluster" => a.cluster = true,
            "--partition" => a.partition = true,
            "--no-fencing" => a.no_fencing = true,
            "--fleet-programs" => a.fleet_programs = value().parse().unwrap_or_else(|_| usage()),
            "--snapshot-interval" => {
                a.snapshot_interval = value().parse().unwrap_or_else(|_| usage())
            }
            "--crash-prob" => a.crash_prob = value().parse().unwrap_or_else(|_| usage()),
            "--panic-prob" => a.panic_prob = value().parse().unwrap_or_else(|_| usage()),
            "--journal-fail-prob" => {
                a.journal_fail_prob = value().parse().unwrap_or_else(|_| usage())
            }
            "--stall-prob" => a.stall_prob = value().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    a
}

/// Replays `trace` through a fresh single-session synchronous runtime,
/// skipping inputs the program does not declare — exactly the events the
/// server admits — and returns the final output value. In chaos mode
/// this is the uninterrupted oracle every recovered session must match.
fn sync_replay(server: &Server, program: &str, trace: &Trace) -> PlainValue {
    let (_, graph) = server
        .registry()
        .resolve(ProgramSpec::Builtin(program))
        .expect("program resolved once already");
    let mut running = Program::from_dynamic_graph(graph.clone()).start(Engine::Synchronous);
    for e in &trace.events {
        if graph.input_named(&e.input).is_some() {
            running
                .send_named(&e.input, e.value.to_value())
                .expect("replay event");
        }
    }
    running.drain_raw().expect("replay drain");
    PlainValue::from_value(running.current()).expect("replay value is plain")
}

/// Runs a seeded simulator workload through an *observed* single-session
/// runtime on `engine` and checks that the reconstructed span trees match
/// the graph's causal structure: every tree's node set is contained in the
/// reachable subgraph of its ingress node, and at least one tree covers
/// that subgraph exactly. Returns the plain span trees plus the tracer's
/// per-node timing snapshots on success.
fn trace_check(
    server: &Server,
    program: &str,
    seed: u64,
    engine: Engine,
) -> Result<(Vec<PlainSpanTree>, Vec<elm_runtime::NodeTimingSnapshot>), String> {
    const TRACE_EVENTS: usize = 200;
    let (_, graph) = server
        .registry()
        .resolve(ProgramSpec::Builtin(program))
        .map_err(|e| format!("resolve: {e}"))?;
    let tracer = Tracer::for_graph(&graph);
    tracer.set_enabled(true);
    let mut running =
        Program::from_dynamic_graph(graph.clone()).start_observed(engine, Some(tracer.clone()));
    let workload = Simulator::workload(seed, TRACE_EVENTS);
    for e in &workload.events {
        if graph.input_named(&e.input).is_some() {
            running
                .send_named(&e.input, e.value.to_value())
                .map_err(|e| format!("send: {e}"))?;
        }
    }
    running.drain_raw().map_err(|e| format!("drain: {e}"))?;
    running.stop();

    let spans = tracer.drain_spans();
    let trees = assemble(&spans, &graph);
    if trees.is_empty() {
        return Err("no span trees reconstructed".to_string());
    }
    let mut exact = 0usize;
    for tree in &trees {
        let roots = tree.roots();
        if roots.is_empty() {
            return Err(format!("trace {} has no root span", tree.trace.0));
        }
        let mut reachable = std::collections::BTreeSet::new();
        for &r in &roots {
            reachable.extend(reachable_from(&graph, NodeId(tree.spans[r].node)));
        }
        let nodes = tree.node_set();
        if !nodes.is_subset(&reachable) {
            return Err(format!(
                "trace {}: span nodes {nodes:?} escape the reachable subgraph {reachable:?}",
                tree.trace.0
            ));
        }
        if nodes == reachable {
            exact += 1;
        }
    }
    if exact == 0 {
        return Err(format!(
            "none of {} trees covered its reachable subgraph exactly",
            trees.len()
        ));
    }
    let plain = trees.iter().map(|t| t.to_plain(&graph)).collect();
    Ok((plain, tracer.node_timings()))
}

/// Writes a benchmark artifact; a failed write is recorded as a check
/// failure (a bench run whose evidence is missing must not report OK).
fn write_artifact(path: &str, contents: String, failures: &mut Vec<String>) {
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("loadgen: wrote {path}"),
        Err(e) => failures.push(format!("cannot write artifact {path}: {e}")),
    }
}

/// Sums every `elm_restarts_total{...}` sample in Prometheus exposition
/// text — the scrape-side view of supervised restarts.
fn scraped_restarts_total(metrics_text: &str) -> u64 {
    metrics_text
        .lines()
        .filter(|l| l.starts_with("elm_restarts_total"))
        .filter_map(|l| l.rsplit_once(' '))
        .filter_map(|(_, v)| v.parse::<f64>().ok())
        .sum::<f64>() as u64
}

/// Sums every sample of one exactly-named Prometheus family (bare or
/// labelled) in exposition text.
fn scraped_family_sum(metrics_text: &str, family: &str) -> u64 {
    metrics_text
        .lines()
        .filter(|l| !l.starts_with('#') && l.starts_with(family))
        .filter(|l| matches!(l.as_bytes().get(family.len()), Some(b'{') | Some(b' ')))
        .filter_map(|l| l.rsplit_once(' '))
        .filter_map(|(_, v)| v.parse::<f64>().ok())
        .sum::<f64>() as u64
}

/// Duplicates events in bursts according to the plan's flood stream —
/// the overload traffic shape. The laced trace is what both the server
/// and the oracle replay see, so isolation checks stay exact.
fn lace_with_floods(trace: &elm_runtime::Trace, plan: &FaultPlan, id: u64) -> elm_runtime::Trace {
    use rand::Rng;
    if plan.flood <= 0.0 || plan.flood_len == 0 {
        return trace.clone();
    }
    let mut rng = plan.rng(elm_environment::fault::STREAM_FLOOD, id);
    let mut out = elm_runtime::Trace::new();
    for e in &trace.events {
        out.events.push(e.clone());
        if rng.gen_bool(plan.flood) {
            for _ in 0..plan.flood_len {
                out.events.push(e.clone());
            }
        }
    }
    out
}

/// [`sync_replay`] under the same fuel/alloc/depth governor the live
/// sessions ran with — and deliberately *no* deadline, since wall-clock
/// traps would not replay deterministically. Fuel traps do: the oracle
/// traps (and rolls back) exactly the events the live session trapped.
fn governed_sync_replay(
    server: &Server,
    program: &str,
    trace: &elm_runtime::Trace,
    limits: elm_runtime::EventLimits,
) -> PlainValue {
    let (_, graph) = server
        .registry()
        .resolve(ProgramSpec::Builtin(program))
        .expect("program resolved once already");
    let mut running = Program::from_dynamic_graph(graph.clone()).start(Engine::Synchronous);
    running.set_governor(Some(limits), None);
    for e in &trace.events {
        if graph.input_named(&e.input).is_some() {
            running
                .send_named(&e.input, e.value.to_value())
                .expect("replay event");
        }
    }
    running.drain_raw().expect("replay drain");
    PlainValue::from_value(running.current()).expect("replay value is plain")
}

/// The `--fleet` harness: a scenario fleet of distinct synthesized FElm
/// programs hosted concurrently under a merged chaos + flood fault plan.
///
/// Per scenario it checks: the temporal property from `elm-synth`'s
/// oracle on a budget-governed synchronous replay, the live session's
/// final value against that replay (scheduler equivalence), a `describe`
/// round-trip (source + graph fingerprint + declared inputs), and that
/// the subscription stream ends with exactly one `Closed` and nothing
/// after it. Fleet-wide it requires chaos recoveries to have fired and
/// all succeeded, flood lacing to have been active, and — as a mutation
/// test of the oracle itself — a planted `CountUp -> +2` miscompilation
/// to be caught and shrunk to a minimal program + trace repro.
fn run_fleet(args: &Args) -> ! {
    use elm_runtime::EventLimits;
    use elm_synth::{
        check_property, run_local, shrink, FleetMetrics, GenConfig, Generator, ProgramIr, Property,
        Scenario, HOSTILE_TRIGGER,
    };
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::atomic::{AtomicUsize, Ordering};

    let programs = args.fleet_programs.max(1);
    let events = args.events.min(200);
    let plan = FaultPlan::chaos(args.seed).merge(&FaultPlan::flood(args.seed));
    let limits = EventLimits {
        fuel: 200_000,
        max_alloc_cells: 500_000,
        max_depth: 10_000,
    };
    eprintln!(
        "loadgen: FLEET {} distinct synthesized programs x {} events each, chaos+flood, seed {}",
        programs, events, args.seed
    );

    let generator = Generator::new(GenConfig {
        hostile: 0.12,
        counter_shape: 0.25,
        ..GenConfig::default()
    });
    // Consecutive seeds occasionally collide on tiny shapes; keep drawing
    // until the fleet holds `programs` *distinct* sources.
    let mut scenarios: Vec<Scenario> = Vec::with_capacity(programs);
    let mut seen_sources = BTreeSet::new();
    let mut next_seed = args.seed;
    while scenarios.len() < programs {
        let s = generator.scenario(next_seed, events);
        next_seed += 1;
        if seen_sources.insert(s.source.clone()) {
            scenarios.push(s);
        }
    }
    let laced: Arc<Vec<elm_runtime::Trace>> = Arc::new(
        scenarios
            .iter()
            .enumerate()
            .map(|(i, s)| lace_with_floods(&s.trace, &plan, i as u64))
            .collect(),
    );
    let base_events: u64 = scenarios.iter().map(|s| s.trace.events.len() as u64).sum();
    let driven_events: u64 = laced.iter().map(|t| t.events.len() as u64).sum();
    let hostile_programs = scenarios.iter().filter(|s| s.ir.is_hostile()).count();
    let hostile_triggers: u64 = scenarios
        .iter()
        .enumerate()
        .filter(|(_, s)| s.ir.is_hostile())
        .map(|(i, _)| {
            laced[i]
                .events
                .iter()
                .filter(|e| e.value == PlainValue::Int(HOSTILE_TRIGGER))
                .count() as u64
        })
        .sum();

    let metrics = FleetMetrics::new();
    let mut failures: Vec<String> = Vec::new();
    if driven_events <= base_events {
        failures.push("flood lacing never fired (overload inactive)".to_string());
    }

    let server = Arc::new(Server::start(ServerConfig {
        shards: args.shards,
        session: SessionConfig {
            queue_capacity: args.queue,
            policy: BackpressurePolicy::Block,
            snapshot_interval: args.snapshot_interval.max(1),
            journal_segment: args.snapshot_interval.max(1) as usize,
            restart: RestartPolicy {
                max_restarts: 100_000,
                ..RestartPolicy::default()
            },
            faults: plan,
            limits: Some(limits),
            // Wall-clock deadlines would trap nondeterministically and
            // break the replay oracle; fuel/alloc/depth budgets alone.
            event_timeout: None,
            ..SessionConfig::default()
        },
        idle_timeout: None,
        admission: AdmissionConfig::default(),
    }));

    let mut session_ids = Vec::with_capacity(programs);
    let mut subs = Vec::with_capacity(programs);
    for (i, s) in scenarios.iter().enumerate() {
        metrics.host(&s.shape);
        let info = server
            .open(ProgramSpec::Source(&s.source), None, None, false)
            .unwrap_or_else(|e| {
                eprintln!(
                    "loadgen: FLEET open failed for scenario {i} (seed {}): {e}\n{}",
                    s.seed, s.source
                );
                exit(1);
            });
        let rx = server.subscribe(info.session).unwrap_or_else(|e| {
            eprintln!(
                "loadgen: FLEET subscribe failed for session {}: {e}",
                info.session
            );
            exit(1);
        });
        session_ids.push(info.session);
        subs.push(rx);
    }

    // Concurrent ingest across a bounded worker pool: each worker claims
    // the next un-driven scenario, batches its laced trace in, and waits
    // for the session's queue to drain.
    let started = Instant::now();
    let sessions = Arc::new(session_ids.clone());
    let next = Arc::new(AtomicUsize::new(0));
    let workers = programs.min(32);
    let mut drivers = Vec::with_capacity(workers);
    for _ in 0..workers {
        let server = Arc::clone(&server);
        let sessions = Arc::clone(&sessions);
        let traces = Arc::clone(&laced);
        let next = Arc::clone(&next);
        drivers.push(thread::spawn(move || -> Vec<String> {
            let mut errs = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= sessions.len() {
                    break;
                }
                let session = sessions[i];
                let events: Vec<(String, PlainValue)> = traces[i]
                    .events
                    .iter()
                    .map(|e| (e.input.clone(), e.value.clone()))
                    .collect();
                let mut dead = false;
                for chunk in events.chunks(BATCH) {
                    if let Err(e) = server.batch(session, chunk) {
                        errs.push(format!("session {session}: batch failed: {e}"));
                        dead = true;
                        break;
                    }
                }
                while !dead {
                    match server.query(session) {
                        Ok(q) if q.queue_len == 0 => break,
                        Ok(_) => thread::sleep(Duration::from_millis(1)),
                        Err(e) => {
                            errs.push(format!("session {session}: drain query failed: {e}"));
                            dead = true;
                        }
                    }
                }
            }
            errs
        }));
    }
    for d in drivers {
        failures.extend(d.join().expect("fleet driver thread"));
    }
    let elapsed = started.elapsed();

    // Pass 1 — judge every live session: governed replay oracle, property
    // check, describe round-trip, and per-shape latency.
    #[derive(Default)]
    struct ShapeAgg {
        programs: u64,
        driven_events: u64,
        output_changes: u64,
        traps: u64,
        latency_p99_max_us: u64,
        latency_samples: u64,
    }
    let mut shapes: BTreeMap<String, ShapeAgg> = BTreeMap::new();
    let mut finals: Vec<Option<i64>> = vec![None; programs];
    for (i, s) in scenarios.iter().enumerate() {
        let session = session_ids[i];
        let trace = &laced[i];
        // The budget-governed synchronous replay is both the
        // scheduler-equivalence oracle and the stream the temporal
        // property is judged on.
        let local = match run_local(&s.source, trace, limits) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!(
                    "scenario {i} (seed {}): governed replay failed: {e}",
                    s.seed
                ));
                continue;
            }
        };
        metrics.traps.add(local.traps.len() as u64);
        finals[i] = Some(local.final_value);

        match server.query(session) {
            Ok(q) => {
                if q.value != PlainValue::Int(local.final_value) {
                    metrics.divergences.inc();
                    failures.push(format!(
                        "scenario {i} (seed {}, shape {}): served {:?} diverged from \
                         governed synchronous replay Int({})",
                        s.seed, s.shape, q.value, local.final_value
                    ));
                }
            }
            Err(e) => failures.push(format!("scenario {i}: final query failed: {e}")),
        }

        match check_property(s.property, &local.outputs, local.final_value, trace) {
            Ok(()) => metrics.checks_passed.inc(),
            Err(why) => {
                metrics.checks_failed.inc();
                // A real violation: shrink it so the verdict carries a
                // minimal repro, not a 200-event haystack.
                let fails = |ir: &ProgramIr, t: &Trace| {
                    run_local(&ir.render(), t, limits)
                        .map(|r| {
                            check_property(ir.property(), &r.outputs, r.final_value, t).is_err()
                        })
                        .unwrap_or(false)
                };
                let small = shrink(&s.ir, trace, fails, 2_000);
                metrics.shrink_attempts.add(small.attempts);
                failures.push(format!(
                    "scenario {i} (seed {}, shape {}, property {}): VIOLATED: {why}; \
                     shrunk to {} node(s) / {} event(s):\n{}",
                    s.seed,
                    s.shape,
                    s.property.name(),
                    small.ir.nodes.len(),
                    small.trace.events.len(),
                    small.ir.render()
                ));
            }
        }

        // Liveness rider for counting shapes: the governed replay's own
        // output stream must never lag the applied count by more than
        // the failover deadline (trivially true here, so it guards the
        // checker itself against regressions; the observed-stream check
        // in pass 2 is the one that bites).
        if matches!(s.property, Property::ExactCount) {
            match check_property(
                Property::BoundedResponse { deadline_events: 8 },
                &local.outputs,
                local.final_value,
                trace,
            ) {
                Ok(()) => metrics.checks_passed.inc(),
                Err(why) => {
                    metrics.checks_failed.inc();
                    failures.push(format!(
                        "scenario {i} (seed {}): bounded_response on replay stream: {why}",
                        s.seed
                    ));
                }
            }
        }

        match server.describe(session) {
            Ok(info) => {
                if info.source.as_deref() != Some(s.source.as_str()) {
                    failures.push(format!(
                        "scenario {i}: describe returned a different source"
                    ));
                }
                match server
                    .registry()
                    .resolve_with_source(ProgramSpec::Source(&s.source))
                {
                    Ok((_, graph, _)) => {
                        if info.fingerprint != graph.fingerprint() {
                            failures.push(format!(
                                "scenario {i}: describe fingerprint {} != recompiled {}",
                                info.fingerprint,
                                graph.fingerprint()
                            ));
                        }
                    }
                    Err(e) => failures.push(format!("scenario {i}: re-resolve failed: {e}")),
                }
                let mut want: Vec<String> = s.ir.inputs().iter().map(|n| n.to_string()).collect();
                let mut got = info.inputs.clone();
                want.sort();
                got.sort();
                if got != want {
                    failures.push(format!(
                        "scenario {i}: describe inputs {got:?} != declared {want:?}"
                    ));
                }
            }
            Err(e) => failures.push(format!("scenario {i}: describe failed: {e}")),
        }

        let agg = shapes.entry(s.shape.clone()).or_default();
        agg.programs += 1;
        agg.driven_events += trace.events.len() as u64;
        agg.traps += local.traps.len() as u64;
        match server.session_stats(session) {
            Ok(st) => {
                agg.latency_p99_max_us = agg.latency_p99_max_us.max(st.latency.p99_us);
                agg.latency_samples += st.latency.count;
            }
            Err(e) => failures.push(format!("scenario {i}: session stats failed: {e}")),
        }
    }

    // Fleet-wide recovery / fault-coverage verdicts, taken while every
    // session is still live (closing drops their recovery counters).
    let (global, _) = server.stats();
    if global.recovery_failed > 0 {
        failures.push(format!(
            "{} session(s) failed recovery under the merged fault plan",
            global.recovery_failed
        ));
    }
    if global.recovery.restarts == 0 {
        failures.push("chaos crashes never forced a recovery".to_string());
    }
    if hostile_programs == 0 {
        failures.push("fleet hosted no hostile fuel profiles".to_string());
    }
    // A hostile fold behind a value-transforming lift never sees the raw
    // trigger, so per-program trap parity is not a theorem; but across
    // enough hostile programs *some* fold sits on a pass-through subtree.
    if hostile_programs >= 16 && hostile_triggers > 0 && metrics.traps.get() == 0 {
        failures.push(format!(
            "{hostile_triggers} hostile trigger events produced zero governor traps"
        ));
    }

    // Pass 2 — close every session and check closure semantics on its
    // subscription stream: all Changed updates precede exactly one
    // Closed, the close reason is clean, and the last observed value
    // agrees with the replay oracle.
    for (i, s) in scenarios.iter().enumerate() {
        let session = session_ids[i];
        if let Err(e) = server.close(session) {
            failures.push(format!("scenario {i}: close failed: {e}"));
        }
        let mut changes = 0u64;
        let mut observed: Vec<i64> = Vec::new();
        let mut last_change: Option<PlainValue> = None;
        let mut closed: Option<String> = None;
        loop {
            match subs[i].recv_timeout(Duration::from_secs(30)) {
                Ok(Update::Changed { value, .. }) => {
                    if closed.is_some() {
                        failures.push(format!("scenario {i}: output after Closed"));
                    }
                    changes += 1;
                    if let PlainValue::Int(v) = value {
                        observed.push(v);
                    }
                    last_change = Some(value);
                }
                Ok(Update::Closed { reason, .. }) => {
                    if closed.is_some() {
                        failures.push(format!("scenario {i}: duplicate Closed"));
                    }
                    closed = Some(reason);
                }
                Ok(Update::Moved { peer, .. }) => {
                    // A single-process fleet has no peers; a redirect
                    // here means the cluster layer misfired.
                    failures.push(format!("scenario {i}: unexpected moved redirect to {peer}"));
                    closed = Some("moved".to_string());
                }
                Err(_) => break,
            }
        }
        match closed.as_deref() {
            None => failures.push(format!("scenario {i}: subscription never saw Closed")),
            Some("recovery_failed") => {
                failures.push(format!("scenario {i}: closed by failed recovery"))
            }
            Some(_) => {}
        }
        if let (Some(final_value), Some(last)) = (finals[i], last_change) {
            if last != PlainValue::Int(final_value) {
                failures.push(format!(
                    "scenario {i}: last streamed value {last:?} != replay final Int({final_value})"
                ));
            }
        }
        // Satellite liveness oracle: the *observed* subscriber stream of
        // a counting shape must track the applied count within the
        // bounded-response deadline — the stream may coalesce but must
        // not silently fall ever further behind.
        if matches!(s.property, Property::ExactCount) {
            if let Some(final_value) = finals[i] {
                match check_property(
                    Property::BoundedResponse { deadline_events: 8 },
                    &observed,
                    final_value,
                    &laced[i],
                ) {
                    Ok(()) => metrics.checks_passed.inc(),
                    Err(why) => {
                        metrics.checks_failed.inc();
                        failures.push(format!(
                            "scenario {i} (seed {}): bounded_response on observed stream: {why}",
                            s.seed
                        ));
                    }
                }
            }
        }
        if let Some(agg) = shapes.get_mut(&s.shape) {
            agg.output_changes += changes;
        }
    }

    // Mutation-tested oracle: miscompile a counter (`CountUp` -> `+2`),
    // require the property checker to catch it, and shrink the failing
    // pair to the canonical minimal repro.
    let mutation_generator = Generator::new(GenConfig {
        counter_shape: 1.0,
        ..GenConfig::default()
    });
    let planted = mutation_generator.scenario(args.seed ^ 0x6d75_7461, 48);
    let mut mutation = Json::Map(vec![("caught".to_string(), Json::Bool(false))]);
    let mutated = planted
        .ir
        .render_mutated()
        .expect("counter shape always has a CountUp fold");
    match run_local(&mutated, &planted.trace, limits) {
        Ok(run) => {
            if check_property(
                planted.property,
                &run.outputs,
                run.final_value,
                &planted.trace,
            )
            .is_ok()
            {
                failures.push("planted oracle mutation was NOT caught".to_string());
            } else {
                let fails = |ir: &ProgramIr, t: &Trace| {
                    ir.render_mutated()
                        .and_then(|src| run_local(&src, t, limits).ok())
                        .map(|r| {
                            check_property(Property::ExactCount, &r.outputs, r.final_value, t)
                                .is_err()
                        })
                        .unwrap_or(false)
                };
                let small = shrink(&planted.ir, &planted.trace, fails, 4_000);
                metrics.shrink_attempts.add(small.attempts);
                let repro = small.ir.render_mutated().unwrap_or_default();
                println!(
                    "mutation oracle: planted CountUp->+2 violation caught; shrunk to \
                     {} node(s) / {} event(s) in {} attempt(s):",
                    small.ir.nodes.len(),
                    small.trace.events.len(),
                    small.attempts
                );
                for line in repro.lines() {
                    println!("    {line}");
                }
                if small.ir.nodes.len() != 2 || small.trace.events.len() != 1 {
                    failures.push(format!(
                        "mutation repro not minimal: {} node(s) / {} event(s)",
                        small.ir.nodes.len(),
                        small.trace.events.len()
                    ));
                }
                mutation = Json::Map(vec![
                    ("caught".to_string(), Json::Bool(true)),
                    (
                        "repro_nodes".to_string(),
                        Json::U64(small.ir.nodes.len() as u64),
                    ),
                    (
                        "repro_events".to_string(),
                        Json::U64(small.trace.events.len() as u64),
                    ),
                    ("shrink_attempts".to_string(), Json::U64(small.attempts)),
                    ("repro_source".to_string(), Json::Str(repro)),
                ]);
            }
        }
        Err(e) => failures.push(format!("mutated counter failed to run: {e}")),
    }

    // The fleet families render through the shared metrics registry and
    // append onto the server's own Prometheus scrape.
    let scrape = server.metrics_text() + &metrics.render();
    for family in [
        "elm_fleet_programs_hosted_total",
        "elm_fleet_property_checks_total",
        "elm_fleet_shrink_attempts_total",
        "elm_fleet_scheduler_divergences_total",
        "elm_fleet_governor_traps_total",
    ] {
        if !scrape.contains(family) {
            failures.push(format!("scrape is missing the {family} family"));
        }
    }
    if scraped_family_sum(&scrape, "elm_fleet_programs_hosted_total") != programs as u64 {
        failures.push("scraped hosted-programs total disagrees with the fleet size".to_string());
    }
    write_artifact("BENCH_fleet_metrics.prom", scrape, &mut failures);

    for f in &failures {
        eprintln!("loadgen: FLEET FAILURE: {f}");
    }
    let verdict = if failures.is_empty() { "OK" } else { "FAILED" };
    println!(
        "fleet: {} programs ({} shapes, {} hostile) x {} base events ({} after flood lacing), \
         {:.2}s, {:.0} events/sec",
        programs,
        shapes.len(),
        hostile_programs,
        base_events,
        driven_events,
        elapsed.as_secs_f64(),
        driven_events as f64 / elapsed.as_secs_f64()
    );
    println!(
        "fleet checks: {} passed, {} failed, {} divergences, {} traps, {} restarts, \
         {} recovery failures",
        metrics.checks_passed.get(),
        metrics.checks_failed.get(),
        metrics.divergences.get(),
        metrics.traps.get(),
        global.recovery.restarts,
        global.recovery_failed
    );
    println!("fleet verdict = {verdict}");

    let shapes_json = Json::Map(
        shapes
            .iter()
            .map(|(shape, a)| {
                (
                    shape.clone(),
                    Json::Map(vec![
                        ("programs".to_string(), Json::U64(a.programs)),
                        ("driven_events".to_string(), Json::U64(a.driven_events)),
                        (
                            "events_per_sec".to_string(),
                            Json::F64(a.driven_events as f64 / elapsed.as_secs_f64()),
                        ),
                        ("output_changes".to_string(), Json::U64(a.output_changes)),
                        ("traps".to_string(), Json::U64(a.traps)),
                        (
                            "latency_p99_max_us".to_string(),
                            Json::U64(a.latency_p99_max_us),
                        ),
                        ("latency_samples".to_string(), Json::U64(a.latency_samples)),
                    ]),
                )
            })
            .collect(),
    );
    let report = Json::Map(vec![
        (
            "benchmark".to_string(),
            Json::Str("server-fleet".to_string()),
        ),
        ("programs".to_string(), Json::U64(programs as u64)),
        ("events_per_program".to_string(), Json::U64(events as u64)),
        ("base_events".to_string(), Json::U64(base_events)),
        ("driven_events".to_string(), Json::U64(driven_events)),
        ("seed".to_string(), Json::U64(args.seed)),
        ("shards".to_string(), Json::U64(args.shards as u64)),
        ("elapsed_s".to_string(), Json::F64(elapsed.as_secs_f64())),
        (
            "events_per_sec".to_string(),
            Json::F64(driven_events as f64 / elapsed.as_secs_f64()),
        ),
        (
            "hostile_programs".to_string(),
            Json::U64(hostile_programs as u64),
        ),
        ("hostile_triggers".to_string(), Json::U64(hostile_triggers)),
        (
            "checks_passed".to_string(),
            Json::U64(metrics.checks_passed.get()),
        ),
        (
            "checks_failed".to_string(),
            Json::U64(metrics.checks_failed.get()),
        ),
        (
            "divergences".to_string(),
            Json::U64(metrics.divergences.get()),
        ),
        ("traps".to_string(), Json::U64(metrics.traps.get())),
        ("restarts".to_string(), Json::U64(global.recovery.restarts)),
        (
            "recovery_failed".to_string(),
            Json::U64(global.recovery_failed),
        ),
        ("mutation".to_string(), mutation),
        ("shapes".to_string(), shapes_json),
        (
            "failures".to_string(),
            Json::Seq(failures.iter().map(|f| Json::Str(f.clone())).collect()),
        ),
        ("verdict".to_string(), Json::Str(verdict.to_string())),
    ]);
    let pretty = serde_json::to_string_pretty(&report).expect("report serialize");
    let out = if args.out == "BENCH_server.json" {
        "BENCH_fleet.json".to_string()
    } else {
        args.out.clone()
    };
    let mut code = i32::from(!failures.is_empty());
    if let Err(e) = std::fs::write(&out, pretty + "\n") {
        eprintln!("loadgen: FLEET FAILURE: cannot write {out}: {e}");
        code = 1;
    } else {
        eprintln!("loadgen: wrote {out}");
    }
    exit(code)
}

/// The `--overload` harness: a deliberately over-driven server with
/// admission control, fueled sessions, hostile builtin programs, a
/// control-plane liveness probe, and a slow-subscriber segment — all
/// checked against deterministic oracles and the scraped metrics.
fn run_overload(args: &Args) -> ! {
    use elm_environment::fault::STREAM_RUNAWAY;
    use elm_runtime::{EventLimits, TrapKind};
    use elm_server::client::{Client, RetryStats};
    use elm_server::net::{self, serve_with, NetConfig};
    use elm_server::EnqueueOutcome;
    use rand::Rng;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let sessions = args.sessions.clamp(1, 6);
    let events = args.events.min(1_200);
    let governed_events = 300usize;
    let plan = FaultPlan::flood(args.seed);
    let limits = EventLimits {
        fuel: 200_000,
        max_alloc_cells: 500_000,
        max_depth: 10_000,
    };
    eprintln!(
        "loadgen: OVERLOAD {} counter sessions x {} laced events + runaway/membomb x {}, seed {}",
        sessions, events, governed_events, args.seed
    );

    let server = Arc::new(Server::start(ServerConfig {
        shards: 2,
        session: SessionConfig {
            queue_capacity: args.queue,
            policy: BackpressurePolicy::Block,
            limits: Some(limits),
            // Wall-clock deadlines would trap nondeterministically and
            // break the replay oracles; the overload run relies on the
            // deterministic fuel/alloc/depth budget alone.
            event_timeout: None,
            ..SessionConfig::default()
        },
        idle_timeout: None,
        admission: AdmissionConfig {
            enabled: true,
            session_events_per_sec: 4_000.0,
            session_burst: 128.0,
            session_cells_per_sec: 40_000_000.0,
            session_cells_burst: 4_000_000.0,
            ..AdmissionConfig::default()
        },
    }));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    {
        let server = Arc::clone(&server);
        thread::spawn(move || serve_with(server, listener, NetConfig::default()));
    }
    // A second front end with a tiny outbound queue and a short write
    // deadline, so the slow-subscriber segment converges quickly.
    let slow_listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let slow_addr = slow_listener.local_addr().expect("addr");
    {
        let server = Arc::clone(&server);
        let config = NetConfig {
            outbound_queue: 8,
            write_deadline: Duration::from_millis(100),
            ..NetConfig::default()
        };
        thread::spawn(move || serve_with(server, slow_listener, config));
    }

    let mut failures: Vec<String> = Vec::new();

    // --- data-plane flood through retrying TCP clients ---
    let traces: Vec<elm_runtime::Trace> = Simulator::fan_out(args.seed, sessions, events)
        .iter()
        .enumerate()
        .map(|(i, t)| lace_with_floods(t, &plan, i as u64))
        .collect();
    let mut counter_ids = Vec::with_capacity(sessions);
    for _ in 0..sessions {
        let info = server
            .open(ProgramSpec::Builtin("counter"), None, None, false)
            .expect("open counter");
        counter_ids.push(info.session);
    }
    let runaway_sid = server
        .open(ProgramSpec::Builtin("runaway"), None, None, false)
        .expect("open runaway")
        .session;
    let membomb_sid = server
        .open(ProgramSpec::Builtin("membomb"), None, None, false)
        .expect("open membomb")
        .session;

    // Control-plane probe: while the flood runs, stats/query/metrics on
    // a dedicated connection must be answered 100% of the time.
    let stop_probe = Arc::new(AtomicBool::new(false));
    let probe_attempted = Arc::new(AtomicU64::new(0));
    let probe_answered = Arc::new(AtomicU64::new(0));
    let prober = {
        let stop = Arc::clone(&stop_probe);
        let attempted = Arc::clone(&probe_attempted);
        let answered = Arc::clone(&probe_answered);
        let probe_session = counter_ids[0];
        let mut client = Client::connect(addr, args.seed ^ 0xdead).expect("probe connect");
        thread::spawn(move || {
            let verbs = [
                "{\"cmd\":\"stats\"}".to_string(),
                format!("{{\"cmd\":\"query\",\"session\":{probe_session}}}"),
                format!("{{\"cmd\":\"stats\",\"session\":{probe_session}}}"),
            ];
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                attempted.fetch_add(1, Ordering::Relaxed);
                match client.request(&verbs[i % verbs.len()]) {
                    Ok(reply) if matches!(reply.get("ok"), Some(Json::Bool(true))) => {
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                i += 1;
                thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let started = Instant::now();
    let mut drivers = Vec::new();
    for (i, &session) in counter_ids.iter().enumerate() {
        let trace = traces[i].clone();
        let seed = args.seed + 1 + i as u64;
        drivers.push(thread::spawn(move || -> Result<RetryStats, String> {
            let mut client = Client::connect(addr, seed).map_err(|e| format!("connect: {e}"))?;
            for e in &trace.events {
                let value = serde_json::to_string(
                    &serde_json::to_value(&e.value).expect("value serializes"),
                )
                .expect("value serializes");
                let reply = client
                    .event(session, &e.input, &value)
                    .map_err(|e| format!("event: {e}"))?;
                if reply.get("error").is_some() {
                    return Err(format!("event gave up after retries: {reply:?}"));
                }
            }
            Ok(client.stats())
        }));
    }
    // The hostile sessions: seeded triggers flip them into the runaway /
    // allocator-bomb branch; benign events just count.
    let mut governed = Vec::new();
    for (j, sid) in [runaway_sid, membomb_sid].into_iter().enumerate() {
        let seed = args.seed + 1000 + j as u64;
        let mut rng = plan.rng(STREAM_RUNAWAY, j as u64);
        let trigger_prob = plan.runaway.max(0.05);
        governed.push(thread::spawn(
            move || -> Result<(u64, u64, RetryStats), String> {
                let mut client =
                    Client::connect(addr, seed).map_err(|e| format!("connect: {e}"))?;
                let (mut triggers, mut benign) = (0u64, 0u64);
                for _ in 0..governed_events {
                    let hot = rng.gen_bool(trigger_prob);
                    let value = if hot { "{\"Int\":1}" } else { "{\"Int\":0}" };
                    let reply = client
                        .event(sid, "Keyboard.lastPressed", value)
                        .map_err(|e| format!("event: {e}"))?;
                    if reply.get("error").is_some() {
                        return Err(format!("event gave up after retries: {reply:?}"));
                    }
                    if hot {
                        triggers += 1;
                    } else {
                        benign += 1;
                    }
                }
                Ok((triggers, benign, client.stats()))
            },
        ));
    }

    let mut retry = RetryStats::default();
    for d in drivers {
        match d.join().expect("driver thread") {
            Ok(s) => {
                retry.requests += s.requests;
                retry.sheds += s.sheds;
                retry.retries += s.retries;
                retry.gave_up += s.gave_up;
            }
            Err(e) => failures.push(format!("counter driver: {e}")),
        }
    }
    let mut hostile: Vec<(u64, u64)> = Vec::new();
    for g in governed {
        match g.join().expect("governed driver") {
            Ok((triggers, benign, s)) => {
                hostile.push((triggers, benign));
                retry.requests += s.requests;
                retry.sheds += s.sheds;
                retry.retries += s.retries;
                retry.gave_up += s.gave_up;
            }
            Err(e) => failures.push(format!("hostile driver: {e}")),
        }
    }
    // Drain every queue before judging.
    for &sid in counter_ids.iter().chain([runaway_sid, membomb_sid].iter()) {
        while server.query(sid).expect("query").queue_len > 0 {
            thread::sleep(Duration::from_millis(1));
        }
    }
    let elapsed = started.elapsed();
    stop_probe.store(true, Ordering::Relaxed);
    prober.join().expect("prober thread");

    // --- verdict 1: the server stayed live for the control plane ---
    let attempted = probe_attempted.load(Ordering::Relaxed);
    let answered = probe_answered.load(Ordering::Relaxed);
    println!("control-plane probes: {answered}/{attempted} answered during the flood");
    if attempted == 0 || answered != attempted {
        failures.push(format!(
            "control plane dropped probes: {answered}/{attempted} answered"
        ));
    }

    // --- verdict 2: admitted traffic was applied exactly (isolation) ---
    let mut mismatches = 0usize;
    for (i, &sid) in counter_ids.iter().enumerate() {
        let served = server.query(sid).expect("final query").value;
        let replayed = governed_sync_replay(&server, "counter", &traces[i], limits);
        if served != replayed {
            mismatches += 1;
            eprintln!(
                "loadgen: OVERLOAD ISOLATION MISMATCH session {sid}: {served:?} != {replayed:?}"
            );
        }
    }
    if mismatches > 0 {
        failures.push(format!(
            "{mismatches} session(s) diverged from governed replay"
        ));
    }
    if retry.gave_up > 0 {
        failures.push(format!(
            "{} request(s) exhausted their retry budget",
            retry.gave_up
        ));
    }
    if retry.sheds == 0 {
        failures.push("the flood never tripped admission control (no sheds seen)".to_string());
    }
    println!(
        "retrying clients: {} requests, {} sheds ridden out, {} retries, {} gave up, {:.2}s",
        retry.requests,
        retry.sheds,
        retry.retries,
        retry.gave_up,
        elapsed.as_secs_f64()
    );

    // --- verdict 3: every hostile event trapped; the sessions live on ---
    for (label, sid, (triggers, benign), kind) in [
        (
            "runaway",
            runaway_sid,
            hostile.first().copied().unwrap_or((0, 0)),
            TrapKind::OutOfFuel,
        ),
        (
            "membomb",
            membomb_sid,
            hostile.get(1).copied().unwrap_or((0, 0)),
            TrapKind::OutOfMemory,
        ),
    ] {
        let stats = server.session_stats(sid).expect("hostile session stats");
        let value = server.query(sid).expect("hostile session query").value;
        println!(
            "{label}: {triggers} triggers -> {} traps ({} {}), {benign} benign -> value {value:?}",
            stats.traps.total(),
            stats.traps.count(kind),
            kind.label(),
        );
        if stats.traps.total() != triggers {
            failures.push(format!(
                "{label}: {triggers} hostile events but {} traps recorded",
                stats.traps.total()
            ));
        }
        if triggers > 0 && stats.traps.count(kind) == 0 {
            failures.push(format!("{label}: no {} trap recorded", kind.label()));
        }
        if value != PlainValue::Int(benign as i64) {
            failures.push(format!(
                "{label}: session did not survive cleanly: value {value:?} != Int({benign})"
            ));
        }
    }

    // --- verdict 4: a slow subscriber is cut, its peers unaffected ---
    let net_before = net::counters();
    let word_sid = server
        .open(ProgramSpec::Builtin("latest-word"), None, None, false)
        .expect("open latest-word")
        .session;
    let subscribe = || -> (std::net::TcpStream, std::io::BufReader<std::net::TcpStream>) {
        use std::io::{BufRead, Write};
        let stream = std::net::TcpStream::connect(slow_addr).expect("connect slow front end");
        let mut w = stream.try_clone().expect("clone");
        let mut r = std::io::BufReader::new(stream.try_clone().expect("clone"));
        w.write_all(format!("{{\"cmd\":\"subscribe\",\"session\":{word_sid}}}\n").as_bytes())
            .expect("subscribe");
        let mut line = String::new();
        r.read_line(&mut line).expect("subscribe reply");
        assert!(line.contains("\"ok\":true"), "{line}");
        (w, r)
    };
    let (_slow_stream, _slow_reader) = subscribe();
    let (_healthy_stream, mut healthy_reader) = subscribe();
    let healthy_seen = Arc::new(AtomicU64::new(0));
    {
        use std::io::BufRead;
        let seen = Arc::clone(&healthy_seen);
        thread::spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                match healthy_reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        if line.contains("\"update\":\"changed\"") {
                            seen.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        });
    }
    let fat = "w".repeat(48 * 1024);
    let cut_deadline = Instant::now() + Duration::from_secs(30);
    while net::counters().slow_disconnects == net_before.slow_disconnects {
        if Instant::now() > cut_deadline {
            failures.push("slow subscriber was never disconnected".to_string());
            break;
        }
        let _ = server.event(word_sid, "Words.input", PlainValue::Str(fat.clone()));
        let _ = server.query(word_sid);
    }
    // Peers must keep receiving after the cut. Sample the counter
    // *before* the tail event goes out: its update can reach the healthy
    // reader thread faster than two loads, and sampling afterwards would
    // swallow it and report a stall that never happened.
    let seen = healthy_seen.load(Ordering::Relaxed);
    while let Ok(EnqueueOutcome::Shed { .. }) =
        server.event(word_sid, "Words.input", PlainValue::Str("tail".to_string()))
    {
        thread::sleep(Duration::from_millis(10));
    }
    let _ = server.query(word_sid);
    let tail_deadline = Instant::now() + Duration::from_secs(10);
    while healthy_seen.load(Ordering::Relaxed) == seen {
        if Instant::now() > tail_deadline {
            failures.push("healthy subscriber stalled after the slow one was cut".to_string());
            break;
        }
        let _ = server.query(word_sid);
        thread::sleep(Duration::from_millis(10));
    }
    let net_after = net::counters();
    println!(
        "slow-subscriber segment: {} disconnect(s), healthy peer saw {} update(s)",
        net_after.slow_disconnects - net_before.slow_disconnects,
        healthy_seen.load(Ordering::Relaxed)
    );

    // --- verdict 5: the scraped metrics balance and agree ---
    let metrics_text = server.metrics_text();
    let offered = scraped_family_sum(&metrics_text, "elm_admission_offered_total");
    let admitted = scraped_family_sum(&metrics_text, "elm_admitted_total");
    let shed = scraped_family_sum(&metrics_text, "elm_shed_total");
    println!("scraped admission ledger: offered={offered} admitted={admitted} shed={shed}");
    if admitted + shed != offered {
        failures.push(format!(
            "admission ledger does not balance: {admitted} admitted + {shed} shed != {offered} offered"
        ));
    }
    if shed == 0 {
        failures.push("metrics report zero sheds despite the flood".to_string());
    }
    let scraped_traps = scraped_family_sum(&metrics_text, "elm_traps_total");
    let (global, _) = server.stats();
    if scraped_traps != global.traps.total() {
        failures.push(format!(
            "metrics report {scraped_traps} traps but sessions counted {}",
            global.traps.total()
        ));
    }
    if scraped_family_sum(&metrics_text, "elm_subscriber_disconnects_total") == 0 {
        failures.push("metrics report zero subscriber disconnects".to_string());
    }

    for f in &failures {
        eprintln!("loadgen: OVERLOAD FAILURE: {f}");
    }
    let verdict = if failures.is_empty() { "OK" } else { "FAILED" };
    println!("overload verdict = {verdict}");

    let report = Json::Map(vec![
        (
            "benchmark".to_string(),
            Json::Str("server-overload".to_string()),
        ),
        ("sessions".to_string(), Json::U64(sessions as u64)),
        ("events_per_session".to_string(), Json::U64(events as u64)),
        ("seed".to_string(), Json::U64(args.seed)),
        ("elapsed_s".to_string(), Json::F64(elapsed.as_secs_f64())),
        ("requests".to_string(), Json::U64(retry.requests)),
        ("sheds".to_string(), Json::U64(retry.sheds)),
        ("retries".to_string(), Json::U64(retry.retries)),
        ("gave_up".to_string(), Json::U64(retry.gave_up)),
        ("offered".to_string(), Json::U64(offered)),
        ("admitted".to_string(), Json::U64(admitted)),
        ("shed".to_string(), Json::U64(shed)),
        ("traps_total".to_string(), Json::U64(global.traps.total())),
        ("control_probes_attempted".to_string(), Json::U64(attempted)),
        ("control_probes_answered".to_string(), Json::U64(answered)),
        (
            "slow_subscriber_disconnects".to_string(),
            Json::U64(net_after.slow_disconnects - net_before.slow_disconnects),
        ),
        (
            "isolation_mismatches".to_string(),
            Json::U64(mismatches as u64),
        ),
        ("verdict".to_string(), Json::Str(verdict.to_string())),
    ]);
    let pretty = serde_json::to_string_pretty(&report).expect("report serialize");
    let out = if args.out == "BENCH_server.json" {
        "BENCH_overload.json".to_string()
    } else {
        args.out.clone()
    };
    let mut code = i32::from(!failures.is_empty());
    if let Err(e) = std::fs::write(&out, pretty + "\n") {
        eprintln!("loadgen: OVERLOAD FAILURE: cannot write {out}: {e}");
        code = 1;
    } else {
        eprintln!("loadgen: wrote {out}");
    }
    exit(code)
}

/// The `--cluster` kill-chaos harness: spawns a 3-process `elm-server`
/// peer group, opens keyed sessions at their rendezvous-placement
/// primaries, kills the busiest peer at a `FaultPlan`-scheduled point
/// mid-stream, and rides the failover through the retrying
/// [`elm_server::ClusterClient`]. The verdict fails unless every killed
/// session resumes on a surviving peer with outputs byte-identical to an
/// uninterrupted governed replay, the survivors' `elm_cluster_*` metric
/// families account for every takeover, and replication recorded no
/// gaps. With `--fleet` the sessions host distinct synthesized FElm
/// programs instead of the dashboard builtin.
fn run_cluster(args: &Args) -> ! {
    use elm_server::{place, Client, ClusterClient};
    use rand::Rng;
    use std::net::{SocketAddr, TcpListener, TcpStream};
    use std::process::{Child, Command, Stdio};
    use std::sync::atomic::{AtomicU64, Ordering};

    const PEERS: usize = 3;

    /// Numeric accessor over the vendored JSON value (small integers
    /// parse back as `I64`).
    fn jnum(v: &Json) -> Option<u64> {
        match v {
            Json::U64(n) => Some(*n),
            Json::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    fn kill_all(children: &mut [Option<Child>]) {
        for slot in children.iter_mut() {
            if let Some(mut c) = slot.take() {
                let _ = c.kill();
                let _ = c.wait();
            }
        }
    }

    let sessions = args.sessions.clamp(PEERS, 64);
    let events = args.events.clamp(50, 2_000);
    let snapshot_interval = args.snapshot_interval.clamp(1, 32);
    let mut failures: Vec<String> = Vec::new();
    eprintln!(
        "loadgen: CLUSTER {PEERS} peers, {sessions} sessions x {events} events, {} programs, seed {}",
        if args.fleet { "synthesized" } else { "dashboard" },
        args.seed
    );

    // --- programs, traces (pre-filtered to declared inputs, so event
    // index i carries sequence number i+1), and the replay oracle ---
    let registry = elm_server::Registry::standard();
    let mut sources: Vec<Option<String>> = Vec::with_capacity(sessions);
    let mut graphs: Vec<elm_runtime::SignalGraph> = Vec::with_capacity(sessions);
    let mut traces: Vec<Vec<elm_runtime::TraceEvent>> = Vec::with_capacity(sessions);
    if args.fleet {
        use elm_synth::{GenConfig, Generator};
        // Benign programs only: a hostile fuel bomb's wall-clock traps
        // would not replay deterministically across the kill.
        let generator = Generator::new(GenConfig {
            hostile: 0.0,
            ..GenConfig::default()
        });
        let mut seen = std::collections::BTreeSet::new();
        let mut next_seed = args.seed;
        while sources.len() < sessions {
            let s = generator.scenario(next_seed, events);
            next_seed += 1;
            if !seen.insert(s.source.clone()) {
                continue;
            }
            let (_, graph) = registry
                .resolve(ProgramSpec::Source(&s.source))
                .unwrap_or_else(|e| {
                    eprintln!(
                        "loadgen: CLUSTER synthesized program rejected: {e}\n{}",
                        s.source
                    );
                    exit(1);
                });
            traces.push(
                s.trace
                    .events
                    .iter()
                    .filter(|e| graph.input_named(&e.input).is_some())
                    .cloned()
                    .collect(),
            );
            sources.push(Some(s.source.clone()));
            graphs.push(graph);
        }
    } else {
        let (_, graph) = registry
            .resolve(ProgramSpec::Builtin("dashboard"))
            .expect("dashboard builtin");
        for trace in Simulator::fan_out(args.seed, sessions, events) {
            traces.push(
                trace
                    .events
                    .iter()
                    .filter(|e| graph.input_named(&e.input).is_some())
                    .cloned()
                    .collect(),
            );
            sources.push(None);
            graphs.push(graph.clone());
        }
    }
    // The oracle runs under the same budgets the children apply
    // (`SessionConfig::default()`): deterministic fuel/alloc/depth, no
    // wall-clock deadline.
    let limits = elm_runtime::EventLimits::default();
    let finals: Vec<PlainValue> = (0..sessions)
        .map(|k| {
            let mut running =
                Program::from_dynamic_graph(graphs[k].clone()).start(Engine::Synchronous);
            running.set_governor(Some(limits), None);
            for e in &traces[k] {
                running
                    .send_named(&e.input, e.value.to_value())
                    .expect("oracle event");
            }
            running.drain_raw().expect("oracle drain");
            PlainValue::from_value(running.current()).expect("oracle value is plain")
        })
        .collect();

    // --- placement, victim, and the scheduled kill point ---
    let placement: Vec<usize> = (0..sessions as u64).map(|k| place(k, PEERS).0).collect();
    let mut counts = [0usize; PEERS];
    for &p in &placement {
        counts[p] += 1;
    }
    let victim = (0..PEERS).max_by_key(|&p| counts[p]).expect("three peers");
    let plan = FaultPlan {
        seed: args.seed,
        ..FaultPlan::disabled()
    };
    let mut krng = plan.rng(elm_environment::fault::STREAM_KILL, victim as u64);
    let kill_frac: f64 = krng.gen_range(0.30..0.60);
    let total_events: u64 = traces.iter().map(|t| t.len() as u64).sum();
    let kill_after = ((total_events as f64) * kill_frac) as u64;
    eprintln!(
        "loadgen: CLUSTER victim is peer {victim} ({} sessions), kill after {kill_after}/{total_events} events",
        counts[victim]
    );

    // --- spawn the peer group ---
    let bin = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("elm-server")))
        .unwrap_or_else(|| {
            eprintln!("loadgen: CLUSTER cannot locate own executable directory");
            exit(1);
        });
    if !bin.exists() {
        eprintln!(
            "loadgen: CLUSTER elm-server binary not found at {} (build the workspace first)",
            bin.display()
        );
        exit(2);
    }
    let peer_addrs: Vec<String> = (0..PEERS)
        .map(|_| {
            let l = TcpListener::bind("127.0.0.1:0").expect("reserve a port");
            l.local_addr().expect("reserved addr").to_string()
        })
        .collect();
    let peer_socks: Vec<SocketAddr> = peer_addrs
        .iter()
        .map(|a| a.parse().expect("reserved addr parses"))
        .collect();
    let peer_list = peer_addrs.join(",");
    let mut children: Vec<Option<Child>> = Vec::with_capacity(PEERS);
    for id in 0..PEERS {
        match Command::new(&bin)
            .args([
                "--peer-id",
                &id.to_string(),
                "--peers",
                &peer_list,
                "--heartbeat-ms",
                "50",
                "--takeover-ms",
                "500",
                "--snapshot-interval",
                &snapshot_interval.to_string(),
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
        {
            Ok(c) => children.push(Some(c)),
            Err(e) => {
                kill_all(&mut children);
                eprintln!("loadgen: CLUSTER cannot spawn peer {id}: {e}");
                exit(1);
            }
        }
    }
    let ready_deadline = Instant::now() + Duration::from_secs(15);
    for (i, addr) in peer_socks.iter().enumerate() {
        loop {
            match TcpStream::connect(addr) {
                Ok(_) => break,
                Err(e) => {
                    if Instant::now() > ready_deadline {
                        kill_all(&mut children);
                        eprintln!("loadgen: CLUSTER peer {i} never came up on {addr}: {e}");
                        exit(1);
                    }
                    thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }

    // --- open every session, keyed, at its placement primary ---
    let mut openers: Vec<Client> = Vec::with_capacity(PEERS);
    for (p, sock) in peer_socks.iter().enumerate() {
        match Client::connect(*sock, args.seed ^ p as u64) {
            Ok(c) => openers.push(c),
            Err(e) => {
                kill_all(&mut children);
                eprintln!("loadgen: CLUSTER cannot connect to peer {p}: {e}");
                exit(1);
            }
        }
    }
    for k in 0..sessions {
        let mut fields = vec![
            ("cmd".to_string(), Json::Str("open".to_string())),
            ("session".to_string(), Json::U64(k as u64)),
        ];
        match &sources[k] {
            Some(src) => fields.push(("source".to_string(), Json::Str(src.clone()))),
            None => fields.push(("program".to_string(), Json::Str("dashboard".to_string()))),
        }
        let line = serde_json::to_string(&Json::Map(fields)).expect("open line renders");
        let reply = openers[placement[k]].request(&line).unwrap_or_else(|e| {
            eprintln!("loadgen: CLUSTER open of session {k} failed: {e}");
            exit(1);
        });
        if !matches!(reply.get("ok"), Some(Json::Bool(true)))
            || jnum(reply.get("session").unwrap_or(&Json::Null)) != Some(k as u64)
        {
            kill_all(&mut children);
            eprintln!("loadgen: CLUSTER keyed open of session {k} refused: {reply:?}");
            exit(1);
        }
    }
    drop(openers);

    // --- the killer: SIGKILL the victim once the fleet-wide event count
    // crosses the scheduled point ---
    let progress = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let victim_child = children[victim].take().expect("victim was spawned");
    let killed_at: Arc<std::sync::Mutex<Option<Duration>>> = Arc::new(std::sync::Mutex::new(None));
    let killer = {
        let progress = Arc::clone(&progress);
        let killed_at = Arc::clone(&killed_at);
        thread::spawn(move || {
            let mut child = victim_child;
            while progress.load(Ordering::Relaxed) < kill_after {
                thread::sleep(Duration::from_millis(2));
            }
            let _ = child.kill();
            let _ = child.wait();
            *killed_at.lock().expect("kill clock") = Some(started.elapsed());
            eprintln!(
                "loadgen: CLUSTER killed peer {victim} after {} events",
                progress.load(Ordering::Relaxed)
            );
        })
    };

    // --- drivers: one per session, riding the failover ---
    struct DriverOut {
        value: PlainValue,
        last_seq: u64,
        moves: u64,
        reconnects: u64,
        resyncs: u64,
    }
    let mut drivers = Vec::with_capacity(sessions);
    for k in 0..sessions {
        let evs = traces[k].clone();
        // Primary first; the rest in index order as fallbacks.
        let mut peers = vec![peer_socks[placement[k]]];
        peers.extend(
            (0..PEERS)
                .filter(|&p| p != placement[k])
                .map(|p| peer_socks[p]),
        );
        let progress = Arc::clone(&progress);
        let seed = args.seed ^ (k as u64).wrapping_mul(0x9e37_79b9);
        drivers.push(thread::spawn(move || -> Result<DriverOut, String> {
            let sid = k as u64;
            let mut client = ClusterClient::new(peers, seed);
            let mut resyncs = 0u64;
            let deadline = Duration::from_secs(20);
            let query_line = format!("{{\"cmd\":\"query\",\"session\":{sid}}}");
            // Queries are idempotent; poll until the ingress queue is
            // drained and the reply carries the applied high-water mark.
            let drained_query = |client: &mut ClusterClient| -> Result<Json, String> {
                loop {
                    let r = client
                        .request_routed(&query_line, Duration::from_secs(30))
                        .map_err(|e| format!("session {sid}: query: {e}"))?;
                    if !matches!(r.get("ok"), Some(Json::Bool(true))) {
                        return Err(format!("session {sid}: query refused: {r:?}"));
                    }
                    if jnum(r.get("queue_len").unwrap_or(&Json::Null)) == Some(0) {
                        return Ok(r);
                    }
                    thread::sleep(Duration::from_millis(5));
                }
            };
            let mut i = 0usize;
            while i < evs.len() {
                let e = &evs[i];
                // Trace id encodes (session, event index) recoverably:
                // a retry after resync re-sends the SAME id, so the
                // event keeps one identity across the failover.
                let trace_id = ((sid + 1) << 20) | (i as u64 + 1);
                let line = serde_json::to_string(&Json::Map(vec![
                    ("cmd".to_string(), Json::Str("event".to_string())),
                    ("session".to_string(), Json::U64(sid)),
                    ("input".to_string(), Json::Str(e.input.clone())),
                    (
                        "value".to_string(),
                        serde_json::to_value(&e.value).expect("plain value serializes"),
                    ),
                    ("trace".to_string(), Json::U64(trace_id)),
                ]))
                .expect("event line renders");
                match client.request_exact(&line, deadline) {
                    Ok(reply) if matches!(reply.get("ok"), Some(Json::Bool(true))) => {
                        i += 1;
                        progress.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(reply) => {
                        return Err(format!("session {sid}: event {i} refused: {reply:?}"))
                    }
                    Err(_) => {
                        // The kill window: whether the in-flight event
                        // landed is ambiguous. Resynchronize from the
                        // adopted session's `last_seq` and resume exactly
                        // once from there.
                        let r = drained_query(&mut client)?;
                        let last = jnum(r.get("last_seq").unwrap_or(&Json::Null))
                            .ok_or_else(|| format!("session {sid}: reply lacks last_seq"))?;
                        resyncs += 1;
                        i = last as usize;
                    }
                }
            }
            let r = drained_query(&mut client)?;
            let last_seq = jnum(r.get("last_seq").unwrap_or(&Json::Null))
                .ok_or_else(|| format!("session {sid}: reply lacks last_seq"))?;
            let value_json = r
                .get("value")
                .cloned()
                .ok_or_else(|| format!("session {sid}: reply lacks value"))?;
            let value = serde_json::from_value::<PlainValue>(value_json)
                .map_err(|e| format!("session {sid}: unparseable final value: {e}"))?;
            Ok(DriverOut {
                value,
                last_seq,
                moves: client.moves(),
                reconnects: client.reconnects(),
                resyncs,
            })
        }));
    }
    let mut outs: Vec<Option<DriverOut>> = Vec::with_capacity(sessions);
    for (k, d) in drivers.into_iter().enumerate() {
        match d.join() {
            Ok(Ok(o)) => outs.push(Some(o)),
            Ok(Err(e)) => {
                failures.push(e);
                outs.push(None);
            }
            Err(_) => {
                failures.push(format!("session {k}: driver panicked"));
                outs.push(None);
            }
        }
    }
    let elapsed = started.elapsed();
    // Release the killer if the run died before the scheduled point.
    progress.store(u64::MAX, Ordering::Relaxed);
    let _ = killer.join();
    let kill_elapsed = *killed_at.lock().expect("kill clock");
    if kill_elapsed.is_none() {
        failures.push("the scheduled kill never fired".to_string());
    }

    // --- verdict 1: every session resumed with byte-identical output ---
    for k in 0..sessions {
        let Some(o) = &outs[k] else { continue };
        if o.last_seq != traces[k].len() as u64 {
            failures.push(format!(
                "session {k}: applied {} of {} events",
                o.last_seq,
                traces[k].len()
            ));
        }
        let live = serde_json::to_string(&serde_json::to_value(&o.value).expect("plain value"))
            .expect("value renders");
        let want = serde_json::to_string(&serde_json::to_value(&finals[k]).expect("plain value"))
            .expect("value renders");
        if live != want {
            failures.push(format!(
                "session {k}{}: final output diverged after failover: live {live} != replay {want}",
                if placement[k] == victim {
                    " (killed)"
                } else {
                    ""
                }
            ));
        }
    }

    // --- verdict 2: killed sessions live on exactly one survivor; the
    // other answers with a typed moved redirect at the adopter ---
    let survivors: Vec<usize> = (0..PEERS).filter(|&p| p != victim).collect();
    let mut survivor_clients: Vec<(usize, Client)> = Vec::new();
    for &p in &survivors {
        match Client::connect(peer_socks[p], args.seed ^ 0xdead ^ p as u64) {
            Ok(c) => survivor_clients.push((p, c)),
            Err(e) => failures.push(format!("survivor peer {p} unreachable after the kill: {e}")),
        }
    }
    let mut adopted_on = [0u64; PEERS];
    for k in (0..sessions).filter(|&k| placement[k] == victim) {
        let mut host: Option<usize> = None;
        let mut moved_to: Option<String> = None;
        for (p, c) in &mut survivor_clients {
            match c.query(k as u64) {
                Ok(reply) if matches!(reply.get("ok"), Some(Json::Bool(true))) => host = Some(*p),
                Ok(reply) if reply.get("error").and_then(Json::as_str) == Some("moved") => {
                    moved_to = reply.get("peer").and_then(Json::as_str).map(str::to_string)
                }
                Ok(reply) => failures.push(format!(
                    "killed session {k}: peer {p} gave neither value nor redirect: {reply:?}"
                )),
                Err(e) => failures.push(format!("killed session {k}: query on peer {p}: {e}")),
            }
        }
        match (host, moved_to) {
            (Some(h), Some(addr)) => {
                adopted_on[h] += 1;
                if addr != peer_addrs[h] {
                    failures.push(format!(
                        "killed session {k}: redirect points at {addr} but the session lives on {}",
                        peer_addrs[h]
                    ));
                }
            }
            (Some(h), None) => {
                adopted_on[h] += 1;
                failures.push(format!(
                    "killed session {k}: no survivor issued a moved redirect"
                ));
            }
            (None, _) => failures.push(format!("killed session {k}: no surviving peer hosts it")),
        }
    }

    // --- verdict 3: the survivors' metric families account for the
    // takeover, and replication stayed gap-free ---
    let mut takeovers_sum = 0u64;
    let mut gaps_sum = 0u64;
    let mut snaps_sum = 0u64;
    let mut journal_sum = 0u64;
    let mut lag_sum = 0u64;
    let mut takeover_ms_max = 0u64;
    let mut sessions_primary: Vec<(usize, u64)> = Vec::new();
    let mut peer_texts: Vec<(usize, String)> = Vec::new();
    for (p, c) in &mut survivor_clients {
        let text = match c.metrics_text() {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!("metrics scrape on survivor {p}: {e}"));
                continue;
            }
        };
        peer_texts.push((*p, text.clone()));
        takeovers_sum += scraped_family_sum(&text, "elm_cluster_takeovers_total");
        gaps_sum += scraped_family_sum(&text, "elm_cluster_replication_gaps_total");
        snaps_sum += scraped_family_sum(&text, "elm_cluster_snapshots_shipped_total");
        journal_sum += scraped_family_sum(&text, "elm_cluster_journal_replicated_total");
        lag_sum += scraped_family_sum(&text, "elm_cluster_replication_lag_entries");
        takeover_ms_max =
            takeover_ms_max.max(scraped_family_sum(&text, "elm_cluster_takeover_last_ms"));
        sessions_primary.push((
            *p,
            scraped_family_sum(&text, "elm_cluster_sessions_primary"),
        ));
        let needle = format!("elm_cluster_peer_up{{peer=\"{victim}\"}}");
        let up = text
            .lines()
            .find(|l| l.starts_with(&needle))
            .and_then(|l| l.rsplit_once(' '))
            .and_then(|(_, v)| v.parse::<f64>().ok());
        if up != Some(0.0) {
            failures.push(format!(
                "survivor {p} still reports peer_up{{peer=\"{victim}\"}} = {up:?}"
            ));
        }
    }
    if takeovers_sum != counts[victim] as u64 {
        failures.push(format!(
            "{} sessions died with peer {victim} but survivors count {takeovers_sum} takeovers",
            counts[victim]
        ));
    }
    let hosted: u64 = sessions_primary.iter().map(|&(_, n)| n).sum();
    if hosted != sessions as u64 {
        failures.push(format!(
            "survivors host {hosted} sessions, expected all {sessions}"
        ));
    }
    if gaps_sum != 0 {
        failures.push(format!("replication recorded {gaps_sum} gap(s)"));
    }
    if snaps_sum == 0 {
        failures.push("no snapshots were ever shipped (replay suffix unbounded)".to_string());
    }
    if journal_sum == 0 {
        failures.push("no journal entries were ever replicated".to_string());
    }
    let moves_total: u64 = outs.iter().flatten().map(|o| o.moves).sum();
    let reconnects_total: u64 = outs.iter().flatten().map(|o| o.reconnects).sum();
    let resyncs_total: u64 = outs.iter().flatten().map(|o| o.resyncs).sum();
    if resyncs_total == 0 {
        failures.push("no driver ever resynchronized; the kill was not mid-stream".to_string());
    }

    // --- verdict 4: the federated scrape agrees with the per-peer
    // scrapes, carries peer labels, and exposes the SLO families ---
    let mut federated_text = String::new();
    match survivor_clients.first_mut() {
        Some((_, c)) => match c.metrics_text_cluster() {
            Ok(text) => federated_text = text,
            Err(e) => failures.push(format!("federated metrics scrape: {e}")),
        },
        None => failures.push("no survivor available for the federated scrape".to_string()),
    }
    if !federated_text.is_empty() {
        // Every driver has quiesced and the scrapes themselves move none
        // of these families, so the federated value must equal the sum
        // of the per-peer scrapes exactly.
        for family in [
            "elm_events_total",
            "elm_journal_appends_total",
            "elm_snapshots_total",
            "elm_cluster_takeovers_total",
            "elm_cluster_journal_replicated_total",
        ] {
            let fed = scraped_family_sum(&federated_text, family);
            let per_peer: u64 = peer_texts
                .iter()
                .map(|(_, t)| scraped_family_sum(t, family))
                .sum();
            if fed != per_peer {
                failures.push(format!(
                    "federated {family} = {fed} but the per-peer scrapes sum to {per_peer}"
                ));
            }
        }
        for needle in [
            "elm_cluster_takeovers_total{peer=\"",
            "elm_slo_burn_rate{peer=\"",
            "elm_ingest_latency_hist_seconds_bucket{peer=\"",
            "elm_blackbox_records_total{peer=\"",
        ] {
            if !federated_text.contains(needle) {
                failures.push(format!("federated scrape lacks {needle}...}} samples"));
            }
        }
        let dead = format!("elm_cluster_federation_peer_up{{peer=\"{victim}\"}} 0");
        if !federated_text.contains(&dead) {
            failures.push(format!(
                "federated scrape does not report the killed peer down ({dead})"
            ));
        }
        write_artifact(
            "BENCH_cluster_federated.prom",
            federated_text.clone(),
            &mut failures,
        );
    }

    // --- verdict 5: the survivors' flight recorders assemble into span
    // trees that cross the killed peer into its adopter, and the
    // takeover's trace matches the last entry the victim replicated ---
    use elm_runtime::{assemble_cluster, ClusterPhase, ClusterSpan};
    let mut all_spans: Vec<ClusterSpan> = Vec::new();
    let mut blackbox_texts: Vec<(usize, String)> = Vec::new();
    for (p, c) in &mut survivor_clients {
        match c.blackbox_text() {
            Ok(text) => {
                for line in text.lines().filter(|l| !l.trim().is_empty()) {
                    let Ok(r) = serde_json::from_str::<Json>(line) else {
                        continue;
                    };
                    let phase = match r.get("kind").and_then(Json::as_str) {
                        Some("applied") => ClusterPhase::Ingest,
                        Some("replicated") => ClusterPhase::Replicate,
                        Some("takeover") => ClusterPhase::Takeover,
                        Some("resume") => ClusterPhase::Resume,
                        _ => continue,
                    };
                    let num = |k: &str| r.get(k).and_then(jnum).unwrap_or(0);
                    let from = match r.get("from") {
                        Some(Json::I64(n)) => *n,
                        Some(Json::U64(n)) => *n as i64,
                        _ => -1,
                    };
                    all_spans.push(ClusterSpan {
                        trace: num("trace"),
                        session: num("session"),
                        seq: num("seq"),
                        phase,
                        peer: num("peer") as u32,
                        from_peer: from,
                        start_us: num("us"),
                        end_us: num("us"),
                    });
                }
                blackbox_texts.push((*p, text));
            }
            Err(e) => failures.push(format!("blackbox fetch on survivor {p}: {e}")),
        }
    }
    let trees = assemble_cluster(&all_spans);
    let cross_peer_trees = trees
        .iter()
        .filter(|t| {
            t.spans.iter().any(|s| {
                matches!(s.phase, ClusterPhase::Replicate | ClusterPhase::Takeover)
                    && s.from_peer == victim as i64
            }) && t
                .spans
                .iter()
                .any(|s| matches!(s.phase, ClusterPhase::Takeover | ClusterPhase::Resume))
        })
        .count() as u64;
    if cross_peer_trees == 0 {
        failures.push(format!(
            "no assembled span tree crosses killed peer {victim} into its adopter \
             ({} trees from {} flight-recorder spans)",
            trees.len(),
            all_spans.len()
        ));
    }
    let mut span_tree_check = true;
    for t in &trees {
        for s in t.spans.iter().filter(|s| {
            matches!(s.phase, ClusterPhase::Takeover)
                && s.from_peer == victim as i64
                && s.trace != 0
        }) {
            // The takeover rode the victim's last replicated trace, so it
            // must match the highest-seq entry the victim shipped for
            // this session — the journal's takeover order.
            let last_replicated = all_spans
                .iter()
                .filter(|r| {
                    matches!(r.phase, ClusterPhase::Replicate)
                        && r.session == s.session
                        && r.from_peer == victim as i64
                })
                .max_by_key(|r| r.seq);
            if let Some(b) = last_replicated {
                if b.trace != s.trace {
                    span_tree_check = false;
                    failures.push(format!(
                        "session {}: takeover trace {:#x} != last replicated trace {:#x} (seq {})",
                        s.session, s.trace, b.trace, b.seq
                    ));
                }
            }
        }
    }

    // --- verdict 6: the adopter dumped the victim's flight-recorder
    // view, and the dump names the victim's last traces ---
    for p in (0..PEERS).filter(|&p| adopted_on[p] > 0) {
        let path = format!("BLACKBOX_peer{p}_adopts_peer{victim}.ndjson");
        match std::fs::read_to_string(&path) {
            Ok(dump) if dump.trim().is_empty() => {
                failures.push(format!("adopter dump {path} is empty"));
            }
            Ok(dump) => {
                let has_traced_victim_record = dump.lines().any(|l| {
                    serde_json::from_str::<Json>(l).is_ok_and(|r| {
                        r.get("trace").and_then(jnum).unwrap_or(0) != 0
                            && r.get("session")
                                .and_then(jnum)
                                .is_some_and(|k| placement.get(k as usize) == Some(&victim))
                    })
                });
                if !has_traced_victim_record {
                    failures.push(format!(
                        "adopter dump {path} holds no traced record of a victim session"
                    ));
                }
            }
            Err(e) => failures.push(format!("adopter dump {path} unreadable: {e}")),
        }
    }

    // Any verdict failure: preserve every survivor's flight recorder for
    // the post-mortem.
    if !failures.is_empty() {
        for (p, text) in &blackbox_texts {
            let path = format!("BLACKBOX_cluster_failure_peer{p}.ndjson");
            if std::fs::write(&path, text).is_ok() {
                eprintln!("loadgen: preserved flight recorder in {path}");
            }
        }
    }

    kill_all(&mut children);

    let throughput = total_events as f64 / elapsed.as_secs_f64();
    println!(
        "cluster: {total_events} events across {sessions} sessions in {:.2}s ({throughput:.0} ev/s), \
         {takeovers_sum} takeovers (last {takeover_ms_max} ms), {resyncs_total} resyncs, \
         {moves_total} moved redirects, replication lag {lag_sum}, \
         {cross_peer_trees}/{} span trees cross the kill",
        elapsed.as_secs_f64(),
        trees.len()
    );
    for f in &failures {
        eprintln!("loadgen: CLUSTER FAILURE: {f}");
    }
    let verdict = if failures.is_empty() { "OK" } else { "FAILED" };
    println!("cluster verdict = {verdict}");

    let report = Json::Map(vec![
        (
            "benchmark".to_string(),
            Json::Str(
                if args.fleet {
                    "server-cluster-fleet"
                } else {
                    "server-cluster"
                }
                .to_string(),
            ),
        ),
        ("peers".to_string(), Json::U64(PEERS as u64)),
        ("sessions".to_string(), Json::U64(sessions as u64)),
        ("events_per_session".to_string(), Json::U64(events as u64)),
        ("driven_events".to_string(), Json::U64(total_events)),
        ("seed".to_string(), Json::U64(args.seed)),
        ("victim".to_string(), Json::U64(victim as u64)),
        (
            "victim_sessions".to_string(),
            Json::U64(counts[victim] as u64),
        ),
        ("kill_after_events".to_string(), Json::U64(kill_after)),
        (
            "kill_elapsed_s".to_string(),
            Json::F64(kill_elapsed.map(|d| d.as_secs_f64()).unwrap_or(-1.0)),
        ),
        ("elapsed_s".to_string(), Json::F64(elapsed.as_secs_f64())),
        ("events_per_sec".to_string(), Json::F64(throughput)),
        ("takeovers_total".to_string(), Json::U64(takeovers_sum)),
        ("takeover_last_ms".to_string(), Json::U64(takeover_ms_max)),
        ("replication_lag_entries".to_string(), Json::U64(lag_sum)),
        (
            "journal_replicated_total".to_string(),
            Json::U64(journal_sum),
        ),
        ("snapshots_shipped_total".to_string(), Json::U64(snaps_sum)),
        ("replication_gaps_total".to_string(), Json::U64(gaps_sum)),
        ("moves_total".to_string(), Json::U64(moves_total)),
        ("reconnects_total".to_string(), Json::U64(reconnects_total)),
        ("resyncs_total".to_string(), Json::U64(resyncs_total)),
        (
            "span_trees_total".to_string(),
            Json::U64(trees.len() as u64),
        ),
        ("cross_peer_trees".to_string(), Json::U64(cross_peer_trees)),
        ("span_tree_check".to_string(), Json::Bool(span_tree_check)),
        (
            "federated_scrape_bytes".to_string(),
            Json::U64(federated_text.len() as u64),
        ),
        (
            "sessions_per_survivor".to_string(),
            Json::Seq(
                sessions_primary
                    .iter()
                    .map(|&(p, n)| {
                        Json::Map(vec![
                            ("peer".to_string(), Json::U64(p as u64)),
                            ("sessions".to_string(), Json::U64(n)),
                            ("adopted".to_string(), Json::U64(adopted_on[p])),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("verdict".to_string(), Json::Str(verdict.to_string())),
    ]);
    let pretty = serde_json::to_string_pretty(&report).expect("report serialize");
    let out = if args.out == "BENCH_server.json" {
        "BENCH_cluster.json".to_string()
    } else {
        args.out.clone()
    };
    let mut code = i32::from(!failures.is_empty());
    if let Err(e) = std::fs::write(&out, pretty + "\n") {
        eprintln!("loadgen: CLUSTER FAILURE: cannot write {out}: {e}");
        code = 1;
    } else {
        eprintln!("loadgen: wrote {out}");
    }
    exit(code)
}

/// The split-brain chaos harness: a 3-peer group, a scheduled network
/// partition isolating the busiest primary long enough for the majority
/// side to take its sessions over at a higher epoch, then a heal that
/// flushes the zombie's stale backlog into the fences. See the module
/// docs for the verdict list.
fn run_partition(args: &Args) -> ! {
    use elm_server::{place, Client, ClusterClient};
    use std::collections::{BTreeMap, BTreeSet};
    use std::net::{SocketAddr, TcpListener, TcpStream};
    use std::process::{Child, Command, Stdio};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;

    const PEERS: usize = 3;
    /// When the partition opens, relative to child-process start. Setup
    /// (spawn + readiness + keyed opens) must finish inside this window.
    const PART_START_MS: u64 = 3_000;
    /// How long the cut lasts — several takeover windows (500 ms), so the
    /// majority side adopts and the zombie keeps serving stale clients
    /// for an observable stretch before the heal.
    const PART_DUR_MS: u64 = 2_500;
    /// Target wall-clock length of each driver's event stream: events are
    /// paced so the stream straddles the whole partition *and* the heal.
    const DRIVE_MS: u64 = 8_000;

    fn jnum(v: &Json) -> Option<u64> {
        match v {
            Json::U64(n) => Some(*n),
            Json::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    fn kill_all(children: &mut [Option<Child>]) {
        for slot in children.iter_mut() {
            if let Some(mut c) = slot.take() {
                let _ = c.kill();
                let _ = c.wait();
            }
        }
    }

    let sessions = args.sessions.clamp(PEERS, 64);
    let events = args.events.clamp(50, 300);
    let snapshot_interval = args.snapshot_interval.clamp(1, 32);
    let mut failures: Vec<String> = Vec::new();

    // --- traces (pre-filtered to declared inputs) and the governed
    // synchronous replay oracle, exactly as the kill-chaos harness ---
    let registry = elm_server::Registry::standard();
    let (_, graph) = registry
        .resolve(ProgramSpec::Builtin("dashboard"))
        .expect("dashboard builtin");
    let mut traces: Vec<Vec<elm_runtime::TraceEvent>> = Vec::with_capacity(sessions);
    for trace in Simulator::fan_out(args.seed, sessions, events) {
        traces.push(
            trace
                .events
                .iter()
                .filter(|e| graph.input_named(&e.input).is_some())
                .cloned()
                .collect(),
        );
    }
    // Pace the drivers off the *filtered* trace length so every stream
    // straddles the whole partition window and the heal.
    let longest = traces.iter().map(Vec::len).max().unwrap_or(1).max(1);
    let pace_ms = (DRIVE_MS / longest as u64).max(1);
    eprintln!(
        "loadgen: PARTITION {PEERS} peers, {sessions} sessions x {events} events \
         ({longest} admitted, paced {pace_ms} ms), window {PART_START_MS}+{PART_DUR_MS} ms, \
         fencing {}, seed {}",
        if args.no_fencing { "OFF" } else { "on" },
        args.seed
    );
    let limits = elm_runtime::EventLimits::default();
    let finals: Vec<PlainValue> = (0..sessions)
        .map(|k| {
            let mut running = Program::from_dynamic_graph(graph.clone()).start(Engine::Synchronous);
            running.set_governor(Some(limits), None);
            for e in &traces[k] {
                running
                    .send_named(&e.input, e.value.to_value())
                    .expect("oracle event");
            }
            running.drain_raw().expect("oracle drain");
            PlainValue::from_value(running.current()).expect("oracle value is plain")
        })
        .collect();

    // --- placement and the victim: the busiest primary gets isolated
    // from *both* other peers ---
    let placement: Vec<usize> = (0..sessions as u64).map(|k| place(k, PEERS).0).collect();
    let mut counts = [0usize; PEERS];
    for &p in &placement {
        counts[p] += 1;
    }
    let victim = (0..PEERS).max_by_key(|&p| counts[p]).expect("three peers");
    let others: Vec<usize> = (0..PEERS).filter(|&p| p != victim).collect();
    eprintln!(
        "loadgen: PARTITION victim is peer {victim} ({} sessions), isolated from peers {others:?}",
        counts[victim]
    );

    // --- spawn the peer group with the partition scheduled on every
    // victim link; the same seed drives every child's netfault proxy ---
    let bin = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("elm-server")))
        .unwrap_or_else(|| {
            eprintln!("loadgen: PARTITION cannot locate own executable directory");
            exit(1);
        });
    if !bin.exists() {
        eprintln!(
            "loadgen: PARTITION elm-server binary not found at {} (build the workspace first)",
            bin.display()
        );
        exit(2);
    }
    let peer_addrs: Vec<String> = (0..PEERS)
        .map(|_| {
            let l = TcpListener::bind("127.0.0.1:0").expect("reserve a port");
            l.local_addr().expect("reserved addr").to_string()
        })
        .collect();
    let peer_socks: Vec<SocketAddr> = peer_addrs
        .iter()
        .map(|a| a.parse().expect("reserved addr parses"))
        .collect();
    let peer_list = peer_addrs.join(",");
    let mut child_args: Vec<String> = vec![
        "--heartbeat-ms".into(),
        "50".into(),
        "--takeover-ms".into(),
        "500".into(),
        "--snapshot-interval".into(),
        snapshot_interval.to_string(),
        "--net-seed".into(),
        args.seed.to_string(),
    ];
    for &o in &others {
        child_args.push("--partition-window".into());
        child_args.push(format!("{victim}:{o}:{PART_START_MS}:{PART_DUR_MS}"));
    }
    if args.no_fencing {
        child_args.push("--no-fencing".into());
    }
    let spawn_clock = Instant::now();
    let mut children: Vec<Option<Child>> = Vec::with_capacity(PEERS);
    for id in 0..PEERS {
        let mut full = vec![
            "--peer-id".to_string(),
            id.to_string(),
            "--peers".to_string(),
            peer_list.clone(),
        ];
        full.extend(child_args.iter().cloned());
        match Command::new(&bin)
            .args(&full)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
        {
            Ok(c) => children.push(Some(c)),
            Err(e) => {
                kill_all(&mut children);
                eprintln!("loadgen: PARTITION cannot spawn peer {id}: {e}");
                exit(1);
            }
        }
    }
    let ready_deadline = Instant::now() + Duration::from_secs(15);
    for (i, addr) in peer_socks.iter().enumerate() {
        loop {
            match TcpStream::connect(addr) {
                Ok(_) => break,
                Err(e) => {
                    if Instant::now() > ready_deadline {
                        kill_all(&mut children);
                        eprintln!("loadgen: PARTITION peer {i} never came up on {addr}: {e}");
                        exit(1);
                    }
                    thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }

    // --- keyed opens at the placement primaries ---
    let mut openers: Vec<Client> = Vec::with_capacity(PEERS);
    for (p, sock) in peer_socks.iter().enumerate() {
        match Client::connect(*sock, args.seed ^ p as u64) {
            Ok(c) => openers.push(c),
            Err(e) => {
                kill_all(&mut children);
                eprintln!("loadgen: PARTITION cannot connect to peer {p}: {e}");
                exit(1);
            }
        }
    }
    for k in 0..sessions {
        let line = serde_json::to_string(&Json::Map(vec![
            ("cmd".to_string(), Json::Str("open".to_string())),
            ("session".to_string(), Json::U64(k as u64)),
            ("program".to_string(), Json::Str("dashboard".to_string())),
        ]))
        .expect("open line renders");
        let reply = openers[placement[k]].request(&line).unwrap_or_else(|e| {
            eprintln!("loadgen: PARTITION open of session {k} failed: {e}");
            exit(1);
        });
        if !matches!(reply.get("ok"), Some(Json::Bool(true))) {
            kill_all(&mut children);
            eprintln!("loadgen: PARTITION keyed open of session {k} refused: {reply:?}");
            exit(1);
        }
    }
    drop(openers);
    let setup_ms = spawn_clock.elapsed().as_millis() as u64;
    if setup_ms >= PART_START_MS {
        failures.push(format!(
            "setup took {setup_ms} ms — the partition window opened before the drivers started"
        ));
    }

    // --- split-brain probes: one prober per peer asks *that* peer about
    // every session for the whole run, recording (session, epoch) → the
    // set of peers that answered with a value. Two peers serving the
    // same session at the same epoch is the forked-history violation. ---
    type ProbeMap = BTreeMap<(u64, u64), BTreeSet<usize>>;
    let probe_stop = Arc::new(AtomicBool::new(false));
    let probe_map: Arc<Mutex<ProbeMap>> = Arc::new(Mutex::new(BTreeMap::new()));
    let probe_samples = Arc::new(AtomicU64::new(0));
    let mut probers = Vec::with_capacity(PEERS);
    for (p, &addr) in peer_socks.iter().enumerate() {
        let stop = Arc::clone(&probe_stop);
        let map = Arc::clone(&probe_map);
        let samples = Arc::clone(&probe_samples);
        let seed = args.seed ^ 0x7072_6f62 ^ p as u64;
        probers.push(thread::spawn(move || {
            let mut client: Option<Client> = None;
            while !stop.load(Ordering::Relaxed) {
                if client.is_none() {
                    client = Client::connect(addr, seed).ok();
                    if client.is_none() {
                        thread::sleep(Duration::from_millis(25));
                        continue;
                    }
                }
                let mut broken = false;
                if let Some(c) = client.as_mut() {
                    for sid in 0..sessions as u64 {
                        match c.query(sid) {
                            Ok(reply) => {
                                if matches!(reply.get("ok"), Some(Json::Bool(true))) {
                                    if let Some(epoch) =
                                        jnum(reply.get("epoch").unwrap_or(&Json::Null))
                                    {
                                        map.lock()
                                            .expect("probe map")
                                            .entry((sid, epoch))
                                            .or_default()
                                            .insert(p);
                                        samples.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                // moved / unknown replies are the
                                // redirect-only answer — exactly what a
                                // non-owner should say.
                            }
                            Err(_) => {
                                broken = true;
                                break;
                            }
                        }
                    }
                }
                if broken {
                    client = None;
                }
                thread::sleep(Duration::from_millis(20));
            }
        }));
    }

    // --- drivers: one per session, paced so the stream straddles the
    // partition and the heal, riding the demotion through the
    // epoch-aware client ---
    struct DriverOut {
        value: PlainValue,
        last_seq: u64,
        moves: u64,
        reconnects: u64,
        resyncs: u64,
        stale_epochs: u64,
    }
    let driven = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut drivers = Vec::with_capacity(sessions);
    for k in 0..sessions {
        let evs = traces[k].clone();
        let mut peers = vec![peer_socks[placement[k]]];
        peers.extend(
            (0..PEERS)
                .filter(|&p| p != placement[k])
                .map(|p| peer_socks[p]),
        );
        let driven = Arc::clone(&driven);
        let seed = args.seed ^ (k as u64).wrapping_mul(0x9e37_79b9);
        drivers.push(thread::spawn(move || -> Result<DriverOut, String> {
            let sid = k as u64;
            let mut client = ClusterClient::new(peers, seed);
            let mut resyncs = 0u64;
            let deadline = Duration::from_secs(20);
            let query_line = format!("{{\"cmd\":\"query\",\"session\":{sid}}}");
            let drained_query = |client: &mut ClusterClient| -> Result<Json, String> {
                loop {
                    let r = client
                        .request_routed(&query_line, Duration::from_secs(30))
                        .map_err(|e| format!("session {sid}: query: {e}"))?;
                    if !matches!(r.get("ok"), Some(Json::Bool(true))) {
                        return Err(format!("session {sid}: query refused: {r:?}"));
                    }
                    if jnum(r.get("queue_len").unwrap_or(&Json::Null)) == Some(0) {
                        return Ok(r);
                    }
                    thread::sleep(Duration::from_millis(5));
                }
            };
            // Witness the pre-partition epoch up front: the demotion's
            // higher-epoch redirect is only detectable against it.
            drained_query(&mut client)?;
            let mut i = 0usize;
            while i < evs.len() {
                let e = &evs[i];
                let trace_id = ((sid + 1) << 20) | (i as u64 + 1);
                let line = serde_json::to_string(&Json::Map(vec![
                    ("cmd".to_string(), Json::Str("event".to_string())),
                    ("session".to_string(), Json::U64(sid)),
                    ("input".to_string(), Json::Str(e.input.clone())),
                    (
                        "value".to_string(),
                        serde_json::to_value(&e.value).expect("plain value serializes"),
                    ),
                    ("trace".to_string(), Json::U64(trace_id)),
                ]))
                .expect("event line renders");
                match client.request_exact(&line, deadline) {
                    Ok(reply) if matches!(reply.get("ok"), Some(Json::Bool(true))) => {
                        i += 1;
                        driven.fetch_add(1, Ordering::Relaxed);
                        thread::sleep(Duration::from_millis(pace_ms));
                    }
                    Ok(reply) => {
                        return Err(format!("session {sid}: event {i} refused: {reply:?}"))
                    }
                    Err(_) => {
                        // Either a transport ambiguity or the typed
                        // `epoch_advanced` handoff: the zombie demoted
                        // and the adopter's history is shorter than what
                        // this driver fed the old owner. Resynchronize
                        // from the owner's applied high-water mark and
                        // resend from there — the zombie-applied suffix
                        // replays into the surviving lineage.
                        let r = drained_query(&mut client)?;
                        let last = jnum(r.get("last_seq").unwrap_or(&Json::Null))
                            .ok_or_else(|| format!("session {sid}: reply lacks last_seq"))?;
                        resyncs += 1;
                        i = last as usize;
                    }
                }
            }
            let r = drained_query(&mut client)?;
            let last_seq = jnum(r.get("last_seq").unwrap_or(&Json::Null))
                .ok_or_else(|| format!("session {sid}: reply lacks last_seq"))?;
            let value_json = r
                .get("value")
                .cloned()
                .ok_or_else(|| format!("session {sid}: reply lacks value"))?;
            let value = serde_json::from_value::<PlainValue>(value_json)
                .map_err(|e| format!("session {sid}: unparseable final value: {e}"))?;
            Ok(DriverOut {
                value,
                last_seq,
                moves: client.moves(),
                reconnects: client.reconnects(),
                resyncs,
                stale_epochs: client.stale_epochs(),
            })
        }));
    }
    let mut outs: Vec<Option<DriverOut>> = Vec::with_capacity(sessions);
    for (k, d) in drivers.into_iter().enumerate() {
        match d.join() {
            Ok(Ok(o)) => outs.push(Some(o)),
            Ok(Err(e)) => {
                failures.push(e);
                outs.push(None);
            }
            Err(_) => {
                failures.push(format!("session {k}: driver panicked"));
                outs.push(None);
            }
        }
    }
    let elapsed = started.elapsed();
    // Judge only the healed steady state: wait out the window plus slack
    // for the queued takeover broadcast and stale backlog to flush, and
    // let the probes observe it.
    let heal_at = Duration::from_millis(PART_START_MS + PART_DUR_MS + 1_500);
    if spawn_clock.elapsed() < heal_at {
        thread::sleep(heal_at - spawn_clock.elapsed());
    }
    probe_stop.store(true, Ordering::Relaxed);
    for p in probers {
        let _ = p.join();
    }

    // --- verdict 1: byte-identical finals against the governed oracle ---
    for k in 0..sessions {
        let Some(o) = &outs[k] else { continue };
        if o.last_seq != traces[k].len() as u64 {
            failures.push(format!(
                "session {k}: applied {} of {} events",
                o.last_seq,
                traces[k].len()
            ));
        }
        let live = serde_json::to_string(&serde_json::to_value(&o.value).expect("plain value"))
            .expect("value renders");
        let want = serde_json::to_string(&serde_json::to_value(&finals[k]).expect("plain value"))
            .expect("value renders");
        if live != want {
            failures.push(format!(
                "session {k}{}: final output diverged across the partition: \
                 live {live} != replay {want}",
                if placement[k] == victim {
                    " (isolated)"
                } else {
                    ""
                }
            ));
        }
    }

    // --- verdict 2: the probes saw no forked history — at most one peer
    // served each (session, epoch) — and the dual-epoch window itself
    // was observable (zombie at the old epoch, adopter at the new) ---
    let probe_samples = probe_samples.load(Ordering::Relaxed);
    let probe_map = Arc::try_unwrap(probe_map)
        .map(|m| m.into_inner().expect("probe map"))
        .unwrap_or_else(|arc| arc.lock().expect("probe map").clone());
    if probe_samples == 0 {
        failures.push("the split-brain probes never completed a sample".to_string());
    }
    let mut split_brain = 0u64;
    for ((sid, epoch), servers) in &probe_map {
        if servers.len() > 1 {
            split_brain += 1;
            failures.push(format!(
                "SPLIT BRAIN: session {sid} served at epoch {epoch} by peers {servers:?}"
            ));
        }
    }
    let mut epochs_per_session: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for (sid, epoch) in probe_map.keys() {
        epochs_per_session.entry(*sid).or_default().insert(*epoch);
    }
    let dual_epoch_sessions = epochs_per_session
        .values()
        .filter(|es| es.len() > 1)
        .count() as u64;
    if dual_epoch_sessions == 0 {
        failures.push(
            "no session was ever observed served at two distinct epochs — the partition \
             never produced the zombie/adopter overlap this harness exists to test"
                .to_string(),
        );
    }

    // --- verdict 3: fences did their job (nonzero fenced rejections, no
    // replication gaps), the takeover fired on the majority side only,
    // and the epoch/heartbeat families are in the scrapes ---
    let mut peer_clients: Vec<(usize, Client)> = Vec::new();
    for (p, &addr) in peer_socks.iter().enumerate() {
        match Client::connect(addr, args.seed ^ 0xfe9c ^ p as u64) {
            Ok(c) => peer_clients.push((p, c)),
            Err(e) => failures.push(format!("peer {p} unreachable after the heal: {e}")),
        }
    }
    let mut fenced_sum = 0u64;
    let mut gaps_sum = 0u64;
    let mut takeovers_sum = 0u64;
    let mut fenced_per_peer: Vec<(usize, u64)> = Vec::new();
    let mut epoch_gauge_max: BTreeMap<u64, u64> = BTreeMap::new();
    let mut peer_texts: Vec<(usize, String)> = Vec::new();
    for (p, c) in &mut peer_clients {
        let text = match c.metrics_text() {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!("metrics scrape on peer {p}: {e}"));
                continue;
            }
        };
        let fenced = scraped_family_sum(&text, "elm_cluster_fenced_total");
        fenced_sum += fenced;
        fenced_per_peer.push((*p, fenced));
        gaps_sum += scraped_family_sum(&text, "elm_cluster_replication_gaps_total");
        takeovers_sum += scraped_family_sum(&text, "elm_cluster_takeovers_total");
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            if let Some(rest) = line.strip_prefix("elm_cluster_epoch{session=\"") {
                if let Some((sid, val)) = rest.split_once("\"}") {
                    if let (Ok(sid), Ok(v)) = (sid.parse::<u64>(), val.trim().parse::<f64>()) {
                        let e = epoch_gauge_max.entry(sid).or_insert(0);
                        *e = (*e).max(v as u64);
                    }
                }
            }
        }
        if !text.contains("elm_cluster_heartbeat_age_ms{peer=\"") {
            failures.push(format!(
                "peer {p} scrape lacks elm_cluster_heartbeat_age_ms"
            ));
        }
        peer_texts.push((*p, text));
    }
    if args.no_fencing {
        if fenced_sum != 0 {
            failures.push(format!(
                "fencing is off but {fenced_sum} rejections were counted"
            ));
        }
    } else if fenced_sum == 0 {
        failures.push(
            "the zombie's stale backlog was never fenced (elm_cluster_fenced_total = 0)"
                .to_string(),
        );
    }
    if gaps_sum != 0 {
        failures.push(format!("replication recorded {gaps_sum} gap(s)"));
    }
    if takeovers_sum != counts[victim] as u64 {
        failures.push(format!(
            "{} sessions were isolated with peer {victim} but the group counts \
             {takeovers_sum} takeovers (minority-side adoptions would double this)",
            counts[victim]
        ));
    }
    if !args.no_fencing {
        for k in (0..sessions as u64).filter(|&k| placement[k as usize] == victim) {
            if epoch_gauge_max.get(&k).copied().unwrap_or(0) < 2 {
                failures.push(format!(
                    "isolated session {k} never shows epoch >= 2 in any elm_cluster_epoch gauge"
                ));
            }
        }
    }

    // --- verdict 4: the healed zombie is redirect-only — exactly one
    // peer serves each isolated session, and the victim answers with a
    // typed moved redirect at the adopter ---
    for k in (0..sessions).filter(|&k| placement[k] == victim) {
        let mut served: Vec<usize> = Vec::new();
        let mut victim_moved = false;
        for (p, c) in &mut peer_clients {
            match c.query(k as u64) {
                Ok(reply) if matches!(reply.get("ok"), Some(Json::Bool(true))) => served.push(*p),
                Ok(reply) if reply.get("error").and_then(Json::as_str) == Some("moved") => {
                    if *p == victim {
                        victim_moved = true;
                    }
                }
                Ok(reply) => failures.push(format!(
                    "isolated session {k}: peer {p} gave neither value nor redirect: {reply:?}"
                )),
                Err(e) => failures.push(format!("isolated session {k}: query on peer {p}: {e}")),
            }
        }
        if served.len() != 1 {
            failures.push(format!(
                "isolated session {k}: served by peers {served:?} after the heal, expected \
                 exactly one"
            ));
        } else if served == [victim] {
            failures.push(format!(
                "isolated session {k}: still served by the demoted zombie after the heal"
            ));
        }
        if !victim_moved && !args.no_fencing {
            failures.push(format!(
                "isolated session {k}: the healed zombie did not answer redirect-only"
            ));
        }
    }

    // --- verdict 5: the flight recorders hold the fencing story — a
    // `fenced` rejection on the majority side and a `demote` on the
    // zombie — and the federated scrape carries the new families ---
    let mut saw_fenced = false;
    let mut saw_demote = false;
    let mut blackbox_texts: Vec<(usize, String)> = Vec::new();
    for (p, c) in &mut peer_clients {
        match c.blackbox_text() {
            Ok(text) => {
                for line in text.lines() {
                    let Ok(r) = serde_json::from_str::<Json>(line) else {
                        continue;
                    };
                    match r.get("kind").and_then(Json::as_str) {
                        Some("fenced") => saw_fenced = true,
                        Some("demote") if *p == victim => saw_demote = true,
                        _ => {}
                    }
                }
                blackbox_texts.push((*p, text));
            }
            Err(e) => failures.push(format!("blackbox fetch on peer {p}: {e}")),
        }
    }
    if !args.no_fencing {
        if !saw_fenced {
            failures.push("no peer's flight recorder holds a `fenced` record".to_string());
        }
        if !saw_demote {
            failures.push("the zombie's flight recorder holds no `demote` record".to_string());
        }
    }
    let mut federated_text = String::new();
    match peer_clients.first_mut() {
        Some((_, c)) => match c.metrics_text_cluster() {
            Ok(text) => federated_text = text,
            Err(e) => failures.push(format!("federated metrics scrape: {e}")),
        },
        None => failures.push("no peer available for the federated scrape".to_string()),
    }
    if !federated_text.is_empty() {
        for needle in [
            "elm_cluster_fenced_total{peer=\"",
            "elm_cluster_heartbeat_age_ms{peer=\"",
        ] {
            if !federated_text.contains(needle) {
                failures.push(format!("federated scrape lacks {needle}...}} samples"));
            }
        }
        write_artifact(
            "BENCH_partition_federated.prom",
            federated_text.clone(),
            &mut failures,
        );
    }

    if !failures.is_empty() {
        for (p, text) in &blackbox_texts {
            let path = format!("BLACKBOX_partition_failure_peer{p}.ndjson");
            if std::fs::write(&path, text).is_ok() {
                eprintln!("loadgen: preserved flight recorder in {path}");
            }
        }
    }

    kill_all(&mut children);

    let moves_total: u64 = outs.iter().flatten().map(|o| o.moves).sum();
    let reconnects_total: u64 = outs.iter().flatten().map(|o| o.reconnects).sum();
    let resyncs_total: u64 = outs.iter().flatten().map(|o| o.resyncs).sum();
    let stale_total: u64 = outs.iter().flatten().map(|o| o.stale_epochs).sum();
    let driven_total = driven.load(Ordering::Relaxed);
    println!(
        "partition: {driven_total} events across {sessions} sessions in {:.2}s, \
         {takeovers_sum} takeovers, {fenced_sum} fenced rejections, {split_brain} split-brain \
         probe hits over {probe_samples} samples ({dual_epoch_sessions} dual-epoch sessions), \
         {resyncs_total} resyncs, {moves_total} moved redirects, {stale_total} stale-epoch reads",
        elapsed.as_secs_f64()
    );
    for f in &failures {
        eprintln!("loadgen: PARTITION FAILURE: {f}");
    }
    let verdict = if failures.is_empty() { "OK" } else { "FAILED" };
    println!("partition verdict = {verdict}");

    let report = Json::Map(vec![
        (
            "benchmark".to_string(),
            Json::Str("server-partition".to_string()),
        ),
        ("peers".to_string(), Json::U64(PEERS as u64)),
        ("sessions".to_string(), Json::U64(sessions as u64)),
        ("events_per_session".to_string(), Json::U64(events as u64)),
        ("seed".to_string(), Json::U64(args.seed)),
        ("fencing".to_string(), Json::Bool(!args.no_fencing)),
        ("victim".to_string(), Json::U64(victim as u64)),
        (
            "victim_sessions".to_string(),
            Json::U64(counts[victim] as u64),
        ),
        ("partition_start_ms".to_string(), Json::U64(PART_START_MS)),
        ("partition_dur_ms".to_string(), Json::U64(PART_DUR_MS)),
        ("setup_ms".to_string(), Json::U64(setup_ms)),
        ("elapsed_s".to_string(), Json::F64(elapsed.as_secs_f64())),
        ("driven_events".to_string(), Json::U64(driven_total)),
        ("takeovers_total".to_string(), Json::U64(takeovers_sum)),
        ("fenced_total".to_string(), Json::U64(fenced_sum)),
        (
            "fenced_per_peer".to_string(),
            Json::Seq(
                fenced_per_peer
                    .iter()
                    .map(|&(p, n)| {
                        Json::Map(vec![
                            ("peer".to_string(), Json::U64(p as u64)),
                            ("fenced".to_string(), Json::U64(n)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("replication_gaps_total".to_string(), Json::U64(gaps_sum)),
        ("probe_samples".to_string(), Json::U64(probe_samples)),
        ("split_brain_hits".to_string(), Json::U64(split_brain)),
        (
            "dual_epoch_sessions".to_string(),
            Json::U64(dual_epoch_sessions),
        ),
        ("moves_total".to_string(), Json::U64(moves_total)),
        ("reconnects_total".to_string(), Json::U64(reconnects_total)),
        ("resyncs_total".to_string(), Json::U64(resyncs_total)),
        ("stale_epoch_reads".to_string(), Json::U64(stale_total)),
        ("verdict".to_string(), Json::Str(verdict.to_string())),
    ]);
    let pretty = serde_json::to_string_pretty(&report).expect("report serialize");
    let out = if args.out == "BENCH_server.json" {
        "BENCH_partition.json".to_string()
    } else {
        args.out.clone()
    };
    let mut code = i32::from(!failures.is_empty());
    if let Err(e) = std::fs::write(&out, pretty + "\n") {
        eprintln!("loadgen: PARTITION FAILURE: cannot write {out}: {e}");
        code = 1;
    } else {
        eprintln!("loadgen: wrote {out}");
    }
    exit(code)
}

fn main() {
    let args = parse_args();
    if args.partition {
        run_partition(&args);
    }
    if args.cluster {
        run_cluster(&args);
    }
    if args.fleet {
        run_fleet(&args);
    }
    if args.overload {
        run_overload(&args);
    }
    let program = args
        .program
        .clone()
        .unwrap_or_else(|| if args.chaos { "chaos" } else { "dashboard" }.to_string());
    let faults = if args.chaos {
        FaultPlan {
            seed: args.seed,
            node_panic: args.panic_prob,
            crash: args.crash_prob,
            stall: args.stall_prob,
            stall_ms: 2,
            queue_full_burst: 0.002,
            burst_len: 48,
            journal_fail: args.journal_fail_prob,
            ..FaultPlan::disabled()
        }
    } else {
        FaultPlan::disabled()
    };
    if args.chaos {
        // Injected poison pills panic inside node closures by design;
        // keep their backtraces out of the report. Anything else still
        // reaches the default hook.
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            if !msg.starts_with("chaos:") && !msg.starts_with("crashy:") {
                previous(info);
            }
        }));
    }
    eprintln!(
        "loadgen: {} sessions x {} events, program '{}', {} shards, queue {}, policy {}{}",
        args.sessions,
        args.events,
        program,
        args.shards,
        args.queue,
        args.policy.label(),
        if args.chaos { ", CHAOS" } else { "" }
    );

    let traces = Simulator::fan_out_with_faults(args.seed, args.sessions, args.events, &faults);
    let server = Arc::new(Server::start(ServerConfig {
        shards: args.shards,
        session: SessionConfig {
            queue_capacity: args.queue,
            policy: args.policy,
            snapshot_interval: args.snapshot_interval.max(1),
            // Seal journal segments at the snapshot cadence so truncation
            // keeps pace with snapshots.
            journal_segment: args.snapshot_interval.max(1) as usize,
            restart: RestartPolicy {
                // Chaos runs must never exhaust the budget by sheer fault
                // volume; budget exhaustion is a failure we detect, not a
                // load knob.
                max_restarts: 100_000,
                ..RestartPolicy::default()
            },
            faults,
            // Observability is the point of this binary: every session
            // records spans and per-node timing histograms.
            observe: true,
            ..SessionConfig::default()
        },
        idle_timeout: None,
        admission: AdmissionConfig::default(),
    }));

    let mut session_ids = Vec::with_capacity(args.sessions);
    for _ in 0..args.sessions {
        let info = server
            .open(ProgramSpec::Builtin(&program), None, None, true)
            .unwrap_or_else(|e| {
                eprintln!("loadgen: open failed: {e}");
                exit(1);
            });
        session_ids.push(info.session);
    }

    // Concurrent ingest: one driver thread per session, batching events
    // and then waiting for the session's queue to drain.
    let started = Instant::now();
    let mut drivers = Vec::with_capacity(args.sessions);
    for (i, &session) in session_ids.iter().enumerate() {
        let server = Arc::clone(&server);
        let trace = traces[i].clone();
        drivers.push(thread::spawn(move || {
            let events: Vec<(String, PlainValue)> = trace
                .events
                .into_iter()
                .map(|e| (e.input, e.value))
                .collect();
            for chunk in events.chunks(BATCH) {
                server.batch(session, chunk).expect("batch");
            }
            while server.query(session).expect("query").queue_len > 0 {
                thread::sleep(Duration::from_millis(1));
            }
        }));
    }
    for d in drivers {
        d.join().expect("driver thread");
    }
    let elapsed = started.elapsed();

    let (global, per_session) = server.stats();
    let metrics_text = server.metrics_text();
    let total_events = (args.sessions * args.events) as f64;
    let events_per_sec = total_events / elapsed.as_secs_f64();

    // Isolation / recovery-correctness check: each session's final value
    // must equal a single-session synchronous replay of its own trace —
    // in chaos mode that replay is uninterrupted, so it also proves
    // crash recovery lost and duplicated nothing.
    let mut mismatches = 0usize;
    for (i, &session) in session_ids.iter().enumerate() {
        let served = server.query(session).expect("final query").value;
        let replayed = sync_replay(&server, &program, &traces[i]);
        if served != replayed {
            mismatches += 1;
            eprintln!(
                "loadgen: ISOLATION MISMATCH session {session}: served {served:?} != replay {replayed:?}"
            );
        }
    }
    let isolation = if mismatches == 0 { "OK" } else { "FAILED" };

    println!(
        "sessions={} events/session={} total={}",
        args.sessions, args.events, total_events as u64
    );
    println!(
        "elapsed={:.3}s throughput={:.0} events/sec",
        elapsed.as_secs_f64(),
        events_per_sec
    );
    println!(
        "ingest-to-output latency: p50={}us p90={}us p99={}us max={}us ({} samples)",
        global.latency.p50_us,
        global.latency.p90_us,
        global.latency.p99_us,
        global.latency.max_us,
        global.latency.count
    );
    println!(
        "ingress: enqueued={} ignored={} dropped={} coalesced={}",
        global.ingress.enqueued,
        global.ingress.ignored,
        global.ingress.dropped,
        global.ingress.coalesced
    );
    println!(
        "runtime: events={} computations={} memo_skips={}",
        global.runtime.events, global.runtime.computations, global.runtime.memo_skips
    );
    println!("per-session isolation check = {isolation}");

    // Chaos verdicts.
    let affected = per_session
        .iter()
        .filter(|s| s.runtime.node_panics > 0)
        .count();
    let mut chaos_failures: Vec<String> = Vec::new();
    if args.chaos {
        println!(
            "recovery: restarts={} replayed_events={} max_replay={} snapshots={} \
             journal_failures={} recovery_failed={}",
            global.recovery.restarts,
            global.recovery.replayed_events,
            global.recovery.max_replay,
            global.recovery.snapshot_count,
            global.recovery.journal_failures,
            global.recovery_failed
        );
        println!(
            "chaos: {}/{} sessions hit by node panics",
            affected, args.sessions
        );
        if global.recovery_failed > 0 {
            chaos_failures.push(format!(
                "{} session(s) exhausted their restart budget",
                global.recovery_failed
            ));
        }
        if global.recovery.max_replay > args.snapshot_interval.max(1) {
            chaos_failures.push(format!(
                "a recovery replayed {} events, above the snapshot interval {}",
                global.recovery.max_replay, args.snapshot_interval
            ));
        }
        if args.panic_prob > 0.0 && affected * 4 < args.sessions {
            chaos_failures.push(format!(
                "only {affected}/{} sessions saw a node panic (< 25%)",
                args.sessions
            ));
        }
        // The metrics endpoint must agree with the supervisor about how
        // many restarts happened — a scrape is only useful if it tells
        // the same story as the recovery machinery itself.
        let scraped = scraped_restarts_total(&metrics_text);
        if scraped != global.recovery.restarts {
            chaos_failures.push(format!(
                "metrics endpoint reports {scraped} restarts but the supervisor counted {}",
                global.recovery.restarts
            ));
        } else {
            println!(
                "metrics cross-check: elm_restarts_total sum {scraped} == supervisor restarts"
            );
        }
        for f in &chaos_failures {
            eprintln!("loadgen: CHAOS FAILURE: {f}");
        }
        if chaos_failures.is_empty() {
            println!("chaos verdict = OK");
        } else {
            println!("chaos verdict = FAILED");
        }
    }

    // Trace-reconstruction acceptance: the same seeded workload, traced on
    // BOTH schedulers, must yield span trees matching the graph's causal
    // structure. The synchronous run's artifacts are kept for inspection.
    let mut trace_failures: Vec<String> = Vec::new();
    let mut sync_trees: Vec<PlainSpanTree> = Vec::new();
    let mut sync_timings = Vec::new();
    match trace_check(&server, &program, args.seed, Engine::Synchronous) {
        Ok((trees, timings)) => {
            sync_trees = trees;
            sync_timings = timings;
        }
        Err(e) => trace_failures.push(format!("synchronous scheduler: {e}")),
    }
    if let Err(e) = trace_check(&server, &program, args.seed, Engine::Concurrent) {
        trace_failures.push(format!("concurrent scheduler: {e}"));
    }
    for f in &trace_failures {
        eprintln!("loadgen: TRACE FAILURE: {f}");
    }
    let trace_verdict = if trace_failures.is_empty() {
        "OK"
    } else {
        "FAILED"
    };
    println!(
        "trace reconstruction check = {trace_verdict} ({} trees, both schedulers)",
        sync_trees.len()
    );

    // Observability artifacts: span trees, the Prometheus scrape, and a
    // heat-annotated DOT rendering of the traced graph. A bench run whose
    // evidence cannot be written must not report OK.
    let mut artifact_failures: Vec<String> = Vec::new();
    let trace_json =
        serde_json::to_string_pretty(&serde_json::to_value(&sync_trees).expect("trees serialize"))
            .expect("trees serialize");
    for (path, contents) in [
        ("BENCH_trace.json", trace_json + "\n"),
        ("BENCH_metrics.prom", metrics_text.clone()),
        (
            "BENCH_heat.dot",
            server
                .registry()
                .resolve(ProgramSpec::Builtin(&program))
                .map(|(_, graph)| {
                    let heat: Vec<u64> = sync_timings.iter().map(|t| t.compute.sum).collect();
                    dot::to_dot_with_heat(&graph, &heat)
                })
                .unwrap_or_default(),
        ),
    ] {
        write_artifact(path, contents, &mut artifact_failures);
    }
    for f in &artifact_failures {
        eprintln!("loadgen: ARTIFACT FAILURE: {f}");
    }
    let overall = if mismatches == 0
        && chaos_failures.is_empty()
        && trace_failures.is_empty()
        && artifact_failures.is_empty()
    {
        "OK"
    } else {
        "FAILED"
    };
    println!("verdict = {overall}");

    let report = Json::Map(vec![
        (
            "benchmark".to_string(),
            Json::Str("server-loadgen".to_string()),
        ),
        ("program".to_string(), Json::Str(program.clone())),
        ("sessions".to_string(), Json::U64(args.sessions as u64)),
        (
            "events_per_session".to_string(),
            Json::U64(args.events as u64),
        ),
        ("shards".to_string(), Json::U64(args.shards as u64)),
        ("queue_capacity".to_string(), Json::U64(args.queue as u64)),
        (
            "policy".to_string(),
            Json::Str(args.policy.label().to_string()),
        ),
        ("seed".to_string(), Json::U64(args.seed)),
        ("chaos".to_string(), Json::Bool(args.chaos)),
        (
            "snapshot_interval".to_string(),
            Json::U64(args.snapshot_interval),
        ),
        ("sessions_panicked".to_string(), Json::U64(affected as u64)),
        ("elapsed_s".to_string(), Json::F64(elapsed.as_secs_f64())),
        ("events_per_sec".to_string(), Json::F64(events_per_sec)),
        (
            "latency_p50_us".to_string(),
            Json::U64(global.latency.p50_us),
        ),
        (
            "latency_p90_us".to_string(),
            Json::U64(global.latency.p90_us),
        ),
        (
            "latency_p99_us".to_string(),
            Json::U64(global.latency.p99_us),
        ),
        (
            "latency_max_us".to_string(),
            Json::U64(global.latency.max_us),
        ),
        (
            "latency_samples".to_string(),
            Json::U64(global.latency.count),
        ),
        (
            "global".to_string(),
            serde_json::to_value(&global).expect("stats serialize"),
        ),
        ("isolation".to_string(), Json::Str(isolation.to_string())),
        (
            "trace_check".to_string(),
            Json::Str(trace_verdict.to_string()),
        ),
        (
            "trace_trees".to_string(),
            Json::U64(sync_trees.len() as u64),
        ),
        (
            "restarts_total_scraped".to_string(),
            Json::U64(scraped_restarts_total(&metrics_text)),
        ),
        (
            "chaos_verdict".to_string(),
            Json::Str(
                if !args.chaos {
                    "n/a"
                } else if chaos_failures.is_empty() {
                    "OK"
                } else {
                    "FAILED"
                }
                .to_string(),
            ),
        ),
        ("verdict".to_string(), Json::Str(overall.to_string())),
    ]);
    let pretty = serde_json::to_string_pretty(&report).expect("report serialize");
    let mut report_write_failed = false;
    if let Err(e) = std::fs::write(&args.out, pretty + "\n") {
        eprintln!("loadgen: ARTIFACT FAILURE: cannot write {}: {e}", args.out);
        report_write_failed = true;
    } else {
        eprintln!("loadgen: wrote {}", args.out);
    }

    if let Ok(s) = Arc::try_unwrap(server) {
        s.shutdown();
    }
    if overall != "OK" || report_write_failed {
        exit(1);
    }
}
