//! Load generator: drives M concurrent sessions with simulator traces
//! and reports throughput, ingest-to-output latency percentiles, and a
//! per-session isolation check against single-session synchronous
//! replay.
//!
//! ```text
//! loadgen [--sessions M] [--events N] [--program NAME] [--shards N]
//!         [--queue N] [--policy P] [--seed S] [--out BENCH_server.json]
//!         [--chaos] [--snapshot-interval N] [--crash-prob P]
//!         [--panic-prob P] [--journal-fail-prob P] [--stall-prob P]
//! ```
//!
//! `--events` is per session; the default workload is 64 sessions ×
//! 10000 events of mixed mouse/keyboard/timer traffic, each session on
//! its own deterministic seed.
//!
//! Sessions are opened with `observe: true`, so every run also exercises
//! the observability surface: it dumps the Prometheus scrape
//! (`BENCH_metrics.prom`), the reconstructed span trees of a seeded
//! traced workload (`BENCH_trace.json`), and a heat-annotated DOT
//! rendering of the graph (`BENCH_heat.dot`), and fails if span trees on
//! either scheduler do not match the graph's causal structure.
//!
//! `--chaos` turns on the deterministic fault-injection harness: traces
//! are laced with poison-pill events and queue bursts, sessions suffer
//! seeded runtime crashes and journal append failures, and shard workers
//! stall — all derived from `--seed`. The run fails (nonzero exit) if
//! any session's recovery fails, any recovery replays more than the
//! snapshot interval, any recovered session's final output diverges from
//! an uninterrupted synchronous replay, or (with panics enabled) fewer
//! than a quarter of the sessions were actually hit by a panic.

use std::process::exit;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use elm_environment::{FaultPlan, Simulator};
use elm_runtime::{
    assemble, dot, reachable_from, NodeId, PlainSpanTree, PlainValue, Trace, Tracer,
};
use elm_server::{
    AdmissionConfig, BackpressurePolicy, ProgramSpec, RestartPolicy, Server, ServerConfig,
    SessionConfig,
};
use elm_signals::{Engine, Program};
use serde_json::Value as Json;

const BATCH: usize = 64;

struct Args {
    sessions: usize,
    events: usize,
    program: Option<String>,
    shards: usize,
    queue: usize,
    policy: BackpressurePolicy,
    seed: u64,
    out: String,
    chaos: bool,
    overload: bool,
    snapshot_interval: u64,
    crash_prob: f64,
    panic_prob: f64,
    journal_fail_prob: f64,
    stall_prob: f64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sessions: 64,
            events: 10_000,
            program: None,
            shards: ServerConfig::default().shards,
            queue: 1024,
            policy: BackpressurePolicy::Block,
            seed: 42,
            out: "BENCH_server.json".to_string(),
            chaos: false,
            overload: false,
            snapshot_interval: 256,
            crash_prob: 0.0005,
            panic_prob: 0.005,
            journal_fail_prob: 0.001,
            stall_prob: 0.01,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--sessions M] [--events N] [--program NAME] [--shards N] \
         [--queue N] [--policy block|drop-oldest|coalesce] [--seed S] [--out FILE] \
         [--chaos] [--overload] [--snapshot-interval N] [--crash-prob P] [--panic-prob P] \
         [--journal-fail-prob P] [--stall-prob P]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut a = Args::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--sessions" => a.sessions = value().parse().unwrap_or_else(|_| usage()),
            "--events" => a.events = value().parse().unwrap_or_else(|_| usage()),
            "--program" => a.program = Some(value()),
            "--shards" => a.shards = value().parse().unwrap_or_else(|_| usage()),
            "--queue" => a.queue = value().parse().unwrap_or_else(|_| usage()),
            "--policy" => a.policy = BackpressurePolicy::parse(&value()).unwrap_or_else(|| usage()),
            "--seed" => a.seed = value().parse().unwrap_or_else(|_| usage()),
            "--out" => a.out = value(),
            "--chaos" => a.chaos = true,
            "--overload" => a.overload = true,
            "--snapshot-interval" => {
                a.snapshot_interval = value().parse().unwrap_or_else(|_| usage())
            }
            "--crash-prob" => a.crash_prob = value().parse().unwrap_or_else(|_| usage()),
            "--panic-prob" => a.panic_prob = value().parse().unwrap_or_else(|_| usage()),
            "--journal-fail-prob" => {
                a.journal_fail_prob = value().parse().unwrap_or_else(|_| usage())
            }
            "--stall-prob" => a.stall_prob = value().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    a
}

/// Replays `trace` through a fresh single-session synchronous runtime,
/// skipping inputs the program does not declare — exactly the events the
/// server admits — and returns the final output value. In chaos mode
/// this is the uninterrupted oracle every recovered session must match.
fn sync_replay(server: &Server, program: &str, trace: &Trace) -> PlainValue {
    let (_, graph) = server
        .registry()
        .resolve(ProgramSpec::Builtin(program))
        .expect("program resolved once already");
    let mut running = Program::from_dynamic_graph(graph.clone()).start(Engine::Synchronous);
    for e in &trace.events {
        if graph.input_named(&e.input).is_some() {
            running
                .send_named(&e.input, e.value.to_value())
                .expect("replay event");
        }
    }
    running.drain_raw().expect("replay drain");
    PlainValue::from_value(running.current()).expect("replay value is plain")
}

/// Runs a seeded simulator workload through an *observed* single-session
/// runtime on `engine` and checks that the reconstructed span trees match
/// the graph's causal structure: every tree's node set is contained in the
/// reachable subgraph of its ingress node, and at least one tree covers
/// that subgraph exactly. Returns the plain span trees plus the tracer's
/// per-node timing snapshots on success.
fn trace_check(
    server: &Server,
    program: &str,
    seed: u64,
    engine: Engine,
) -> Result<(Vec<PlainSpanTree>, Vec<elm_runtime::NodeTimingSnapshot>), String> {
    const TRACE_EVENTS: usize = 200;
    let (_, graph) = server
        .registry()
        .resolve(ProgramSpec::Builtin(program))
        .map_err(|e| format!("resolve: {e}"))?;
    let tracer = Tracer::for_graph(&graph);
    tracer.set_enabled(true);
    let mut running =
        Program::from_dynamic_graph(graph.clone()).start_observed(engine, Some(tracer.clone()));
    let workload = Simulator::workload(seed, TRACE_EVENTS);
    for e in &workload.events {
        if graph.input_named(&e.input).is_some() {
            running
                .send_named(&e.input, e.value.to_value())
                .map_err(|e| format!("send: {e}"))?;
        }
    }
    running.drain_raw().map_err(|e| format!("drain: {e}"))?;
    running.stop();

    let spans = tracer.drain_spans();
    let trees = assemble(&spans, &graph);
    if trees.is_empty() {
        return Err("no span trees reconstructed".to_string());
    }
    let mut exact = 0usize;
    for tree in &trees {
        let roots = tree.roots();
        if roots.is_empty() {
            return Err(format!("trace {} has no root span", tree.trace.0));
        }
        let mut reachable = std::collections::BTreeSet::new();
        for &r in &roots {
            reachable.extend(reachable_from(&graph, NodeId(tree.spans[r].node)));
        }
        let nodes = tree.node_set();
        if !nodes.is_subset(&reachable) {
            return Err(format!(
                "trace {}: span nodes {nodes:?} escape the reachable subgraph {reachable:?}",
                tree.trace.0
            ));
        }
        if nodes == reachable {
            exact += 1;
        }
    }
    if exact == 0 {
        return Err(format!(
            "none of {} trees covered its reachable subgraph exactly",
            trees.len()
        ));
    }
    let plain = trees.iter().map(|t| t.to_plain(&graph)).collect();
    Ok((plain, tracer.node_timings()))
}

/// Sums every `elm_restarts_total{...}` sample in Prometheus exposition
/// text — the scrape-side view of supervised restarts.
fn scraped_restarts_total(metrics_text: &str) -> u64 {
    metrics_text
        .lines()
        .filter(|l| l.starts_with("elm_restarts_total"))
        .filter_map(|l| l.rsplit_once(' '))
        .filter_map(|(_, v)| v.parse::<f64>().ok())
        .sum::<f64>() as u64
}

/// Sums every sample of one exactly-named Prometheus family (bare or
/// labelled) in exposition text.
fn scraped_family_sum(metrics_text: &str, family: &str) -> u64 {
    metrics_text
        .lines()
        .filter(|l| !l.starts_with('#') && l.starts_with(family))
        .filter(|l| matches!(l.as_bytes().get(family.len()), Some(b'{') | Some(b' ')))
        .filter_map(|l| l.rsplit_once(' '))
        .filter_map(|(_, v)| v.parse::<f64>().ok())
        .sum::<f64>() as u64
}

/// Duplicates events in bursts according to the plan's flood stream —
/// the overload traffic shape. The laced trace is what both the server
/// and the oracle replay see, so isolation checks stay exact.
fn lace_with_floods(trace: &elm_runtime::Trace, plan: &FaultPlan, id: u64) -> elm_runtime::Trace {
    use rand::Rng;
    if plan.flood <= 0.0 || plan.flood_len == 0 {
        return trace.clone();
    }
    let mut rng = plan.rng(elm_environment::fault::STREAM_FLOOD, id);
    let mut out = elm_runtime::Trace::new();
    for e in &trace.events {
        out.events.push(e.clone());
        if rng.gen_bool(plan.flood) {
            for _ in 0..plan.flood_len {
                out.events.push(e.clone());
            }
        }
    }
    out
}

/// [`sync_replay`] under the same fuel/alloc/depth governor the live
/// sessions ran with — and deliberately *no* deadline, since wall-clock
/// traps would not replay deterministically. Fuel traps do: the oracle
/// traps (and rolls back) exactly the events the live session trapped.
fn governed_sync_replay(
    server: &Server,
    program: &str,
    trace: &elm_runtime::Trace,
    limits: elm_runtime::EventLimits,
) -> PlainValue {
    let (_, graph) = server
        .registry()
        .resolve(ProgramSpec::Builtin(program))
        .expect("program resolved once already");
    let mut running = Program::from_dynamic_graph(graph.clone()).start(Engine::Synchronous);
    running.set_governor(Some(limits), None);
    for e in &trace.events {
        if graph.input_named(&e.input).is_some() {
            running
                .send_named(&e.input, e.value.to_value())
                .expect("replay event");
        }
    }
    running.drain_raw().expect("replay drain");
    PlainValue::from_value(running.current()).expect("replay value is plain")
}

/// The `--overload` harness: a deliberately over-driven server with
/// admission control, fueled sessions, hostile builtin programs, a
/// control-plane liveness probe, and a slow-subscriber segment — all
/// checked against deterministic oracles and the scraped metrics.
fn run_overload(args: &Args) -> ! {
    use elm_environment::fault::STREAM_RUNAWAY;
    use elm_runtime::{EventLimits, TrapKind};
    use elm_server::client::{Client, RetryStats};
    use elm_server::net::{self, serve_with, NetConfig};
    use elm_server::EnqueueOutcome;
    use rand::Rng;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let sessions = args.sessions.clamp(1, 6);
    let events = args.events.min(1_200);
    let governed_events = 300usize;
    let plan = FaultPlan::flood(args.seed);
    let limits = EventLimits {
        fuel: 200_000,
        max_alloc_cells: 500_000,
        max_depth: 10_000,
    };
    eprintln!(
        "loadgen: OVERLOAD {} counter sessions x {} laced events + runaway/membomb x {}, seed {}",
        sessions, events, governed_events, args.seed
    );

    let server = Arc::new(Server::start(ServerConfig {
        shards: 2,
        session: SessionConfig {
            queue_capacity: args.queue,
            policy: BackpressurePolicy::Block,
            limits: Some(limits),
            // Wall-clock deadlines would trap nondeterministically and
            // break the replay oracles; the overload run relies on the
            // deterministic fuel/alloc/depth budget alone.
            event_timeout: None,
            ..SessionConfig::default()
        },
        idle_timeout: None,
        admission: AdmissionConfig {
            enabled: true,
            session_events_per_sec: 4_000.0,
            session_burst: 128.0,
            session_cells_per_sec: 40_000_000.0,
            session_cells_burst: 4_000_000.0,
            ..AdmissionConfig::default()
        },
    }));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    {
        let server = Arc::clone(&server);
        thread::spawn(move || serve_with(server, listener, NetConfig::default()));
    }
    // A second front end with a tiny outbound queue and a short write
    // deadline, so the slow-subscriber segment converges quickly.
    let slow_listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let slow_addr = slow_listener.local_addr().expect("addr");
    {
        let server = Arc::clone(&server);
        let config = NetConfig {
            outbound_queue: 8,
            write_deadline: Duration::from_millis(100),
            ..NetConfig::default()
        };
        thread::spawn(move || serve_with(server, slow_listener, config));
    }

    let mut failures: Vec<String> = Vec::new();

    // --- data-plane flood through retrying TCP clients ---
    let traces: Vec<elm_runtime::Trace> = Simulator::fan_out(args.seed, sessions, events)
        .iter()
        .enumerate()
        .map(|(i, t)| lace_with_floods(t, &plan, i as u64))
        .collect();
    let mut counter_ids = Vec::with_capacity(sessions);
    for _ in 0..sessions {
        let info = server
            .open(ProgramSpec::Builtin("counter"), None, None, false)
            .expect("open counter");
        counter_ids.push(info.session);
    }
    let runaway_sid = server
        .open(ProgramSpec::Builtin("runaway"), None, None, false)
        .expect("open runaway")
        .session;
    let membomb_sid = server
        .open(ProgramSpec::Builtin("membomb"), None, None, false)
        .expect("open membomb")
        .session;

    // Control-plane probe: while the flood runs, stats/query/metrics on
    // a dedicated connection must be answered 100% of the time.
    let stop_probe = Arc::new(AtomicBool::new(false));
    let probe_attempted = Arc::new(AtomicU64::new(0));
    let probe_answered = Arc::new(AtomicU64::new(0));
    let prober = {
        let stop = Arc::clone(&stop_probe);
        let attempted = Arc::clone(&probe_attempted);
        let answered = Arc::clone(&probe_answered);
        let probe_session = counter_ids[0];
        let mut client = Client::connect(addr, args.seed ^ 0xdead).expect("probe connect");
        thread::spawn(move || {
            let verbs = [
                "{\"cmd\":\"stats\"}".to_string(),
                format!("{{\"cmd\":\"query\",\"session\":{probe_session}}}"),
                format!("{{\"cmd\":\"stats\",\"session\":{probe_session}}}"),
            ];
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                attempted.fetch_add(1, Ordering::Relaxed);
                match client.request(&verbs[i % verbs.len()]) {
                    Ok(reply) if matches!(reply.get("ok"), Some(Json::Bool(true))) => {
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                i += 1;
                thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let started = Instant::now();
    let mut drivers = Vec::new();
    for (i, &session) in counter_ids.iter().enumerate() {
        let trace = traces[i].clone();
        let seed = args.seed + 1 + i as u64;
        drivers.push(thread::spawn(move || -> Result<RetryStats, String> {
            let mut client = Client::connect(addr, seed).map_err(|e| format!("connect: {e}"))?;
            for e in &trace.events {
                let value = serde_json::to_string(
                    &serde_json::to_value(&e.value).expect("value serializes"),
                )
                .expect("value serializes");
                let reply = client
                    .event(session, &e.input, &value)
                    .map_err(|e| format!("event: {e}"))?;
                if reply.get("error").is_some() {
                    return Err(format!("event gave up after retries: {reply:?}"));
                }
            }
            Ok(client.stats())
        }));
    }
    // The hostile sessions: seeded triggers flip them into the runaway /
    // allocator-bomb branch; benign events just count.
    let mut governed = Vec::new();
    for (j, sid) in [runaway_sid, membomb_sid].into_iter().enumerate() {
        let seed = args.seed + 1000 + j as u64;
        let mut rng = plan.rng(STREAM_RUNAWAY, j as u64);
        let trigger_prob = plan.runaway.max(0.05);
        governed.push(thread::spawn(
            move || -> Result<(u64, u64, RetryStats), String> {
                let mut client =
                    Client::connect(addr, seed).map_err(|e| format!("connect: {e}"))?;
                let (mut triggers, mut benign) = (0u64, 0u64);
                for _ in 0..governed_events {
                    let hot = rng.gen_bool(trigger_prob);
                    let value = if hot { "{\"Int\":1}" } else { "{\"Int\":0}" };
                    let reply = client
                        .event(sid, "Keyboard.lastPressed", value)
                        .map_err(|e| format!("event: {e}"))?;
                    if reply.get("error").is_some() {
                        return Err(format!("event gave up after retries: {reply:?}"));
                    }
                    if hot {
                        triggers += 1;
                    } else {
                        benign += 1;
                    }
                }
                Ok((triggers, benign, client.stats()))
            },
        ));
    }

    let mut retry = RetryStats::default();
    for d in drivers {
        match d.join().expect("driver thread") {
            Ok(s) => {
                retry.requests += s.requests;
                retry.sheds += s.sheds;
                retry.retries += s.retries;
                retry.gave_up += s.gave_up;
            }
            Err(e) => failures.push(format!("counter driver: {e}")),
        }
    }
    let mut hostile: Vec<(u64, u64)> = Vec::new();
    for g in governed {
        match g.join().expect("governed driver") {
            Ok((triggers, benign, s)) => {
                hostile.push((triggers, benign));
                retry.requests += s.requests;
                retry.sheds += s.sheds;
                retry.retries += s.retries;
                retry.gave_up += s.gave_up;
            }
            Err(e) => failures.push(format!("hostile driver: {e}")),
        }
    }
    // Drain every queue before judging.
    for &sid in counter_ids.iter().chain([runaway_sid, membomb_sid].iter()) {
        while server.query(sid).expect("query").queue_len > 0 {
            thread::sleep(Duration::from_millis(1));
        }
    }
    let elapsed = started.elapsed();
    stop_probe.store(true, Ordering::Relaxed);
    prober.join().expect("prober thread");

    // --- verdict 1: the server stayed live for the control plane ---
    let attempted = probe_attempted.load(Ordering::Relaxed);
    let answered = probe_answered.load(Ordering::Relaxed);
    println!("control-plane probes: {answered}/{attempted} answered during the flood");
    if attempted == 0 || answered != attempted {
        failures.push(format!(
            "control plane dropped probes: {answered}/{attempted} answered"
        ));
    }

    // --- verdict 2: admitted traffic was applied exactly (isolation) ---
    let mut mismatches = 0usize;
    for (i, &sid) in counter_ids.iter().enumerate() {
        let served = server.query(sid).expect("final query").value;
        let replayed = governed_sync_replay(&server, "counter", &traces[i], limits);
        if served != replayed {
            mismatches += 1;
            eprintln!(
                "loadgen: OVERLOAD ISOLATION MISMATCH session {sid}: {served:?} != {replayed:?}"
            );
        }
    }
    if mismatches > 0 {
        failures.push(format!(
            "{mismatches} session(s) diverged from governed replay"
        ));
    }
    if retry.gave_up > 0 {
        failures.push(format!(
            "{} request(s) exhausted their retry budget",
            retry.gave_up
        ));
    }
    if retry.sheds == 0 {
        failures.push("the flood never tripped admission control (no sheds seen)".to_string());
    }
    println!(
        "retrying clients: {} requests, {} sheds ridden out, {} retries, {} gave up, {:.2}s",
        retry.requests,
        retry.sheds,
        retry.retries,
        retry.gave_up,
        elapsed.as_secs_f64()
    );

    // --- verdict 3: every hostile event trapped; the sessions live on ---
    for (label, sid, (triggers, benign), kind) in [
        (
            "runaway",
            runaway_sid,
            hostile.first().copied().unwrap_or((0, 0)),
            TrapKind::OutOfFuel,
        ),
        (
            "membomb",
            membomb_sid,
            hostile.get(1).copied().unwrap_or((0, 0)),
            TrapKind::OutOfMemory,
        ),
    ] {
        let stats = server.session_stats(sid).expect("hostile session stats");
        let value = server.query(sid).expect("hostile session query").value;
        println!(
            "{label}: {triggers} triggers -> {} traps ({} {}), {benign} benign -> value {value:?}",
            stats.traps.total(),
            stats.traps.count(kind),
            kind.label(),
        );
        if stats.traps.total() != triggers {
            failures.push(format!(
                "{label}: {triggers} hostile events but {} traps recorded",
                stats.traps.total()
            ));
        }
        if triggers > 0 && stats.traps.count(kind) == 0 {
            failures.push(format!("{label}: no {} trap recorded", kind.label()));
        }
        if value != PlainValue::Int(benign as i64) {
            failures.push(format!(
                "{label}: session did not survive cleanly: value {value:?} != Int({benign})"
            ));
        }
    }

    // --- verdict 4: a slow subscriber is cut, its peers unaffected ---
    let net_before = net::counters();
    let word_sid = server
        .open(ProgramSpec::Builtin("latest-word"), None, None, false)
        .expect("open latest-word")
        .session;
    let subscribe = || -> (std::net::TcpStream, std::io::BufReader<std::net::TcpStream>) {
        use std::io::{BufRead, Write};
        let stream = std::net::TcpStream::connect(slow_addr).expect("connect slow front end");
        let mut w = stream.try_clone().expect("clone");
        let mut r = std::io::BufReader::new(stream.try_clone().expect("clone"));
        w.write_all(format!("{{\"cmd\":\"subscribe\",\"session\":{word_sid}}}\n").as_bytes())
            .expect("subscribe");
        let mut line = String::new();
        r.read_line(&mut line).expect("subscribe reply");
        assert!(line.contains("\"ok\":true"), "{line}");
        (w, r)
    };
    let (_slow_stream, _slow_reader) = subscribe();
    let (_healthy_stream, mut healthy_reader) = subscribe();
    let healthy_seen = Arc::new(AtomicU64::new(0));
    {
        use std::io::BufRead;
        let seen = Arc::clone(&healthy_seen);
        thread::spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                match healthy_reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        if line.contains("\"update\":\"changed\"") {
                            seen.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        });
    }
    let fat = "w".repeat(48 * 1024);
    let cut_deadline = Instant::now() + Duration::from_secs(30);
    while net::counters().slow_disconnects == net_before.slow_disconnects {
        if Instant::now() > cut_deadline {
            failures.push("slow subscriber was never disconnected".to_string());
            break;
        }
        let _ = server.event(word_sid, "Words.input", PlainValue::Str(fat.clone()));
        let _ = server.query(word_sid);
    }
    // Peers must keep receiving after the cut.
    while let Ok(EnqueueOutcome::Shed { .. }) =
        server.event(word_sid, "Words.input", PlainValue::Str("tail".to_string()))
    {
        thread::sleep(Duration::from_millis(10));
    }
    let _ = server.query(word_sid);
    let seen = healthy_seen.load(Ordering::Relaxed);
    let tail_deadline = Instant::now() + Duration::from_secs(10);
    while healthy_seen.load(Ordering::Relaxed) == seen {
        if Instant::now() > tail_deadline {
            failures.push("healthy subscriber stalled after the slow one was cut".to_string());
            break;
        }
        let _ = server.query(word_sid);
        thread::sleep(Duration::from_millis(10));
    }
    let net_after = net::counters();
    println!(
        "slow-subscriber segment: {} disconnect(s), healthy peer saw {} update(s)",
        net_after.slow_disconnects - net_before.slow_disconnects,
        healthy_seen.load(Ordering::Relaxed)
    );

    // --- verdict 5: the scraped metrics balance and agree ---
    let metrics_text = server.metrics_text();
    let offered = scraped_family_sum(&metrics_text, "elm_admission_offered_total");
    let admitted = scraped_family_sum(&metrics_text, "elm_admitted_total");
    let shed = scraped_family_sum(&metrics_text, "elm_shed_total");
    println!("scraped admission ledger: offered={offered} admitted={admitted} shed={shed}");
    if admitted + shed != offered {
        failures.push(format!(
            "admission ledger does not balance: {admitted} admitted + {shed} shed != {offered} offered"
        ));
    }
    if shed == 0 {
        failures.push("metrics report zero sheds despite the flood".to_string());
    }
    let scraped_traps = scraped_family_sum(&metrics_text, "elm_traps_total");
    let (global, _) = server.stats();
    if scraped_traps != global.traps.total() {
        failures.push(format!(
            "metrics report {scraped_traps} traps but sessions counted {}",
            global.traps.total()
        ));
    }
    if scraped_family_sum(&metrics_text, "elm_subscriber_disconnects_total") == 0 {
        failures.push("metrics report zero subscriber disconnects".to_string());
    }

    for f in &failures {
        eprintln!("loadgen: OVERLOAD FAILURE: {f}");
    }
    let verdict = if failures.is_empty() { "OK" } else { "FAILED" };
    println!("overload verdict = {verdict}");

    let report = Json::Map(vec![
        (
            "benchmark".to_string(),
            Json::Str("server-overload".to_string()),
        ),
        ("sessions".to_string(), Json::U64(sessions as u64)),
        ("events_per_session".to_string(), Json::U64(events as u64)),
        ("seed".to_string(), Json::U64(args.seed)),
        ("elapsed_s".to_string(), Json::F64(elapsed.as_secs_f64())),
        ("requests".to_string(), Json::U64(retry.requests)),
        ("sheds".to_string(), Json::U64(retry.sheds)),
        ("retries".to_string(), Json::U64(retry.retries)),
        ("gave_up".to_string(), Json::U64(retry.gave_up)),
        ("offered".to_string(), Json::U64(offered)),
        ("admitted".to_string(), Json::U64(admitted)),
        ("shed".to_string(), Json::U64(shed)),
        ("traps_total".to_string(), Json::U64(global.traps.total())),
        ("control_probes_attempted".to_string(), Json::U64(attempted)),
        ("control_probes_answered".to_string(), Json::U64(answered)),
        (
            "slow_subscriber_disconnects".to_string(),
            Json::U64(net_after.slow_disconnects - net_before.slow_disconnects),
        ),
        (
            "isolation_mismatches".to_string(),
            Json::U64(mismatches as u64),
        ),
        ("verdict".to_string(), Json::Str(verdict.to_string())),
    ]);
    let pretty = serde_json::to_string_pretty(&report).expect("report serialize");
    let out = if args.out == "BENCH_server.json" {
        "BENCH_overload.json".to_string()
    } else {
        args.out.clone()
    };
    if let Err(e) = std::fs::write(&out, pretty + "\n") {
        eprintln!("loadgen: cannot write {out}: {e}");
    } else {
        eprintln!("loadgen: wrote {out}");
    }
    exit(if failures.is_empty() { 0 } else { 1 })
}

fn main() {
    let args = parse_args();
    if args.overload {
        run_overload(&args);
    }
    let program = args
        .program
        .clone()
        .unwrap_or_else(|| if args.chaos { "chaos" } else { "dashboard" }.to_string());
    let faults = if args.chaos {
        FaultPlan {
            seed: args.seed,
            node_panic: args.panic_prob,
            crash: args.crash_prob,
            stall: args.stall_prob,
            stall_ms: 2,
            queue_full_burst: 0.002,
            burst_len: 48,
            journal_fail: args.journal_fail_prob,
            ..FaultPlan::disabled()
        }
    } else {
        FaultPlan::disabled()
    };
    if args.chaos {
        // Injected poison pills panic inside node closures by design;
        // keep their backtraces out of the report. Anything else still
        // reaches the default hook.
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            if !msg.starts_with("chaos:") && !msg.starts_with("crashy:") {
                previous(info);
            }
        }));
    }
    eprintln!(
        "loadgen: {} sessions x {} events, program '{}', {} shards, queue {}, policy {}{}",
        args.sessions,
        args.events,
        program,
        args.shards,
        args.queue,
        args.policy.label(),
        if args.chaos { ", CHAOS" } else { "" }
    );

    let traces = Simulator::fan_out_with_faults(args.seed, args.sessions, args.events, &faults);
    let server = Arc::new(Server::start(ServerConfig {
        shards: args.shards,
        session: SessionConfig {
            queue_capacity: args.queue,
            policy: args.policy,
            snapshot_interval: args.snapshot_interval.max(1),
            // Seal journal segments at the snapshot cadence so truncation
            // keeps pace with snapshots.
            journal_segment: args.snapshot_interval.max(1) as usize,
            restart: RestartPolicy {
                // Chaos runs must never exhaust the budget by sheer fault
                // volume; budget exhaustion is a failure we detect, not a
                // load knob.
                max_restarts: 100_000,
                ..RestartPolicy::default()
            },
            faults,
            // Observability is the point of this binary: every session
            // records spans and per-node timing histograms.
            observe: true,
            ..SessionConfig::default()
        },
        idle_timeout: None,
        admission: AdmissionConfig::default(),
    }));

    let mut session_ids = Vec::with_capacity(args.sessions);
    for _ in 0..args.sessions {
        let info = server
            .open(ProgramSpec::Builtin(&program), None, None, true)
            .unwrap_or_else(|e| {
                eprintln!("loadgen: open failed: {e}");
                exit(1);
            });
        session_ids.push(info.session);
    }

    // Concurrent ingest: one driver thread per session, batching events
    // and then waiting for the session's queue to drain.
    let started = Instant::now();
    let mut drivers = Vec::with_capacity(args.sessions);
    for (i, &session) in session_ids.iter().enumerate() {
        let server = Arc::clone(&server);
        let trace = traces[i].clone();
        drivers.push(thread::spawn(move || {
            let events: Vec<(String, PlainValue)> = trace
                .events
                .into_iter()
                .map(|e| (e.input, e.value))
                .collect();
            for chunk in events.chunks(BATCH) {
                server.batch(session, chunk).expect("batch");
            }
            while server.query(session).expect("query").queue_len > 0 {
                thread::sleep(Duration::from_millis(1));
            }
        }));
    }
    for d in drivers {
        d.join().expect("driver thread");
    }
    let elapsed = started.elapsed();

    let (global, per_session) = server.stats();
    let metrics_text = server.metrics_text();
    let total_events = (args.sessions * args.events) as f64;
    let events_per_sec = total_events / elapsed.as_secs_f64();

    // Isolation / recovery-correctness check: each session's final value
    // must equal a single-session synchronous replay of its own trace —
    // in chaos mode that replay is uninterrupted, so it also proves
    // crash recovery lost and duplicated nothing.
    let mut mismatches = 0usize;
    for (i, &session) in session_ids.iter().enumerate() {
        let served = server.query(session).expect("final query").value;
        let replayed = sync_replay(&server, &program, &traces[i]);
        if served != replayed {
            mismatches += 1;
            eprintln!(
                "loadgen: ISOLATION MISMATCH session {session}: served {served:?} != replay {replayed:?}"
            );
        }
    }
    let isolation = if mismatches == 0 { "OK" } else { "FAILED" };

    println!(
        "sessions={} events/session={} total={}",
        args.sessions, args.events, total_events as u64
    );
    println!(
        "elapsed={:.3}s throughput={:.0} events/sec",
        elapsed.as_secs_f64(),
        events_per_sec
    );
    println!(
        "ingest-to-output latency: p50={}us p90={}us p99={}us max={}us ({} samples)",
        global.latency.p50_us,
        global.latency.p90_us,
        global.latency.p99_us,
        global.latency.max_us,
        global.latency.count
    );
    println!(
        "ingress: enqueued={} ignored={} dropped={} coalesced={}",
        global.ingress.enqueued,
        global.ingress.ignored,
        global.ingress.dropped,
        global.ingress.coalesced
    );
    println!(
        "runtime: events={} computations={} memo_skips={}",
        global.runtime.events, global.runtime.computations, global.runtime.memo_skips
    );
    println!("per-session isolation check = {isolation}");

    // Chaos verdicts.
    let affected = per_session
        .iter()
        .filter(|s| s.runtime.node_panics > 0)
        .count();
    let mut chaos_failures: Vec<String> = Vec::new();
    if args.chaos {
        println!(
            "recovery: restarts={} replayed_events={} max_replay={} snapshots={} \
             journal_failures={} recovery_failed={}",
            global.recovery.restarts,
            global.recovery.replayed_events,
            global.recovery.max_replay,
            global.recovery.snapshot_count,
            global.recovery.journal_failures,
            global.recovery_failed
        );
        println!(
            "chaos: {}/{} sessions hit by node panics",
            affected, args.sessions
        );
        if global.recovery_failed > 0 {
            chaos_failures.push(format!(
                "{} session(s) exhausted their restart budget",
                global.recovery_failed
            ));
        }
        if global.recovery.max_replay > args.snapshot_interval.max(1) {
            chaos_failures.push(format!(
                "a recovery replayed {} events, above the snapshot interval {}",
                global.recovery.max_replay, args.snapshot_interval
            ));
        }
        if args.panic_prob > 0.0 && affected * 4 < args.sessions {
            chaos_failures.push(format!(
                "only {affected}/{} sessions saw a node panic (< 25%)",
                args.sessions
            ));
        }
        // The metrics endpoint must agree with the supervisor about how
        // many restarts happened — a scrape is only useful if it tells
        // the same story as the recovery machinery itself.
        let scraped = scraped_restarts_total(&metrics_text);
        if scraped != global.recovery.restarts {
            chaos_failures.push(format!(
                "metrics endpoint reports {scraped} restarts but the supervisor counted {}",
                global.recovery.restarts
            ));
        } else {
            println!(
                "metrics cross-check: elm_restarts_total sum {scraped} == supervisor restarts"
            );
        }
        for f in &chaos_failures {
            eprintln!("loadgen: CHAOS FAILURE: {f}");
        }
        if chaos_failures.is_empty() {
            println!("chaos verdict = OK");
        } else {
            println!("chaos verdict = FAILED");
        }
    }

    // Trace-reconstruction acceptance: the same seeded workload, traced on
    // BOTH schedulers, must yield span trees matching the graph's causal
    // structure. The synchronous run's artifacts are kept for inspection.
    let mut trace_failures: Vec<String> = Vec::new();
    let mut sync_trees: Vec<PlainSpanTree> = Vec::new();
    let mut sync_timings = Vec::new();
    match trace_check(&server, &program, args.seed, Engine::Synchronous) {
        Ok((trees, timings)) => {
            sync_trees = trees;
            sync_timings = timings;
        }
        Err(e) => trace_failures.push(format!("synchronous scheduler: {e}")),
    }
    if let Err(e) = trace_check(&server, &program, args.seed, Engine::Concurrent) {
        trace_failures.push(format!("concurrent scheduler: {e}"));
    }
    for f in &trace_failures {
        eprintln!("loadgen: TRACE FAILURE: {f}");
    }
    let trace_verdict = if trace_failures.is_empty() {
        "OK"
    } else {
        "FAILED"
    };
    println!(
        "trace reconstruction check = {trace_verdict} ({} trees, both schedulers)",
        sync_trees.len()
    );

    // Observability artifacts: span trees, the Prometheus scrape, and a
    // heat-annotated DOT rendering of the traced graph.
    let trace_json =
        serde_json::to_string_pretty(&serde_json::to_value(&sync_trees).expect("trees serialize"))
            .expect("trees serialize");
    for (path, contents) in [
        ("BENCH_trace.json", trace_json + "\n"),
        ("BENCH_metrics.prom", metrics_text.clone()),
        (
            "BENCH_heat.dot",
            server
                .registry()
                .resolve(ProgramSpec::Builtin(&program))
                .map(|(_, graph)| {
                    let heat: Vec<u64> = sync_timings.iter().map(|t| t.compute.sum).collect();
                    dot::to_dot_with_heat(&graph, &heat)
                })
                .unwrap_or_default(),
        ),
    ] {
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("loadgen: cannot write {path}: {e}");
        } else {
            eprintln!("loadgen: wrote {path}");
        }
    }

    let report = Json::Map(vec![
        (
            "benchmark".to_string(),
            Json::Str("server-loadgen".to_string()),
        ),
        ("program".to_string(), Json::Str(program.clone())),
        ("sessions".to_string(), Json::U64(args.sessions as u64)),
        (
            "events_per_session".to_string(),
            Json::U64(args.events as u64),
        ),
        ("shards".to_string(), Json::U64(args.shards as u64)),
        ("queue_capacity".to_string(), Json::U64(args.queue as u64)),
        (
            "policy".to_string(),
            Json::Str(args.policy.label().to_string()),
        ),
        ("seed".to_string(), Json::U64(args.seed)),
        ("chaos".to_string(), Json::Bool(args.chaos)),
        (
            "snapshot_interval".to_string(),
            Json::U64(args.snapshot_interval),
        ),
        ("sessions_panicked".to_string(), Json::U64(affected as u64)),
        ("elapsed_s".to_string(), Json::F64(elapsed.as_secs_f64())),
        ("events_per_sec".to_string(), Json::F64(events_per_sec)),
        (
            "latency_p50_us".to_string(),
            Json::U64(global.latency.p50_us),
        ),
        (
            "latency_p90_us".to_string(),
            Json::U64(global.latency.p90_us),
        ),
        (
            "latency_p99_us".to_string(),
            Json::U64(global.latency.p99_us),
        ),
        (
            "latency_max_us".to_string(),
            Json::U64(global.latency.max_us),
        ),
        (
            "latency_samples".to_string(),
            Json::U64(global.latency.count),
        ),
        (
            "global".to_string(),
            serde_json::to_value(&global).expect("stats serialize"),
        ),
        ("isolation".to_string(), Json::Str(isolation.to_string())),
        (
            "trace_check".to_string(),
            Json::Str(trace_verdict.to_string()),
        ),
        (
            "trace_trees".to_string(),
            Json::U64(sync_trees.len() as u64),
        ),
        (
            "restarts_total_scraped".to_string(),
            Json::U64(scraped_restarts_total(&metrics_text)),
        ),
        (
            "chaos_verdict".to_string(),
            Json::Str(
                if !args.chaos {
                    "n/a"
                } else if chaos_failures.is_empty() {
                    "OK"
                } else {
                    "FAILED"
                }
                .to_string(),
            ),
        ),
    ]);
    let pretty = serde_json::to_string_pretty(&report).expect("report serialize");
    if let Err(e) = std::fs::write(&args.out, pretty + "\n") {
        eprintln!("loadgen: cannot write {}: {e}", args.out);
    } else {
        eprintln!("loadgen: wrote {}", args.out);
    }

    if let Ok(s) = Arc::try_unwrap(server) {
        s.shutdown();
    }
    if mismatches > 0 || !chaos_failures.is_empty() || !trace_failures.is_empty() {
        exit(1);
    }
}
