//! Load generator: drives M concurrent sessions with simulator traces
//! and reports throughput, ingest-to-output latency percentiles, and a
//! per-session isolation check against single-session synchronous
//! replay.
//!
//! ```text
//! loadgen [--sessions M] [--events N] [--program NAME] [--shards N]
//!         [--queue N] [--policy P] [--seed S] [--out BENCH_server.json]
//! ```
//!
//! `--events` is per session; the default workload is 64 sessions ×
//! 10000 events of mixed mouse/keyboard/timer traffic, each session on
//! its own deterministic seed.

use std::process::exit;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use elm_environment::Simulator;
use elm_runtime::{PlainValue, Trace};
use elm_server::{BackpressurePolicy, ProgramSpec, Server, ServerConfig};
use elm_signals::{Engine, Program};
use serde_json::Value as Json;

const BATCH: usize = 64;

struct Args {
    sessions: usize,
    events: usize,
    program: String,
    shards: usize,
    queue: usize,
    policy: BackpressurePolicy,
    seed: u64,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sessions: 64,
            events: 10_000,
            program: "dashboard".to_string(),
            shards: ServerConfig::default().shards,
            queue: 1024,
            policy: BackpressurePolicy::Block,
            seed: 42,
            out: "BENCH_server.json".to_string(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--sessions M] [--events N] [--program NAME] [--shards N] \
         [--queue N] [--policy block|drop-oldest|coalesce] [--seed S] [--out FILE]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut a = Args::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--sessions" => a.sessions = value().parse().unwrap_or_else(|_| usage()),
            "--events" => a.events = value().parse().unwrap_or_else(|_| usage()),
            "--program" => a.program = value(),
            "--shards" => a.shards = value().parse().unwrap_or_else(|_| usage()),
            "--queue" => a.queue = value().parse().unwrap_or_else(|_| usage()),
            "--policy" => a.policy = BackpressurePolicy::parse(&value()).unwrap_or_else(|| usage()),
            "--seed" => a.seed = value().parse().unwrap_or_else(|_| usage()),
            "--out" => a.out = value(),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    a
}

/// Replays `trace` through a fresh single-session synchronous runtime,
/// skipping inputs the program does not declare — exactly the events the
/// server admits — and returns the final output value.
fn sync_replay(server: &Server, program: &str, trace: &Trace) -> PlainValue {
    let (_, graph) = server
        .registry()
        .resolve(ProgramSpec::Builtin(program))
        .expect("program resolved once already");
    let mut running = Program::from_dynamic_graph(graph.clone()).start(Engine::Synchronous);
    for e in &trace.events {
        if graph.input_named(&e.input).is_some() {
            running
                .send_named(&e.input, e.value.to_value())
                .expect("replay event");
        }
    }
    running.drain_raw().expect("replay drain");
    PlainValue::from_value(running.current()).expect("replay value is plain")
}

fn main() {
    let args = parse_args();
    eprintln!(
        "loadgen: {} sessions x {} events, program '{}', {} shards, queue {}, policy {}",
        args.sessions,
        args.events,
        args.program,
        args.shards,
        args.queue,
        args.policy.label()
    );

    let traces = Simulator::fan_out(args.seed, args.sessions, args.events);
    let server = Arc::new(Server::start(ServerConfig {
        shards: args.shards,
        session: elm_server::SessionConfig {
            queue_capacity: args.queue,
            policy: args.policy,
        },
        idle_timeout: None,
    }));

    let mut session_ids = Vec::with_capacity(args.sessions);
    for _ in 0..args.sessions {
        let info = server
            .open(ProgramSpec::Builtin(&args.program), None, None)
            .unwrap_or_else(|e| {
                eprintln!("loadgen: open failed: {e}");
                exit(1);
            });
        session_ids.push(info.session);
    }

    // Concurrent ingest: one driver thread per session, batching events
    // and then waiting for the session's queue to drain.
    let started = Instant::now();
    let mut drivers = Vec::with_capacity(args.sessions);
    for (i, &session) in session_ids.iter().enumerate() {
        let server = Arc::clone(&server);
        let trace = traces[i].clone();
        drivers.push(thread::spawn(move || {
            let events: Vec<(String, PlainValue)> = trace
                .events
                .into_iter()
                .map(|e| (e.input, e.value))
                .collect();
            for chunk in events.chunks(BATCH) {
                server.batch(session, chunk).expect("batch");
            }
            while server.query(session).expect("query").queue_len > 0 {
                thread::sleep(Duration::from_millis(1));
            }
        }));
    }
    for d in drivers {
        d.join().expect("driver thread");
    }
    let elapsed = started.elapsed();

    let (global, per_session) = server.stats();
    let total_events = (args.sessions * args.events) as f64;
    let events_per_sec = total_events / elapsed.as_secs_f64();

    // Isolation check: each session's final value must equal a
    // single-session synchronous replay of its own trace.
    let mut mismatches = 0usize;
    for (i, &session) in session_ids.iter().enumerate() {
        let served = server.query(session).expect("final query").value;
        let replayed = sync_replay(&server, &args.program, &traces[i]);
        if served != replayed {
            mismatches += 1;
            eprintln!(
                "loadgen: ISOLATION MISMATCH session {session}: served {served:?} != replay {replayed:?}"
            );
        }
    }
    let isolation = if mismatches == 0 { "OK" } else { "FAILED" };

    println!(
        "sessions={} events/session={} total={}",
        args.sessions, args.events, total_events as u64
    );
    println!(
        "elapsed={:.3}s throughput={:.0} events/sec",
        elapsed.as_secs_f64(),
        events_per_sec
    );
    println!(
        "ingest-to-output latency: p50={}us p90={}us p99={}us max={}us ({} samples)",
        global.latency.p50_us,
        global.latency.p90_us,
        global.latency.p99_us,
        global.latency.max_us,
        global.latency.count
    );
    println!(
        "ingress: enqueued={} ignored={} dropped={} coalesced={}",
        global.ingress.enqueued,
        global.ingress.ignored,
        global.ingress.dropped,
        global.ingress.coalesced
    );
    println!(
        "runtime: events={} computations={} memo_skips={}",
        global.runtime.events, global.runtime.computations, global.runtime.memo_skips
    );
    println!("per-session isolation check = {isolation}");

    let report = Json::Map(vec![
        (
            "benchmark".to_string(),
            Json::Str("server-loadgen".to_string()),
        ),
        ("program".to_string(), Json::Str(args.program.clone())),
        ("sessions".to_string(), Json::U64(args.sessions as u64)),
        (
            "events_per_session".to_string(),
            Json::U64(args.events as u64),
        ),
        ("shards".to_string(), Json::U64(args.shards as u64)),
        ("queue_capacity".to_string(), Json::U64(args.queue as u64)),
        (
            "policy".to_string(),
            Json::Str(args.policy.label().to_string()),
        ),
        ("seed".to_string(), Json::U64(args.seed)),
        ("elapsed_s".to_string(), Json::F64(elapsed.as_secs_f64())),
        ("events_per_sec".to_string(), Json::F64(events_per_sec)),
        (
            "latency_p50_us".to_string(),
            Json::U64(global.latency.p50_us),
        ),
        (
            "latency_p90_us".to_string(),
            Json::U64(global.latency.p90_us),
        ),
        (
            "latency_p99_us".to_string(),
            Json::U64(global.latency.p99_us),
        ),
        (
            "latency_max_us".to_string(),
            Json::U64(global.latency.max_us),
        ),
        (
            "latency_samples".to_string(),
            Json::U64(global.latency.count),
        ),
        (
            "global".to_string(),
            serde_json::to_value(&global).expect("stats serialize"),
        ),
        ("isolation".to_string(), Json::Str(isolation.to_string())),
    ]);
    let pretty = serde_json::to_string_pretty(&report).expect("report serialize");
    if let Err(e) = std::fs::write(&args.out, pretty + "\n") {
        eprintln!("loadgen: cannot write {}: {e}", args.out);
    } else {
        eprintln!("loadgen: wrote {}", args.out);
    }

    let _ = per_session;
    if let Ok(s) = Arc::try_unwrap(server) {
        s.shutdown();
    }
    if mismatches > 0 {
        exit(1);
    }
}
