//! Admission control: token-bucket rate limiting with load shedding.
//!
//! Every data-plane submission (`event`, `batch`) passes a shard-level
//! [`AdmissionController`] before it may touch a session. The controller
//! layers three checks, all of which must pass:
//!
//! 1. **Global memory watermark** — a server-wide [`MemoryGauge`] of
//!    approximate retained cells (queues + journals + outputs, reported
//!    by sessions). Above the watermark, all bulk traffic is shed.
//! 2. **Shard token bucket** — caps the shard's aggregate event rate.
//! 3. **Per-session buckets** — one for event count, one for payload
//!    bytes, so a single chatty or byte-heavy client exhausts its own
//!    quota instead of the shard's.
//!
//! A failed check sheds the submission with a typed `overloaded` reply
//! carrying `retry_after_ms` — the earliest time the controller could
//! admit it — instead of queueing unbounded work. Batches are admitted
//! all-or-nothing so a partially-applied batch can never diverge a
//! replay oracle. Control-plane verbs (`query`, `stats`, `metrics`,
//! `subscribe`, `close`) never pass through the controller: the server
//! stays observable and steerable while it sheds.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::protocol::AdmissionStats;
use crate::session::SessionId;

/// Server-wide approximate-memory gauge, in cells (see
/// [`elm_runtime::Value::approx_cells`]). Sessions report deltas; the
/// admission controller reads the total against its watermark.
#[derive(Debug, Default)]
pub struct MemoryGauge(AtomicI64);

impl MemoryGauge {
    /// A zeroed, shareable gauge.
    pub fn new() -> Arc<MemoryGauge> {
        Arc::new(MemoryGauge::default())
    }

    /// Adjusts the gauge by a signed delta (sessions report growth and
    /// shrinkage as their queues/journals change).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current estimate, clamped at zero.
    pub fn cells(&self) -> u64 {
        self.0.load(Ordering::Relaxed).max(0) as u64
    }
}

/// Rates and quotas for one shard's admission controller.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionConfig {
    /// Master switch; disabled admits everything (the default, so
    /// existing deployments and tests are unaffected).
    pub enabled: bool,
    /// Shard-aggregate sustained event rate (events/second).
    pub shard_events_per_sec: f64,
    /// Shard bucket capacity (burst headroom, in events).
    pub shard_burst: f64,
    /// Per-session sustained event rate (events/second).
    pub session_events_per_sec: f64,
    /// Per-session bucket capacity (burst headroom, in events).
    pub session_burst: f64,
    /// Per-session sustained payload rate (approx cells/second).
    pub session_cells_per_sec: f64,
    /// Per-session payload bucket capacity (burst headroom, in cells).
    pub session_cells_burst: f64,
    /// Shed all bulk traffic while the [`MemoryGauge`] reads above this
    /// many cells. Zero disables the watermark.
    pub memory_watermark_cells: u64,
    /// `retry_after_ms` floor for sheds that have no bucket-derived
    /// estimate (e.g. the memory watermark).
    pub min_retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            shard_events_per_sec: 50_000.0,
            shard_burst: 5_000.0,
            session_events_per_sec: 10_000.0,
            session_burst: 1_000.0,
            session_cells_per_sec: 5_000_000.0,
            session_cells_burst: 500_000.0,
            memory_watermark_cells: 256 * 1024 * 1024,
            min_retry_after_ms: 10,
        }
    }
}

/// The controller's verdict for one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Tokens were debited; enqueue the work.
    Admit,
    /// Shed: reply `overloaded` and suggest this minimum backoff.
    Shed {
        /// Milliseconds until the deficient bucket could cover the
        /// submission at its refill rate.
        retry_after_ms: u64,
    },
}

/// A standard token bucket: capacity `burst`, refill `rate` per second.
#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: f64,
    rate: f64,
    burst: f64,
    refilled: Instant,
}

impl Bucket {
    fn new(rate: f64, burst: f64, now: Instant) -> Bucket {
        Bucket {
            tokens: burst,
            rate: rate.max(f64::MIN_POSITIVE),
            burst,
            refilled: now,
        }
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.saturating_duration_since(self.refilled).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        self.refilled = now;
    }

    /// Debits `n` tokens, or reports how long until they would exist.
    /// Oversized requests (`n > burst`) are payable after a full-refill
    /// wait rather than never, so a giant batch still gets a finite,
    /// honest `retry_after` (and will shed again — callers should split).
    fn take(&mut self, n: f64, now: Instant) -> Result<(), u64> {
        self.refill(now);
        if self.tokens >= n {
            self.tokens -= n;
            return Ok(());
        }
        let deficit = (n.min(self.burst) - self.tokens).max(0.0);
        Err((deficit / self.rate * 1000.0).ceil() as u64)
    }
}

struct SessionBuckets {
    events: Bucket,
    cells: Bucket,
}

/// Per-shard admission state (see module docs). Owned by the shard
/// thread; no interior locking needed.
pub struct AdmissionController {
    config: AdmissionConfig,
    memory: Arc<MemoryGauge>,
    shard: Bucket,
    sessions: HashMap<SessionId, SessionBuckets>,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// A controller over `config`, watching `memory` for the watermark.
    pub fn new(config: AdmissionConfig, memory: Arc<MemoryGauge>) -> AdmissionController {
        AdmissionController {
            config,
            memory,
            shard: Bucket::new(
                config.shard_events_per_sec,
                config.shard_burst,
                Instant::now(),
            ),
            sessions: HashMap::new(),
            stats: AdmissionStats::default(),
        }
    }

    /// Judges one submission of `events` events totalling `cells`
    /// approximate payload cells for `session`, at time `now`.
    /// All-or-nothing: either every event's tokens are debited or none.
    pub fn admit(
        &mut self,
        session: SessionId,
        events: u64,
        cells: u64,
        now: Instant,
    ) -> Admission {
        self.stats.offered += events;
        if !self.config.enabled {
            self.stats.admitted += events;
            return Admission::Admit;
        }
        let verdict = self.check(session, events, cells, now);
        match verdict {
            Admission::Admit => self.stats.admitted += events,
            Admission::Shed { .. } => self.stats.shed += events,
        }
        verdict
    }

    fn check(&mut self, session: SessionId, events: u64, cells: u64, now: Instant) -> Admission {
        let floor = self.config.min_retry_after_ms;
        if self.config.memory_watermark_cells > 0
            && self.memory.cells() > self.config.memory_watermark_cells
        {
            return Admission::Shed {
                retry_after_ms: floor.max(1),
            };
        }
        let per = self
            .sessions
            .entry(session)
            .or_insert_with(|| SessionBuckets {
                events: Bucket::new(
                    self.config.session_events_per_sec,
                    self.config.session_burst,
                    now,
                ),
                cells: Bucket::new(
                    self.config.session_cells_per_sec,
                    self.config.session_cells_burst,
                    now,
                ),
            });
        // Check (refill-only peeks) before debiting anything, so a shed
        // never half-charges a bucket.
        let mut shard_probe = self.shard;
        let mut ev_probe = per.events;
        let mut cell_probe = per.cells;
        let wait = [
            shard_probe.take(events as f64, now).err(),
            ev_probe.take(events as f64, now).err(),
            cell_probe.take(cells as f64, now).err(),
        ]
        .into_iter()
        .flatten()
        .max();
        if let Some(ms) = wait {
            return Admission::Shed {
                retry_after_ms: ms.max(floor).max(1),
            };
        }
        self.shard = shard_probe;
        per.events = ev_probe;
        per.cells = cell_probe;
        Admission::Admit
    }

    /// Drops a closed/evicted session's buckets.
    pub fn forget(&mut self, session: SessionId) {
        self.sessions.remove(&session);
    }

    /// Offered/admitted/shed counters since startup.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn config() -> AdmissionConfig {
        AdmissionConfig {
            enabled: true,
            shard_events_per_sec: 100.0,
            shard_burst: 10.0,
            session_events_per_sec: 50.0,
            session_burst: 5.0,
            session_cells_per_sec: 1000.0,
            session_cells_burst: 100.0,
            memory_watermark_cells: 1_000_000,
            min_retry_after_ms: 7,
        }
    }

    #[test]
    fn disabled_controller_admits_everything() {
        let mut c = AdmissionController::new(AdmissionConfig::default(), MemoryGauge::new());
        let now = Instant::now();
        for _ in 0..100_000 {
            assert_eq!(c.admit(1, 1, 1, now), Admission::Admit);
        }
        let s = c.stats();
        assert_eq!((s.offered, s.admitted, s.shed), (100_000, 100_000, 0));
    }

    #[test]
    fn burst_exhaustion_sheds_with_a_finite_retry_hint() {
        let mut c = AdmissionController::new(config(), MemoryGauge::new());
        let now = Instant::now();
        // Session burst is 5: the sixth immediate event sheds.
        for _ in 0..5 {
            assert_eq!(c.admit(1, 1, 1, now), Admission::Admit);
        }
        let Admission::Shed { retry_after_ms } = c.admit(1, 1, 1, now) else {
            panic!("expected a shed");
        };
        // 1 token at 50/s is 20ms away.
        assert!(
            (7..=20).contains(&retry_after_ms),
            "retry_after_ms = {retry_after_ms}"
        );
        // After the suggested wait the bucket covers it again.
        let later = now + Duration::from_millis(retry_after_ms + 1);
        assert_eq!(c.admit(1, 1, 1, later), Admission::Admit);
        let s = c.stats();
        assert_eq!(s.offered, s.admitted + s.shed);
    }

    #[test]
    fn batches_are_all_or_nothing() {
        let mut c = AdmissionController::new(config(), MemoryGauge::new());
        let now = Instant::now();
        // A 6-event batch exceeds the session burst of 5: shed whole,
        // and the bucket is not half-charged — 5 singles still fit.
        assert!(matches!(c.admit(1, 6, 6, now), Admission::Shed { .. }));
        for _ in 0..5 {
            assert_eq!(c.admit(1, 1, 1, now), Admission::Admit);
        }
        assert_eq!(c.stats().shed, 6);
    }

    #[test]
    fn per_session_quotas_isolate_noisy_neighbors() {
        let mut c = AdmissionController::new(
            AdmissionConfig {
                shard_burst: 100.0,
                ..config()
            },
            MemoryGauge::new(),
        );
        let now = Instant::now();
        // Session 1 exhausts its own quota…
        for _ in 0..5 {
            assert_eq!(c.admit(1, 1, 1, now), Admission::Admit);
        }
        assert!(matches!(c.admit(1, 1, 1, now), Admission::Shed { .. }));
        // …while session 2's untouched bucket still admits.
        assert_eq!(c.admit(2, 1, 1, now), Admission::Admit);
    }

    #[test]
    fn byte_quota_sheds_heavy_payloads_independently_of_count() {
        let mut c = AdmissionController::new(config(), MemoryGauge::new());
        let now = Instant::now();
        // One event, but 101 cells against a 100-cell burst.
        assert!(matches!(c.admit(1, 1, 101, now), Admission::Shed { .. }));
        assert_eq!(c.admit(1, 1, 100, now), Admission::Admit);
    }

    #[test]
    fn memory_watermark_sheds_everything_until_pressure_clears() {
        let gauge = MemoryGauge::new();
        let mut c = AdmissionController::new(config(), gauge.clone());
        let now = Instant::now();
        gauge.add(2_000_000);
        let Admission::Shed { retry_after_ms } = c.admit(1, 1, 1, now) else {
            panic!("expected a watermark shed");
        };
        assert!(retry_after_ms >= 7);
        gauge.add(-2_000_000);
        assert_eq!(c.admit(1, 1, 1, now), Admission::Admit);
    }

    #[test]
    fn forget_releases_per_session_state() {
        let mut c = AdmissionController::new(config(), MemoryGauge::new());
        let now = Instant::now();
        for _ in 0..5 {
            c.admit(1, 1, 1, now);
        }
        assert!(matches!(c.admit(1, 1, 1, now), Admission::Shed { .. }));
        c.forget(1);
        // A fresh bucket (full burst) replaces the drained one.
        assert_eq!(c.admit(1, 1, 1, now), Admission::Admit);
    }
}
