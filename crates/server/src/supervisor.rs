//! Restart supervision for crash-recoverable sessions.
//!
//! When a session's runtime dies (a node panic poisons it, or the fault
//! layer injects a crash), the owning shard does not evict it — it
//! rebuilds the runtime from the latest snapshot plus the journal suffix.
//! The [`RestartBudget`] bounds how hard a shard will try: each crash
//! consumes one restart from a sliding window, restarts back off
//! exponentially, and once the window is exhausted the session is
//! permanently evicted with the `recovery_failed` close reason. This is
//! the classic supervisor-with-intensity model: transient faults heal in
//! place, crash loops are cut off instead of burning a shard thread.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// How aggressively a crashed session may be restarted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Crashes tolerated inside one sliding `window` before giving up.
    pub max_restarts: u32,
    /// The sliding window over which crashes are counted.
    pub window: Duration,
    /// Backoff before the second restart in a window; doubles per
    /// subsequent restart. The first restart in a window is immediate.
    pub backoff_base: Duration,
    /// Upper bound on the backoff delay.
    pub backoff_cap: Duration,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 32,
            window: Duration::from_secs(10),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
        }
    }
}

/// What the supervisor decided about one crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartDecision {
    /// Recover the session after waiting `after` (zero = immediately).
    Restart {
        /// Backoff delay before the recovery runs.
        after: Duration,
    },
    /// The budget is exhausted; evict with `recovery_failed`.
    GiveUp,
}

/// Sliding-window crash counter implementing a [`RestartPolicy`].
#[derive(Debug)]
pub struct RestartBudget {
    policy: RestartPolicy,
    recent: VecDeque<Instant>,
}

impl RestartBudget {
    /// A fresh budget under `policy`.
    pub fn new(policy: RestartPolicy) -> RestartBudget {
        RestartBudget {
            policy,
            recent: VecDeque::new(),
        }
    }

    /// Crashes currently inside the window (as of the last `on_crash`).
    pub fn recent_crashes(&self) -> u32 {
        self.recent.len() as u32
    }

    /// Records a crash at `now` and decides whether to restart.
    pub fn on_crash(&mut self, now: Instant) -> RestartDecision {
        while let Some(&front) = self.recent.front() {
            if now.duration_since(front) > self.policy.window {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        if self.recent.len() as u32 >= self.policy.max_restarts {
            return RestartDecision::GiveUp;
        }
        let prior = self.recent.len() as u32;
        self.recent.push_back(now);
        RestartDecision::Restart {
            after: self.delay(prior),
        }
    }

    /// Backoff for the `n`-th restart in the window (0-based): the first
    /// is immediate, then `base * 2^(n-1)` capped at `backoff_cap`.
    fn delay(&self, n: u32) -> Duration {
        if n == 0 {
            return Duration::ZERO;
        }
        let factor = 1u32 << (n - 1).min(31);
        self.policy
            .backoff_base
            .saturating_mul(factor)
            .min(self.policy.backoff_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(max: u32, window_ms: u64) -> RestartPolicy {
        RestartPolicy {
            max_restarts: max,
            window: Duration::from_millis(window_ms),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(8),
        }
    }

    #[test]
    fn backoff_doubles_then_caps_then_gives_up() {
        let mut b = RestartBudget::new(policy(6, 60_000));
        let t = Instant::now();
        let mut delays = Vec::new();
        for _ in 0..6 {
            match b.on_crash(t) {
                RestartDecision::Restart { after } => delays.push(after.as_millis() as u64),
                RestartDecision::GiveUp => panic!("gave up inside the budget"),
            }
        }
        assert_eq!(delays, vec![0, 1, 2, 4, 8, 8]);
        assert_eq!(b.on_crash(t), RestartDecision::GiveUp);
    }

    #[test]
    fn window_expiry_refills_the_budget() {
        let mut b = RestartBudget::new(policy(2, 100));
        let t0 = Instant::now();
        assert!(matches!(b.on_crash(t0), RestartDecision::Restart { .. }));
        assert!(matches!(b.on_crash(t0), RestartDecision::Restart { .. }));
        assert_eq!(b.on_crash(t0), RestartDecision::GiveUp);
        // Past the window the old crashes age out and the first restart
        // is immediate again.
        let later = t0 + Duration::from_millis(150);
        assert_eq!(
            b.on_crash(later),
            RestartDecision::Restart {
                after: Duration::ZERO
            }
        );
        assert_eq!(b.recent_crashes(), 1);
    }
}
