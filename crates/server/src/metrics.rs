//! Prometheus-text exposition of every server metric family.
//!
//! The renderer is a pure function from point-in-time statistics (already
//! collected from the shards) to exposition text, so the same payload backs
//! the NDJSON `metrics` verb, the HTTP-ish `GET /metrics` scrape, and the
//! load generator's verdict checks.
//!
//! # Naming scheme
//!
//! Every family carries the `elm_` prefix. Counters end in `_total`,
//! durations are exposed in seconds (`*_seconds`) even though they are
//! recorded in nanoseconds (the fixed log₂ bucket bounds are scaled by
//! `1e-9` at render time), and per-session families carry a
//! `session="<id>"` label — per-node timing histograms additionally carry
//! `node`/`label` so a scrape can be joined against the DOT rendering of
//! the graph.

use std::collections::HashMap;

use elm_runtime::{HistogramSnapshot, Registry, TrapKind};

use crate::net::NetCounters;
use crate::protocol::{AdmissionStats, LatencySummary, SessionStats};
use crate::shard::ShardCounters;

/// The latency SLO threshold: an event should be applied within 50 ms of
/// being enqueued.
pub const SLO_BUDGET_US: u64 = 50_000;

/// The SLO error budget: at most 1% of events may exceed the threshold.
pub const SLO_ERROR_BUDGET: f64 = 0.01;

/// Overload-governance inputs to the renderer: per-shard admission
/// counters and command backlogs, the server-wide memory gauge, and the
/// TCP front end's framing/slow-consumer counters.
pub struct OverloadMetrics<'a> {
    /// Admission counters, indexed by shard.
    pub admissions: &'a [AdmissionStats],
    /// Commands waiting on each shard's channel (admission queue depth).
    pub backlogs: &'a [u64],
    /// Approximate retained cells across all sessions.
    pub memory_cells: u64,
    /// TCP framing / subscriber-isolation counters.
    pub net: NetCounters,
}

/// Renders the full metric surface as Prometheus exposition text.
///
/// `counters` are the summed shard lifecycle counters, `sessions` the
/// per-session statistics of every live session, `shard_depths[i]` shard
/// `i`'s ingress backlog, `overload` the admission/net counters, and
/// `latency`/`latency_sum_us` the cross-session ingest-to-output latency
/// summary plus the sum of its samples.
pub fn render_prometheus(
    counters: &ShardCounters,
    sessions: &[SessionStats],
    shard_depths: &[u64],
    overload: &OverloadMetrics<'_>,
    latency: &LatencySummary,
    latency_sum_us: u64,
) -> String {
    let mut reg = Registry::new();

    // --- server lifecycle ---
    reg.gauge(
        "elm_sessions_live",
        "Sessions currently hosted.",
        &[],
        sessions.len() as i64,
    );
    reg.counter(
        "elm_sessions_opened_total",
        "Sessions ever opened.",
        &[],
        counters.opened,
    );
    reg.counter(
        "elm_sessions_closed_total",
        "Sessions closed by request.",
        &[],
        counters.closed,
    );
    reg.counter(
        "elm_sessions_evicted_idle_total",
        "Sessions evicted for idling past the timeout.",
        &[],
        counters.evicted_idle,
    );
    reg.counter(
        "elm_sessions_recovery_failed_total",
        "Sessions evicted after exhausting their restart budget.",
        &[],
        counters.recovery_failed,
    );

    // --- per-shard ---
    for (i, depth) in shard_depths.iter().enumerate() {
        let shard = i.to_string();
        reg.gauge(
            "elm_shard_queue_depth",
            "Events queued across all sessions of one shard.",
            &[("shard", &shard)],
            *depth as i64,
        );
    }

    // --- admission control & overload governance ---
    for (i, a) in overload.admissions.iter().enumerate() {
        let shard = i.to_string();
        let l: &[(&str, &str)] = &[("shard", &shard)];
        reg.counter(
            "elm_admission_offered_total",
            "Data-plane events offered for admission.",
            l,
            a.offered,
        );
        reg.counter(
            "elm_admitted_total",
            "Events admitted past the controller.",
            l,
            a.admitted,
        );
        reg.counter(
            "elm_shed_total",
            "Events shed with a typed overloaded reply.",
            l,
            a.shed,
        );
    }
    for (i, backlog) in overload.backlogs.iter().enumerate() {
        let shard = i.to_string();
        reg.gauge(
            "elm_admission_queue_depth",
            "Commands waiting on the shard's channel.",
            &[("shard", &shard)],
            *backlog as i64,
        );
    }
    reg.gauge(
        "elm_memory_cells",
        "Approximate retained cells across all sessions (queues, journals, outputs).",
        &[],
        overload.memory_cells as i64,
    );
    reg.counter(
        "elm_frames_rejected_total",
        "NDJSON frames rejected for oversize or invalid UTF-8.",
        &[],
        overload.net.frames_rejected,
    );
    reg.counter(
        "elm_subscriber_disconnects_total",
        "Connections cut for not draining their outbound queue.",
        &[],
        overload.net.slow_disconnects,
    );

    // --- per-session ---
    for s in sessions {
        let sid = s.session.to_string();
        let l: &[(&str, &str)] = &[("session", &sid)];
        reg.counter(
            "elm_events_total",
            "Globally-ordered events processed by the session's runtime.",
            l,
            s.runtime.events,
        );
        reg.counter(
            "elm_computations_total",
            "Node recomputations performed.",
            l,
            s.runtime.computations,
        );
        reg.counter(
            "elm_memo_skips_total",
            "Node visits skipped thanks to all-NoChange inputs.",
            l,
            s.runtime.memo_skips,
        );
        reg.counter(
            "elm_messages_total",
            "Edge messages sent / node visits.",
            l,
            s.runtime.messages,
        );
        reg.counter(
            "elm_node_panics_total",
            "Node panics observed (poisoned nodes).",
            l,
            s.runtime.node_panics,
        );
        reg.counter(
            "elm_async_events_total",
            "Events generated by async nodes.",
            l,
            s.runtime.async_events,
        );
        for (outcome, v) in [
            ("enqueued", s.ingress.enqueued),
            ("dropped", s.ingress.dropped),
            ("coalesced", s.ingress.coalesced),
            ("ignored", s.ingress.ignored),
        ] {
            reg.counter(
                "elm_ingress_events_total",
                "Ingress-queue admissions by outcome.",
                &[("session", &sid), ("outcome", outcome)],
                v,
            );
        }
        reg.counter(
            "elm_outputs_total",
            "Output changes produced.",
            l,
            s.ingress.events_out,
        );
        reg.counter(
            "elm_pumps_total",
            "Pump cycles executed.",
            l,
            s.ingress.pumps,
        );
        reg.gauge(
            "elm_session_queue_len",
            "Events waiting in the session's ingress queue.",
            l,
            s.ingress.queue_len as i64,
        );
        reg.gauge(
            "elm_subscribers",
            "Live output subscribers.",
            l,
            s.ingress.subscribers as i64,
        );
        // Crash recovery and journal activity.
        reg.counter(
            "elm_restarts_total",
            "Supervised restarts performed (crash, snapshot restore, replay).",
            l,
            s.recovery.restarts,
        );
        reg.counter(
            "elm_replayed_events_total",
            "Journal entries re-applied across all recoveries.",
            l,
            s.recovery.replayed_events,
        );
        reg.gauge(
            "elm_max_replay",
            "Longest single-recovery replay (bounded by the snapshot interval).",
            l,
            s.recovery.max_replay as i64,
        );
        reg.counter(
            "elm_snapshots_total",
            "Runtime snapshots taken.",
            l,
            s.recovery.snapshot_count,
        );
        reg.counter(
            "elm_journal_appends_total",
            "Write-ahead journal appends performed.",
            l,
            s.recovery.journal_appends,
        );
        reg.counter(
            "elm_journal_truncations_total",
            "Journal truncations (one per covering snapshot).",
            l,
            s.recovery.journal_truncations,
        );
        reg.counter(
            "elm_journal_failures_total",
            "Journal appends that failed (covered by an immediate snapshot).",
            l,
            s.recovery.journal_failures,
        );
        reg.gauge(
            "elm_session_journal_len",
            "Journal entries currently retained (after truncation).",
            l,
            s.recovery.journal_len as i64,
        );
        reg.counter(
            "elm_spans_dropped_total",
            "Trace spans or trace lines lost to bounded-buffer overflow.",
            l,
            s.spans_dropped,
        );
        for kind in TrapKind::ALL {
            reg.counter(
                "elm_traps_total",
                "Events stopped by the evaluation governor and rolled back, by kind.",
                &[("session", &sid), ("kind", kind.label())],
                s.traps.count(kind),
            );
        }
        // Per-node timing histograms (observed sessions only).
        for n in &s.nodes {
            let node = n.node.to_string();
            let nl: &[(&str, &str)] = &[
                ("session", &sid),
                ("node", &node),
                ("label", &n.label),
                ("kind", &n.kind),
            ];
            reg.counter(
                "elm_node_computes_total",
                "Spans recorded for this node (source applies or recomputations).",
                nl,
                n.computes,
            );
            reg.histogram(
                "elm_node_compute_seconds",
                "Per-node compute time per event.",
                nl,
                &n.compute,
                1e-9,
            );
            reg.histogram(
                "elm_node_queue_wait_seconds",
                "Dispatch-to-start queue wait per node per event.",
                nl,
                &n.queue,
                1e-9,
            );
        }
    }

    // --- per-session ingest-latency histograms & SLO burn rate ---
    //
    // The SLO: at most SLO_ERROR_BUDGET of a session's events may take
    // longer than SLO_BUDGET_US from enqueue to apply. The burn rate is
    // the observed over-budget fraction divided by the error budget —
    // 1.0 means the session is consuming its budget exactly as fast as
    // the objective allows, >1.0 means it will exhaust it.
    let mut merged = HistogramSnapshot::default();
    for s in sessions {
        merged = merged.merged(&s.ingest_hist);
        let sid = s.session.to_string();
        let l: &[(&str, &str)] = &[("session", &sid)];
        reg.histogram(
            "elm_ingest_latency_hist_seconds",
            "Enqueue-to-apply latency per session (mergeable log2 buckets).",
            l,
            &s.ingest_hist,
            1e-6,
        );
        reg.gauge_f64(
            "elm_slo_p99_seconds",
            "Observed p99 enqueue-to-apply latency (log2-quantized upper bound).",
            l,
            s.ingest_hist.quantile(0.99) as f64 * 1e-6,
        );
        reg.gauge_f64(
            "elm_slo_burn_rate",
            "Rate the session burns its latency error budget (1.0 = exactly on objective).",
            l,
            s.ingest_hist.fraction_above(SLO_BUDGET_US) / SLO_ERROR_BUDGET,
        );
    }
    let all: &[(&str, &str)] = &[("session", "all")];
    reg.histogram(
        "elm_ingest_latency_hist_seconds",
        "Enqueue-to-apply latency per session (mergeable log2 buckets).",
        all,
        &merged,
        1e-6,
    );
    reg.gauge_f64(
        "elm_slo_p99_seconds",
        "Observed p99 enqueue-to-apply latency (log2-quantized upper bound).",
        all,
        merged.quantile(0.99) as f64 * 1e-6,
    );
    reg.gauge_f64(
        "elm_slo_burn_rate",
        "Rate the session burns its latency error budget (1.0 = exactly on objective).",
        all,
        merged.fraction_above(SLO_BUDGET_US) / SLO_ERROR_BUDGET,
    );
    reg.gauge_f64(
        "elm_slo_latency_budget_seconds",
        "The latency SLO threshold events are judged against.",
        &[],
        // Division, not `* 1e-6`: correctly rounded, so 50000 µs renders
        // as exactly 0.05.
        SLO_BUDGET_US as f64 / 1e6,
    );

    // --- cross-session latency ---
    reg.summary(
        "elm_ingest_latency_seconds",
        "Ingest-to-output latency across all live sessions.",
        &[],
        &[
            (0.5, latency.p50_us as f64 * 1e-6),
            (0.9, latency.p90_us as f64 * 1e-6),
            (0.99, latency.p99_us as f64 * 1e-6),
        ],
        latency_sum_us as f64 * 1e-6,
        latency.count,
    );
    reg.gauge(
        "elm_ingest_latency_max_seconds_x1e6",
        "Worst observed ingest-to-output latency, in microseconds.",
        &[],
        latency.max_us as i64,
    );

    reg.render()
}

/// Merges per-peer Prometheus expositions into one cluster-wide scrape.
///
/// Each input is `(peer index, scrape text)` — `None` for a peer that
/// could not be reached. The merge is textual: every sample line gets a
/// `peer="<i>"` label prepended, families keep their first-seen `HELP` /
/// `TYPE` header and group all peers' samples under it, and an
/// `elm_cluster_federation_peer_up` gauge reports which peers answered.
/// Because every underlying histogram uses the same fixed log₂ buckets,
/// summing `_bucket` series across `peer` labels is a correct cluster
/// histogram — the property the loadgen verdict checks (federated family
/// sums must equal the sum of per-peer scrapes).
pub fn federate(scrapes: &[(usize, Option<String>)]) -> String {
    struct Fam {
        help: String,
        kind: String,
        samples: Vec<String>,
    }
    let mut order: Vec<String> = Vec::new();
    let mut fams: HashMap<String, Fam> = HashMap::new();
    for (peer, text) in scrapes {
        let Some(text) = text else { continue };
        let peer_label = format!("peer=\"{peer}\"");
        let mut current: Option<String> = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().unwrap_or("").to_string();
                let help = rest[name.len()..].trim_start().to_string();
                let fam = fams.entry(name.clone()).or_insert_with(|| {
                    order.push(name.clone());
                    Fam {
                        help: String::new(),
                        kind: "untyped".to_string(),
                        samples: Vec::new(),
                    }
                });
                if fam.help.is_empty() {
                    fam.help = help;
                }
                current = Some(name);
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().unwrap_or("").to_string();
                let kind = it.next().unwrap_or("untyped").to_string();
                let fam = fams.entry(name.clone()).or_insert_with(|| {
                    order.push(name.clone());
                    Fam {
                        help: String::new(),
                        kind: "untyped".to_string(),
                        samples: Vec::new(),
                    }
                });
                if fam.kind == "untyped" {
                    fam.kind = kind;
                }
                current = Some(name);
            } else if line.starts_with('#') || line.is_empty() {
                continue;
            } else {
                // A sample line: `name[suffix][{labels}] value`. Metric
                // names cannot contain `{` or spaces, so the first `{`
                // (when it precedes the first space) opens the label set.
                let rewritten = match line.find('{') {
                    Some(i) if !line[..i].contains(' ') => {
                        // A sample that already carries a `peer` label (the
                        // cluster's own `elm_cluster_peer_up` /
                        // `elm_cluster_heartbeat_age_ms` gauges) would end up
                        // with a duplicate label name once the federation
                        // label is prepended; shift the inbound one to
                        // `exported_peer`, Prometheus's own convention for
                        // federation collisions.
                        let labels = line[i + 1..]
                            .split(',')
                            .map(|l| match l.strip_prefix("peer=") {
                                Some(rest) => format!("exported_peer={rest}"),
                                None => l.to_string(),
                            })
                            .collect::<Vec<_>>()
                            .join(",");
                        format!("{}{{{peer_label},{labels}", &line[..i])
                    }
                    _ => match line.split_once(' ') {
                        Some((name, value)) => format!("{name}{{{peer_label}}} {value}"),
                        None => continue,
                    },
                };
                if let Some(name) = &current {
                    if let Some(fam) = fams.get_mut(name) {
                        fam.samples.push(rewritten);
                    }
                }
            }
        }
    }
    let mut out = String::new();
    for name in &order {
        let fam = &fams[name];
        out.push_str(&format!("# HELP {name} {}\n", fam.help));
        out.push_str(&format!("# TYPE {name} {}\n", fam.kind));
        for s in &fam.samples {
            out.push_str(s);
            out.push('\n');
        }
    }
    out.push_str(
        "# HELP elm_cluster_federation_peer_up 1 when the peer answered the federated scrape.\n",
    );
    out.push_str("# TYPE elm_cluster_federation_peer_up gauge\n");
    for (peer, text) in scrapes {
        out.push_str(&format!(
            "elm_cluster_federation_peer_up{{peer=\"{peer}\"}} {}\n",
            u8::from(text.is_some())
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{IngressStats, RecoveryStats, TrapStats};
    use elm_runtime::{Histogram, NodeTimingSnapshot, StatsSnapshot};

    fn sample_session() -> SessionStats {
        let h = Histogram::new();
        h.observe(1_000);
        h.observe(2_000_000);
        SessionStats {
            session: 3,
            program: "counter".to_string(),
            runtime: StatsSnapshot {
                events: 12,
                computations: 7,
                ..StatsSnapshot::default()
            },
            ingress: IngressStats {
                enqueued: 12,
                events_out: 9,
                ..IngressStats::default()
            },
            latency: LatencySummary::default(),
            recovery: RecoveryStats {
                restarts: 2,
                journal_appends: 12,
                ..RecoveryStats::default()
            },
            poisoned: false,
            nodes: vec![NodeTimingSnapshot {
                node: 0,
                label: "Mouse.clicks".to_string(),
                kind: "input".to_string(),
                computes: 2,
                compute: h.snapshot(),
                queue: Histogram::new().snapshot(),
            }],
            spans_dropped: 0,
            traps: TrapStats {
                out_of_fuel: 3,
                deadline_exceeded: 1,
                ..TrapStats::default()
            },
            ingest_hist: {
                let h = Histogram::new();
                for _ in 0..99 {
                    h.observe(1_000); // 1 ms — inside the 50 ms budget
                }
                h.observe(1_000_000); // 1 s — burns budget
                h.snapshot()
            },
        }
    }

    #[test]
    fn renders_required_families_with_labels() {
        let text = render_prometheus(
            &ShardCounters {
                opened: 4,
                ..ShardCounters::default()
            },
            &[sample_session()],
            &[0, 5],
            &OverloadMetrics {
                admissions: &[
                    AdmissionStats {
                        offered: 100,
                        admitted: 90,
                        shed: 10,
                    },
                    AdmissionStats::default(),
                ],
                backlogs: &[7, 0],
                memory_cells: 4096,
                net: NetCounters {
                    frames_rejected: 2,
                    slow_disconnects: 1,
                },
            },
            &LatencySummary {
                count: 2,
                p50_us: 10,
                p90_us: 20,
                p99_us: 20,
                max_us: 20,
            },
            30,
        );
        assert!(text.contains("# TYPE elm_events_total counter"), "{text}");
        assert!(
            text.contains("elm_events_total{session=\"3\"} 12"),
            "{text}"
        );
        assert!(
            text.contains("elm_restarts_total{session=\"3\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE elm_node_compute_seconds histogram"),
            "{text}"
        );
        assert!(
            text.contains("elm_node_compute_seconds_count{session=\"3\",node=\"0\",label=\"Mouse.clicks\",kind=\"input\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("elm_shard_queue_depth{shard=\"1\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("elm_ingress_events_total{session=\"3\",outcome=\"enqueued\"} 12"),
            "{text}"
        );
        assert!(
            text.contains("elm_ingest_latency_seconds{quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(
            text.contains("elm_journal_appends_total{session=\"3\"} 12"),
            "{text}"
        );
        assert!(text.contains("elm_shed_total{shard=\"0\"} 10"), "{text}");
        assert!(
            text.contains("elm_admission_offered_total{shard=\"0\"} 100"),
            "{text}"
        );
        assert!(
            text.contains("elm_admission_queue_depth{shard=\"0\"} 7"),
            "{text}"
        );
        assert!(text.contains("elm_memory_cells 4096"), "{text}");
        assert!(text.contains("elm_frames_rejected_total 2"), "{text}");
        assert!(
            text.contains("elm_subscriber_disconnects_total 1"),
            "{text}"
        );
        assert!(
            text.contains("elm_traps_total{session=\"3\",kind=\"out_of_fuel\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("elm_traps_total{session=\"3\",kind=\"deadline_exceeded\"} 1"),
            "{text}"
        );
        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_once(' ')
                        .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "unparseable line: {line}"
            );
        }
    }

    #[test]
    fn slo_families_report_budget_p99_and_burn_rate() {
        let text = render_prometheus(
            &ShardCounters::default(),
            &[sample_session()],
            &[0],
            &OverloadMetrics {
                admissions: &[AdmissionStats::default()],
                backlogs: &[0],
                memory_cells: 0,
                net: NetCounters::default(),
            },
            &LatencySummary::default(),
            0,
        );
        assert!(
            text.contains("elm_slo_latency_budget_seconds 0.05"),
            "{text}"
        );
        // 1 of 100 events over budget against a 1% error budget → burn 1.0.
        assert!(
            text.contains("elm_slo_burn_rate{session=\"3\"} 1"),
            "{text}"
        );
        // Sessions merge into the cluster-facing session="all" series.
        assert!(
            text.contains("elm_slo_burn_rate{session=\"all\"} 1"),
            "{text}"
        );
        // p99 of the sample data is the 1 ms band: log2-quantized to
        // 1024 µs = 0.001024 s.
        assert!(
            text.contains("elm_slo_p99_seconds{session=\"3\"} 0.001024"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE elm_ingest_latency_hist_seconds histogram"),
            "{text}"
        );
        assert!(
            text.contains("elm_ingest_latency_hist_seconds_count{session=\"all\"} 100"),
            "{text}"
        );
    }

    #[test]
    fn federate_merges_peer_scrapes_with_peer_labels() {
        let a = "# HELP elm_events_total Events.\n# TYPE elm_events_total counter\n\
                 elm_events_total{session=\"1\"} 10\nelm_events_total 4\n"
            .to_string();
        let b = "# HELP elm_events_total Events.\n# TYPE elm_events_total counter\n\
                 elm_events_total{session=\"2\"} 7\n\
                 # HELP elm_only_b_total B-only.\n# TYPE elm_only_b_total counter\n\
                 elm_only_b_total 3\n\
                 # HELP elm_cluster_heartbeat_age_ms Ms since the peer spoke.\n\
                 # TYPE elm_cluster_heartbeat_age_ms gauge\n\
                 elm_cluster_heartbeat_age_ms{peer=\"0\"} 12\n"
            .to_string();
        let text = federate(&[(0, Some(a)), (1, Some(b)), (2, None)]);
        // Samples from every peer grouped under one first-seen header.
        assert_eq!(
            text.matches("# TYPE elm_events_total counter").count(),
            1,
            "{text}"
        );
        assert!(
            text.contains("elm_events_total{peer=\"0\",session=\"1\"} 10"),
            "{text}"
        );
        assert!(
            text.contains("elm_events_total{peer=\"1\",session=\"2\"} 7"),
            "{text}"
        );
        // Label-less samples gain a label set holding only `peer`.
        assert!(text.contains("elm_events_total{peer=\"0\"} 4"), "{text}");
        assert!(text.contains("elm_only_b_total{peer=\"1\"} 3"), "{text}");
        // The heartbeat-age gauge already carries a `peer` label naming the
        // *observed* peer; federation must keep both without a duplicate
        // label name, renaming the inbound one to `exported_peer`.
        assert!(
            text.contains("elm_cluster_heartbeat_age_ms{peer=\"1\",exported_peer=\"0\"} 12"),
            "{text}"
        );
        // Reachability is part of the exposition.
        assert!(
            text.contains("elm_cluster_federation_peer_up{peer=\"0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("elm_cluster_federation_peer_up{peer=\"2\"} 0"),
            "{text}"
        );
        // The federated family total equals the sum of the per-peer sums.
        let total: f64 = text
            .lines()
            .filter(|l| l.starts_with("elm_events_total"))
            .filter_map(|l| l.rsplit_once(' '))
            .filter_map(|(_, v)| v.parse::<f64>().ok())
            .sum();
        assert_eq!(total, 21.0, "{text}");
    }
}
