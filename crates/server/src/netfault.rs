//! Deterministic in-process network-fault proxy for the peer wire.
//!
//! Cluster failover has to survive more than clean process deaths: real
//! networks delay, drop, duplicate, and reorder traffic, and sometimes
//! partition a peer from the rest of the group entirely. [`NetFault`]
//! interposes on every outbound replication link ([`crate::cluster`]'s
//! `run_outbound`) and injects exactly those faults — driven by the same
//! seeded [`FaultPlan`] as every other fault class, so a failover race is
//! reproducible by seed.
//!
//! Two kinds of interference compose:
//!
//! * **Scheduled partitions**: [`PartitionWindow`]s name a peer pair and
//!   a `[start, start+duration)` interval relative to process start.
//!   While a window covers a link, nothing is written on it in either
//!   direction — the line is *retained* and retried, preserving the
//!   link's FIFO order, exactly like replication to a dead peer. At heal
//!   the queued backlog flushes in order, which is what exercises the
//!   epoch fences: a zombie primary's buffered appends arrive at the new
//!   owner carrying a stale epoch.
//! * **Random per-line faults**: seeded per-link delay, drop, duplicate,
//!   and reorder. Faults are scoped by verb so they perturb *timing*
//!   without forging a violation the chaos verdict would then blame on
//!   the server: only heartbeats may be dropped or held back for
//!   reordering (they are idempotent liveness signals with no retransmit),
//!   only appends and heartbeats are duplicated (the replica store
//!   ignores duplicate seqs), and `takeover`/`hello` control verbs are
//!   subject to delay only.
//!
//! The proxy is in-process and below the TCP connect path, so it only
//! shapes the *peer* wire; client connections (the data plane, the
//! split-brain probes) are never touched — which is the point: during a
//! partition both sides stay reachable by clients, and the verdict can
//! observe who still answers.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use elm_environment::fault::{FaultPlan, STREAM_NET};
use rand::rngs::StdRng;
use rand::Rng;

/// One scheduled full bidirectional partition between two peers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionWindow {
    /// One side of the cut (peer index).
    pub a: usize,
    /// The other side (peer index).
    pub b: usize,
    /// When the cut starts, relative to [`NetFault`] creation.
    pub start: Duration,
    /// How long the cut lasts.
    pub duration: Duration,
}

impl PartitionWindow {
    /// Parses the CLI form `A:B:START_MS:DURATION_MS`.
    ///
    /// # Errors
    ///
    /// Fails with a description when the string is not four `:`-separated
    /// non-negative integers.
    pub fn parse(s: &str) -> Result<PartitionWindow, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 4 {
            return Err(format!(
                "partition window '{s}' is not A:B:START_MS:DURATION_MS"
            ));
        }
        let num = |i: usize| -> Result<u64, String> {
            parts[i]
                .parse::<u64>()
                .map_err(|_| format!("partition window '{s}': '{}' is not a number", parts[i]))
        };
        Ok(PartitionWindow {
            a: num(0)? as usize,
            b: num(1)? as usize,
            start: Duration::from_millis(num(2)?),
            duration: Duration::from_millis(num(3)?),
        })
    }

    /// True while `elapsed` falls inside this window and the window cuts
    /// the (unordered) pair `{x, y}`.
    fn cuts(&self, x: usize, y: usize, elapsed: Duration) -> bool {
        let pair = (self.a == x && self.b == y) || (self.a == y && self.b == x);
        pair && elapsed >= self.start && elapsed < self.start + self.duration
    }
}

/// Per-class fault probabilities for the random (non-partition) faults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetFaultConfig {
    /// Per-line probability of an injected delivery delay.
    pub delay: f64,
    /// How long a delayed line waits before the write, in milliseconds.
    pub delay_ms: u64,
    /// Per-heartbeat probability of dropping the line outright.
    pub drop_heartbeat: f64,
    /// Per-line probability of writing an append or heartbeat twice.
    pub duplicate: f64,
    /// Per-heartbeat probability of holding the line back so the next
    /// line on the link overtakes it (a one-slot reorder).
    pub reorder: f64,
}

impl NetFaultConfig {
    /// No random faults: only scheduled [`PartitionWindow`]s apply.
    pub fn disabled() -> NetFaultConfig {
        NetFaultConfig {
            delay: 0.0,
            delay_ms: 0,
            drop_heartbeat: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
        }
    }

    /// The light background mix `loadgen --partition` runs under: enough
    /// delay/drop/duplicate/reorder to shake out ordering assumptions
    /// without swamping the run.
    pub fn light() -> NetFaultConfig {
        NetFaultConfig {
            delay: 0.02,
            delay_ms: 2,
            drop_heartbeat: 0.02,
            duplicate: 0.02,
            reorder: 0.01,
        }
    }
}

/// What [`NetFault::process`] decided for one outbound line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Sleep this long before writing (injected latency).
    pub delay: Duration,
    /// The lines to actually write, in order. Empty = dropped; two
    /// entries = duplicated; a previously held-back heartbeat may be
    /// appended after the current line (the reorder).
    pub lines: Vec<String>,
}

impl Delivery {
    /// The identity delivery: write `line` once, immediately.
    pub fn passthrough(line: &str) -> Delivery {
        Delivery {
            delay: Duration::ZERO,
            lines: vec![line.to_string()],
        }
    }
}

#[derive(Debug)]
struct LinkState {
    rng: StdRng,
    /// A heartbeat held back for reordering; released after the next line.
    held: Option<String>,
}

/// The wire verb of one rendered line: the parsed `"cmd"` field, `None`
/// for anything unparseable. Fault scoping keys off the protocol itself
/// rather than a raw substring probe, so a change to the serializer's
/// field rendering cannot silently reclassify lines and drop or reorder
/// a non-idempotent verb.
fn verb_of(line: &str) -> Option<String> {
    serde_json::from_str::<serde_json::Value>(line)
        .ok()?
        .get("cmd")?
        .as_str()
        .map(str::to_string)
}

/// The seeded network-fault proxy (see module docs). One instance is
/// shared by every outbound link of a process; per-link RNG streams are
/// derived as `FaultPlan::rng(STREAM_NET, from * peers + to)`, so each
/// directed link draws an independent but reproducible schedule.
#[derive(Debug)]
pub struct NetFault {
    plan: FaultPlan,
    peers: usize,
    config: NetFaultConfig,
    windows: Vec<PartitionWindow>,
    started: Instant,
    links: Mutex<HashMap<(usize, usize), LinkState>>,
}

impl NetFault {
    /// A proxy over `peers` peers with the given random-fault mix and
    /// partition schedule. The partition clock starts now.
    pub fn new(
        plan: FaultPlan,
        peers: usize,
        config: NetFaultConfig,
        windows: Vec<PartitionWindow>,
    ) -> NetFault {
        NetFault {
            plan,
            peers: peers.max(1),
            config,
            windows,
            started: Instant::now(),
            links: Mutex::new(HashMap::new()),
        }
    }

    /// True while a scheduled window cuts the `from ↔ to` pair. The
    /// caller must *retain* the line and retry (FIFO preserved), never
    /// drop it — a partition delays traffic, it does not lose it.
    pub fn partitioned(&self, from: usize, to: usize) -> bool {
        let elapsed = self.started.elapsed();
        self.windows.iter().any(|w| w.cuts(from, to, elapsed))
    }

    /// Applies the random fault mix to one outbound line on the
    /// `from → to` link and returns what to actually write.
    pub fn process(&self, from: usize, to: usize, line: &str) -> Delivery {
        let mut links = self.links.lock().expect("netfault lock");
        let st = links.entry((from, to)).or_insert_with(|| LinkState {
            rng: self.plan.rng(STREAM_NET, (from * self.peers + to) as u64),
            held: None,
        });
        let verb = verb_of(line);
        let verb = verb.as_deref();
        let heartbeat = verb == Some("heartbeat");
        let append = verb == Some("journal-append");
        let mut delay = Duration::ZERO;
        if self.config.delay > 0.0 && st.rng.gen_bool(self.config.delay) {
            delay = Duration::from_millis(self.config.delay_ms);
        }
        // Reorder: hold this heartbeat back; it is released after the
        // next line on the link, which thereby overtakes it.
        if heartbeat
            && st.held.is_none()
            && self.config.reorder > 0.0
            && st.rng.gen_bool(self.config.reorder)
        {
            st.held = Some(line.to_string());
            return Delivery {
                delay,
                lines: Vec::new(),
            };
        }
        let mut lines = Vec::new();
        let dropped = heartbeat
            && self.config.drop_heartbeat > 0.0
            && st.rng.gen_bool(self.config.drop_heartbeat);
        if !dropped {
            lines.push(line.to_string());
            if (heartbeat || append)
                && self.config.duplicate > 0.0
                && st.rng.gen_bool(self.config.duplicate)
            {
                lines.push(line.to_string());
            }
        }
        if let Some(held) = st.held.take() {
            lines.push(held);
        }
        Delivery { delay, lines }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb() -> String {
        "{\"cmd\":\"heartbeat\",\"from\":0}".to_string()
    }

    fn append(seq: u64) -> String {
        format!("{{\"cmd\":\"journal-append\",\"from\":0,\"session\":1,\"seq\":{seq},\"input\":\"Mouse.clicks\",\"value\":\"Unit\",\"epoch\":1}}")
    }

    #[test]
    fn partition_windows_cut_both_directions_and_heal() {
        let nf = NetFault::new(
            FaultPlan::disabled(),
            3,
            NetFaultConfig::disabled(),
            vec![PartitionWindow {
                a: 0,
                b: 1,
                start: Duration::ZERO,
                duration: Duration::from_secs(3600),
            }],
        );
        assert!(nf.partitioned(0, 1));
        assert!(nf.partitioned(1, 0));
        assert!(!nf.partitioned(0, 2));
        assert!(!nf.partitioned(2, 1));
        // A window in the far future is not yet cutting.
        let later = NetFault::new(
            FaultPlan::disabled(),
            3,
            NetFaultConfig::disabled(),
            vec![PartitionWindow {
                a: 0,
                b: 1,
                start: Duration::from_secs(3600),
                duration: Duration::from_secs(1),
            }],
        );
        assert!(!later.partitioned(0, 1));
    }

    #[test]
    fn window_parse_round_trips_and_rejects_garbage() {
        assert_eq!(
            PartitionWindow::parse("0:2:1500:800").unwrap(),
            PartitionWindow {
                a: 0,
                b: 2,
                start: Duration::from_millis(1500),
                duration: Duration::from_millis(800),
            }
        );
        assert!(PartitionWindow::parse("0:2:1500").is_err());
        assert!(PartitionWindow::parse("0:2:abc:800").is_err());
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed_and_link() {
        let mix = NetFaultConfig {
            delay: 0.2,
            delay_ms: 1,
            drop_heartbeat: 0.3,
            duplicate: 0.3,
            reorder: 0.2,
        };
        let run = |seed: u64, from: usize, to: usize| -> Vec<Delivery> {
            let plan = FaultPlan {
                seed,
                ..FaultPlan::disabled()
            };
            let nf = NetFault::new(plan, 3, mix, Vec::new());
            (0..64)
                .map(|i| {
                    if i % 3 == 0 {
                        nf.process(from, to, &hb())
                    } else {
                        nf.process(from, to, &append(i))
                    }
                })
                .collect()
        };
        assert_eq!(run(42, 0, 1), run(42, 0, 1));
        assert_ne!(run(42, 0, 1), run(43, 0, 1));
        assert_ne!(run(42, 0, 1), run(42, 0, 2));
    }

    #[test]
    fn faults_are_scoped_by_verb() {
        let mix = NetFaultConfig {
            delay: 0.0,
            delay_ms: 0,
            drop_heartbeat: 1.0,
            duplicate: 1.0,
            reorder: 0.0,
        };
        let nf = NetFault::new(FaultPlan::disabled(), 2, mix, Vec::new());
        // Heartbeats: dropped (drop wins before duplicate applies).
        assert!(nf.process(0, 1, &hb()).lines.is_empty());
        // Appends: never dropped, but duplicated; the replica store
        // ignores the duplicate seq.
        let d = nf.process(0, 1, &append(7));
        assert_eq!(d.lines.len(), 2);
        assert_eq!(d.lines[0], d.lines[1]);
        // Control verbs pass through untouched.
        let takeover = "{\"cmd\":\"takeover\",\"from\":0,\"addr\":\"x\",\"sessions\":[1]}";
        assert_eq!(nf.process(0, 1, takeover), Delivery::passthrough(takeover));
    }

    #[test]
    fn reorder_holds_a_heartbeat_until_the_next_line_overtakes_it() {
        let mix = NetFaultConfig {
            delay: 0.0,
            delay_ms: 0,
            drop_heartbeat: 0.0,
            duplicate: 0.0,
            reorder: 1.0,
        };
        let nf = NetFault::new(FaultPlan::disabled(), 2, mix, Vec::new());
        // The heartbeat is held...
        assert!(nf.process(0, 1, &hb()).lines.is_empty());
        // ...and released after the next append, which overtakes it.
        let d = nf.process(0, 1, &append(1));
        assert_eq!(d.lines.len(), 2);
        assert!(d.lines[0].contains("journal-append"));
        assert!(d.lines[1].contains("heartbeat"));
    }
}
