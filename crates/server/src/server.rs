//! The session manager: routes sessions to shards, merges statistics.
//!
//! [`Server`] is the in-process API the TCP front end ([`crate::net`]),
//! the load generator, and tests all share. It owns the shard pool and
//! the program [`Registry`]; every per-session operation is forwarded to
//! the owning shard over its command channel and answered on a one-shot
//! reply channel.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, Weak};
use std::time::Duration;

use crossbeam::channel::{self, Receiver};
use elm_runtime::{JournalEntry, PlainValue, StatsSnapshot, WireSnapshot};

use crate::admission::{AdmissionConfig, MemoryGauge};
use crate::cluster::{Cluster, ReplicationTap};
use crate::protocol::{
    AdmissionStats, BackpressurePolicy, BatchOutcome, DescribeInfo, EnqueueOutcome, IngressStats,
    LatencySummary, OpenInfo, QueryInfo, RecoveryStats, ServerStats, SessionMeta, SessionStats,
    TrapStats, Update,
};
use crate::registry::{ProgramSpec, Registry};
use crate::session::{SessionConfig, SessionId, TraceMailbox};
use crate::shard::{Command, ShardHandle, ShardStats};
use std::sync::Arc;

/// Server-wide configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServerConfig {
    /// Worker threads; sessions are pinned to `session id % shards`.
    pub shards: usize,
    /// Default per-session ingress configuration (overridable per open).
    pub session: SessionConfig,
    /// Evict sessions untouched for this long. `None` disables.
    pub idle_timeout: Option<Duration>,
    /// Per-shard admission control (disabled by default).
    pub admission: AdmissionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            session: SessionConfig::default(),
            idle_timeout: None,
            admission: AdmissionConfig::default(),
        }
    }
}

/// A running multi-session server (see module docs).
pub struct Server {
    shards: Vec<ShardHandle>,
    next_id: AtomicU64,
    registry: Registry,
    config: ServerConfig,
    memory: Arc<MemoryGauge>,
    tap: Arc<ReplicationTap>,
    cluster: OnceLock<Weak<Cluster>>,
}

impl Server {
    /// Starts the shard pool.
    pub fn start(config: ServerConfig) -> Server {
        let memory = MemoryGauge::new();
        let tap = ReplicationTap::new();
        let shards = (0..config.shards.max(1))
            .map(|i| {
                ShardHandle::spawn(
                    i,
                    config.idle_timeout,
                    config.session.faults,
                    config.admission,
                    memory.clone(),
                    tap.clone(),
                )
            })
            .collect();
        Server {
            shards,
            next_id: AtomicU64::new(0),
            registry: Registry::standard(),
            config,
            memory,
            tap,
            cluster: OnceLock::new(),
        }
    }

    /// The replication tap the shards publish session events into. A
    /// no-op until a [`Cluster`] installs its channel.
    pub fn replication_tap(&self) -> Arc<ReplicationTap> {
        self.tap.clone()
    }

    /// Registers the cluster layer so the wire front end can answer
    /// placement queries and redirect moved sessions. Call once, from
    /// [`Cluster::start`].
    pub fn attach_cluster(&self, cluster: &Arc<Cluster>) {
        let _ = self.cluster.set(Arc::downgrade(cluster));
    }

    /// The attached cluster layer, if this server runs in cluster mode.
    pub fn cluster(&self) -> Option<Arc<Cluster>> {
        self.cluster.get().and_then(Weak::upgrade)
    }

    /// The server-wide approximate-memory gauge (cells retained across
    /// all sessions' queues, journals, and outputs).
    pub fn memory_cells(&self) -> u64 {
        self.memory.cells()
    }

    /// The program registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    fn shard_for(&self, session: SessionId) -> &ShardHandle {
        &self.shards[(session as usize) % self.shards.len()]
    }

    fn ask<R>(
        &self,
        session: SessionId,
        make: impl FnOnce(channel::Sender<R>) -> Command,
    ) -> Result<R, String> {
        let (tx, rx) = channel::bounded(1);
        self.shard_for(session)
            .sender()
            .send(make(tx))
            .map_err(|_| "shard is down".to_string())?;
        rx.recv().map_err(|_| "shard is down".to_string())
    }

    /// Compiles/looks up a program and hosts it as a new session.
    ///
    /// # Errors
    ///
    /// Fails if the program cannot be resolved or the shard died.
    pub fn open(
        &self,
        spec: ProgramSpec<'_>,
        queue: Option<usize>,
        policy: Option<BackpressurePolicy>,
        observe: bool,
    ) -> Result<OpenInfo, String> {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.open_at(id, spec, queue, policy, observe)
    }

    /// Hosts a session under a caller-chosen id — cluster mode, where
    /// placement (not this process) assigns session keys. Bumps the
    /// local id counter past `key` so plain opens never collide.
    ///
    /// # Errors
    ///
    /// Fails if the program cannot be resolved, the key is already
    /// hosted here, or the shard died.
    pub fn open_with_key(
        &self,
        key: SessionId,
        spec: ProgramSpec<'_>,
        queue: Option<usize>,
        policy: Option<BackpressurePolicy>,
        observe: bool,
    ) -> Result<OpenInfo, String> {
        self.next_id.fetch_max(key + 1, Ordering::SeqCst);
        self.open_at(key, spec, queue, policy, observe)
    }

    fn open_at(
        &self,
        id: SessionId,
        spec: ProgramSpec<'_>,
        queue: Option<usize>,
        policy: Option<BackpressurePolicy>,
        observe: bool,
    ) -> Result<OpenInfo, String> {
        let (name, graph, source) = self.registry.resolve_with_source(spec)?;
        let mut config = self.config.session;
        if let Some(q) = queue {
            config.queue_capacity = q.max(1);
        }
        if let Some(p) = policy {
            config.policy = p;
        }
        if observe {
            config.observe = true;
        }
        self.ask(id, |reply| Command::Open {
            id,
            name,
            graph,
            source,
            config: Box::new(config),
            reply,
        })?
    }

    /// Hosts a session restored from a peer's shipped snapshot and
    /// journal suffix — the failover path. Returns the applied-seq
    /// high-water mark the restored session answers `last_seq` with.
    ///
    /// # Errors
    ///
    /// Fails if the program cannot be resolved, the restore diverges
    /// (fingerprint or replay mismatch), or the key is already hosted.
    pub fn adopt(
        &self,
        session: SessionId,
        meta: &SessionMeta,
        snapshot: Option<(u64, WireSnapshot)>,
        entries: Vec<JournalEntry>,
        epoch: u64,
    ) -> Result<u64, String> {
        let spec = match &meta.source {
            Some(src) => ProgramSpec::Source(src),
            None => ProgramSpec::Builtin(&meta.program),
        };
        let (name, graph, source) = self.registry.resolve_with_source(spec)?;
        let mut config = self.config.session;
        config.queue_capacity = meta.queue.max(1);
        config.policy = meta.policy;
        self.next_id.fetch_max(session + 1, Ordering::SeqCst);
        self.ask(session, |reply| Command::Adopt {
            id: session,
            name,
            graph,
            source,
            config: Box::new(config),
            snapshot,
            entries,
            epoch,
            reply,
        })?
    }

    /// Closes a locally hosted copy of `session` because `peer` took it
    /// over at `epoch`; subscribers get a typed `moved` redirect carrying
    /// the takeover's trace id. A nonzero epoch marks the close as a
    /// demotion (this peer was fenced off). Returns whether a local copy
    /// existed.
    pub fn close_moved(&self, session: SessionId, peer: &str, trace: u64, epoch: u64) -> bool {
        self.ask(session, |reply| Command::CloseMoved {
            session,
            peer: peer.to_string(),
            trace,
            epoch,
            reply,
        })
        .unwrap_or(false)
    }

    /// The hosted program's description: resolved name, the FElm source
    /// it was compiled from (`None` for native graphs), the graph's
    /// structural fingerprint, and its declared inputs.
    ///
    /// # Errors
    ///
    /// Fails for an unknown session.
    pub fn describe(&self, session: SessionId) -> Result<DescribeInfo, String> {
        self.ask(session, |reply| Command::Describe { session, reply })?
    }

    /// Sends one event to a session's ingress queue.
    ///
    /// # Errors
    ///
    /// Fails for an unknown session.
    pub fn event(
        &self,
        session: SessionId,
        input: &str,
        value: PlainValue,
    ) -> Result<EnqueueOutcome, String> {
        self.event_traced(session, input, value, 0)
    }

    /// [`Server::event`] carrying a caller-supplied causal trace id that
    /// rides the event through the journal, replication, and failover.
    ///
    /// # Errors
    ///
    /// Fails for an unknown session.
    pub fn event_traced(
        &self,
        session: SessionId,
        input: &str,
        value: PlainValue,
        trace: u64,
    ) -> Result<EnqueueOutcome, String> {
        self.ask(session, |reply| Command::Event {
            session,
            input: input.to_string(),
            value: value.to_value(),
            trace,
            reply,
        })?
    }

    /// Sends many events, enqueued in order.
    ///
    /// # Errors
    ///
    /// Fails for an unknown session.
    pub fn batch(
        &self,
        session: SessionId,
        events: &[(String, PlainValue)],
    ) -> Result<BatchOutcome, String> {
        let events = events
            .iter()
            .map(|(i, v)| (i.clone(), v.to_value()))
            .collect();
        self.ask(session, |reply| Command::Batch {
            session,
            events,
            reply,
        })?
    }

    /// Current output value and queue depth (pumps pending events first,
    /// so the answer reflects everything already acknowledged).
    ///
    /// # Errors
    ///
    /// Fails for an unknown session.
    pub fn query(&self, session: SessionId) -> Result<QueryInfo, String> {
        self.ask(session, |reply| Command::Query { session, reply })?
    }

    /// Streams output changes. The returned receiver yields
    /// [`Update::Changed`] per output change and one [`Update::Closed`]
    /// when the session goes away.
    ///
    /// # Errors
    ///
    /// Fails for an unknown session.
    pub fn subscribe(&self, session: SessionId) -> Result<Receiver<Update>, String> {
        let (tx, rx) = channel::unbounded();
        self.ask(session, |reply| Command::Subscribe {
            session,
            sink: tx,
            reply,
        })??;
        Ok(rx)
    }

    /// Statistics for one session.
    ///
    /// # Errors
    ///
    /// Fails for an unknown session.
    pub fn session_stats(&self, session: SessionId) -> Result<SessionStats, String> {
        let stats = self.ask(session, |reply| Command::Stats {
            session: Some(session),
            reply,
        })?;
        stats
            .sessions
            .into_iter()
            .next()
            .ok_or_else(|| format!("unknown session {session}"))
    }

    /// Streams completed span trees as rendered `{"trace":…}` NDJSON
    /// lines. Requires the session to have been opened with `observe`.
    ///
    /// # Errors
    ///
    /// Fails for an unknown or unobserved session.
    pub fn trace_subscribe(&self, session: SessionId) -> Result<Arc<TraceMailbox>, String> {
        let mailbox = TraceMailbox::new();
        let sink = mailbox.clone();
        self.ask(session, |reply| Command::TraceSubscribe {
            session,
            sink,
            reply,
        })??;
        Ok(mailbox)
    }

    /// Polls every shard for its statistics. Shard identity is preserved:
    /// entry `i` of the result came from shard `i`'s reply (dead shards
    /// report a default entry).
    fn collect_shard_stats(&self) -> Vec<ShardStats> {
        let mut per_shard: Vec<ShardStats> = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (tx, rx) = channel::bounded(1);
            let reply = shard
                .sender()
                .send(Command::Stats {
                    session: None,
                    reply: tx,
                })
                .ok()
                .and_then(|()| rx.recv().ok());
            per_shard.push(reply.unwrap_or_default());
        }
        per_shard
    }

    /// Global counters plus per-session statistics for every live session.
    pub fn stats(&self) -> (ServerStats, Vec<SessionStats>) {
        let per_shard = self.collect_shard_stats();
        let mut sessions: Vec<SessionStats> = Vec::new();
        let mut samples: Vec<u64> = Vec::new();
        let mut global = ServerStats {
            sessions_live: 0,
            opened: 0,
            closed: 0,
            evicted_idle: 0,
            recovery_failed: 0,
            restarts: 0,
            replayed_events: 0,
            snapshot_count: 0,
            runtime: StatsSnapshot::default(),
            ingress: IngressStats::default(),
            recovery: RecoveryStats::default(),
            latency: LatencySummary::default(),
            traps: TrapStats::default(),
            admission: AdmissionStats::default(),
        };
        for shard in per_shard {
            global.opened += shard.counters.opened;
            global.closed += shard.counters.closed;
            global.evicted_idle += shard.counters.evicted_idle;
            global.recovery_failed += shard.counters.recovery_failed;
            global.sessions_live += shard.sessions.len() as u64;
            global.admission = global.admission.merged(&shard.admission);
            for s in &shard.sessions {
                global.runtime = global.runtime.merged(&s.runtime);
                global.ingress = global.ingress.merged(&s.ingress);
                global.recovery = global.recovery.merged(&s.recovery);
                global.traps = global.traps.merged(&s.traps);
            }
            sessions.extend(shard.sessions);
            samples.extend(shard.samples);
        }
        global.restarts = global.recovery.restarts;
        global.replayed_events = global.recovery.replayed_events;
        global.snapshot_count = global.recovery.snapshot_count;
        global.latency = LatencySummary::compute(&mut samples);
        sessions.sort_by_key(|s| s.session);
        (global, sessions)
    }

    /// Renders every server metric family as Prometheus exposition text —
    /// the payload behind both the `metrics` wire verb and `GET /metrics`.
    pub fn metrics_text(&self) -> String {
        let per_shard = self.collect_shard_stats();
        let shard_depths: Vec<u64> = per_shard.iter().map(|s| s.queue_depth).collect();
        let admissions: Vec<AdmissionStats> = per_shard.iter().map(|s| s.admission).collect();
        let backlogs: Vec<u64> = per_shard.iter().map(|s| s.cmd_backlog).collect();
        let mut sessions: Vec<SessionStats> = Vec::new();
        let mut samples: Vec<u64> = Vec::new();
        let mut counters = crate::shard::ShardCounters::default();
        for shard in per_shard {
            counters.opened += shard.counters.opened;
            counters.closed += shard.counters.closed;
            counters.evicted_idle += shard.counters.evicted_idle;
            counters.recovery_failed += shard.counters.recovery_failed;
            sessions.extend(shard.sessions);
            samples.extend(shard.samples);
        }
        sessions.sort_by_key(|s| s.session);
        let latency_sum_us: u64 = samples.iter().sum();
        let latency = LatencySummary::compute(&mut samples);
        let text = crate::metrics::render_prometheus(
            &counters,
            &sessions,
            &shard_depths,
            &crate::metrics::OverloadMetrics {
                admissions: &admissions,
                backlogs: &backlogs,
                memory_cells: self.memory.cells(),
                net: crate::net::counters(),
            },
            &latency,
            latency_sum_us,
        );
        let text = match self.cluster() {
            Some(cluster) => format!("{text}{}", cluster.render_metrics(sessions.len() as i64)),
            None => text,
        };
        format!("{text}{}", crate::blackbox::blackbox().render_metrics())
    }

    /// Renders the cluster-wide federated exposition (this peer's scrape
    /// merged with every reachable peer's, `peer`-labelled). Falls back
    /// to the local exposition outside cluster mode.
    pub fn federated_metrics_text(&self) -> String {
        let local = self.metrics_text();
        match self.cluster() {
            Some(cluster) => cluster.federated_metrics(&local),
            None => local,
        }
    }

    /// Tears a session down (subscribers get a final `closed` update).
    ///
    /// # Errors
    ///
    /// Fails for an unknown session.
    pub fn close(&self, session: SessionId) -> Result<(), String> {
        self.ask(session, |reply| Command::Close { session, reply })?
    }

    /// Stops every shard, draining queued events first.
    pub fn shutdown(self) {
        for shard in self.shards {
            shard.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_event_query_close_round_trip() {
        let server = Server::start(ServerConfig {
            shards: 2,
            ..ServerConfig::default()
        });
        let a = server
            .open(ProgramSpec::Builtin("counter"), None, None, false)
            .unwrap();
        let b = server
            .open(ProgramSpec::Builtin("mouse-sum"), None, None, false)
            .unwrap();
        assert_ne!(a.session, b.session);

        server
            .event(a.session, "Mouse.clicks", PlainValue::Unit)
            .unwrap();
        server
            .event(b.session, "Mouse.x", PlainValue::Int(4))
            .unwrap();
        server
            .event(b.session, "Mouse.y", PlainValue::Int(5))
            .unwrap();

        assert_eq!(server.query(a.session).unwrap().value, PlainValue::Int(1));
        assert_eq!(server.query(b.session).unwrap().value, PlainValue::Int(9));

        let (global, sessions) = server.stats();
        assert_eq!(global.sessions_live, 2);
        assert_eq!(global.opened, 2);
        assert_eq!(sessions.len(), 2);
        assert!(global.ingress.enqueued >= 3);

        server.close(a.session).unwrap();
        assert!(server.query(a.session).is_err());
        assert!(server.close(a.session).is_err());
        let (global, _) = server.stats();
        assert_eq!(global.sessions_live, 1);
        assert_eq!(global.closed, 1);
        server.shutdown();
    }

    #[test]
    fn subscriptions_stream_and_end_with_closed() {
        let server = Server::start(ServerConfig {
            shards: 1,
            ..ServerConfig::default()
        });
        let s = server
            .open(ProgramSpec::Builtin("counter"), None, None, false)
            .unwrap();
        let rx = server.subscribe(s.session).unwrap();
        server
            .event(s.session, "Mouse.clicks", PlainValue::Unit)
            .unwrap();
        // Force the pump via query, then read the streamed update.
        server.query(s.session).unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            Update::Changed {
                session: s.session,
                seq: 1,
                value: PlainValue::Int(1)
            }
        );
        server.close(s.session).unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            Update::Closed {
                session: s.session,
                reason: "closed".to_string()
            }
        );
        server.shutdown();
    }

    #[test]
    fn ad_hoc_source_sessions_work() {
        let server = Server::start(ServerConfig::default());
        let s = server
            .open(
                ProgramSpec::Source("main = foldp (\\k acc -> acc + k) 0 Keyboard.lastPressed"),
                None,
                None,
                false,
            )
            .unwrap();
        server
            .event(s.session, "Keyboard.lastPressed", PlainValue::Int(10))
            .unwrap();
        server
            .event(s.session, "Keyboard.lastPressed", PlainValue::Int(32))
            .unwrap();
        assert_eq!(server.query(s.session).unwrap().value, PlainValue::Int(42));
        server.shutdown();
    }
}
