//! Satellite: many concurrent sessions with distinct simulator traces
//! must be perfectly isolated — each final output equals a single-session
//! synchronous replay of that session's own trace.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use elm_environment::Simulator;
use elm_runtime::{PlainValue, Trace};
use elm_server::{ProgramSpec, Server, ServerConfig};
use elm_signals::{Engine, Program};

fn sync_replay(server: &Server, program: &str, trace: &Trace) -> PlainValue {
    let (_, graph) = server
        .registry()
        .resolve(ProgramSpec::Builtin(program))
        .unwrap();
    let mut running = Program::from_dynamic_graph(graph.clone()).start(Engine::Synchronous);
    for e in &trace.events {
        // The server ignores events on inputs the program does not
        // declare; skip them here the same way.
        if graph.input_named(&e.input).is_some() {
            running.send_named(&e.input, e.value.to_value()).unwrap();
        }
    }
    running.drain_raw().unwrap();
    PlainValue::from_value(running.current()).unwrap()
}

#[test]
fn concurrent_sessions_match_single_session_replay() {
    const SESSIONS: usize = 12;
    const EVENTS: usize = 600;
    let program = "dashboard";

    let traces = Simulator::fan_out(0xE1A0, SESSIONS, EVENTS);
    let server = Arc::new(Server::start(ServerConfig {
        shards: 4,
        ..ServerConfig::default()
    }));

    let mut ids = Vec::new();
    for _ in 0..SESSIONS {
        ids.push(
            server
                .open(ProgramSpec::Builtin(program), None, None, false)
                .unwrap()
                .session,
        );
    }

    // Drive every session from its own thread, interleaving batches of
    // different sizes so shard bursts mix sessions arbitrarily.
    let mut drivers = Vec::new();
    for (i, &session) in ids.iter().enumerate() {
        let server = Arc::clone(&server);
        let trace = traces[i].clone();
        drivers.push(thread::spawn(move || {
            let chunk = 16 + (i % 5) * 13;
            for events in trace.events.chunks(chunk) {
                let batch: Vec<(String, PlainValue)> = events
                    .iter()
                    .map(|e| (e.input.clone(), e.value.clone()))
                    .collect();
                server.batch(session, &batch).unwrap();
            }
        }));
    }
    for d in drivers {
        d.join().unwrap();
    }

    for (i, &session) in ids.iter().enumerate() {
        let served = server.query(session).unwrap();
        assert_eq!(served.queue_len, 0, "query pumps before answering");
        let replayed = sync_replay(&server, program, &traces[i]);
        assert_eq!(served.value, replayed, "session {session} diverged");
    }

    let (global, sessions) = server.stats();
    assert_eq!(global.sessions_live, SESSIONS as u64);
    assert_eq!(sessions.len(), SESSIONS);
    // Block policy: nothing may be lost under pressure.
    assert_eq!(global.ingress.dropped, 0);
    assert_eq!(global.ingress.coalesced, 0);
    assert!(global.latency.count > 0, "latency samples were recorded");

    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

#[test]
fn mixed_programs_share_the_pool_without_interference() {
    let programs = ["counter", "mouse-sum", "window-area", "latest-word"];
    let traces = Simulator::fan_out(7, programs.len(), 400);
    let server = Arc::new(Server::start(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    }));

    let ids: Vec<u64> = programs
        .iter()
        .map(|p| {
            server
                .open(ProgramSpec::Builtin(p), None, None, false)
                .unwrap()
                .session
        })
        .collect();

    let mut drivers = Vec::new();
    for (i, &session) in ids.iter().enumerate() {
        let server = Arc::clone(&server);
        let trace = traces[i].clone();
        drivers.push(thread::spawn(move || {
            for e in &trace.events {
                server.event(session, &e.input, e.value.clone()).unwrap();
            }
        }));
    }
    for d in drivers {
        d.join().unwrap();
    }

    for (i, &session) in ids.iter().enumerate() {
        let served = server.query(session).unwrap().value;
        let replayed = sync_replay(&server, programs[i], &traces[i]);
        assert_eq!(served, replayed, "program {} diverged", programs[i]);
    }
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

#[test]
fn subscribers_see_every_change_in_order() {
    let server = Server::start(ServerConfig {
        shards: 1,
        ..ServerConfig::default()
    });
    let s = server
        .open(ProgramSpec::Builtin("counter"), None, None, false)
        .unwrap()
        .session;
    let rx = server.subscribe(s).unwrap();
    for _ in 0..5 {
        server.event(s, "Mouse.clicks", PlainValue::Unit).unwrap();
    }
    server.query(s).unwrap();

    let mut seen = Vec::new();
    while seen.len() < 5 {
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            elm_server::Update::Changed { seq, value, .. } => seen.push((seq, value)),
            other => panic!("unexpected update {other:?}"),
        }
    }
    let expected: Vec<(u64, PlainValue)> =
        (1..=5).map(|n| (n, PlainValue::Int(n as i64))).collect();
    assert_eq!(seen, expected);
    server.shutdown();
}
