//! Satellite: backpressure policies and poisoning observed through the
//! public `Server` API — drop-oldest/coalesce counters tick, and a
//! session whose node panics recovers in place rather than wedging its
//! shard.

use elm_runtime::PlainValue;
use elm_server::{BackpressurePolicy, ProgramSpec, Server, ServerConfig, SessionConfig};

fn tiny_queue_server(policy: BackpressurePolicy) -> Server {
    Server::start(ServerConfig {
        shards: 1,
        session: SessionConfig {
            queue_capacity: 4,
            policy,
            ..SessionConfig::default()
        },
        idle_timeout: None,
        admission: Default::default(),
    })
}

#[test]
fn drop_oldest_counts_drops_and_keeps_the_newest_events() {
    let server = tiny_queue_server(BackpressurePolicy::DropOldest);
    let s = server
        .open(ProgramSpec::Builtin("mouse-latest"), None, None, false)
        .unwrap()
        .session;

    // A batch twice the queue capacity lands in one shard command, so the
    // pump cannot interleave: the first half must be dropped.
    let batch: Vec<(String, PlainValue)> = (1..=8)
        .map(|n| ("Mouse.x".to_string(), PlainValue::Int(n)))
        .collect();
    let outcome = server.batch(s, &batch).unwrap();
    assert_eq!(outcome.dropped, 4, "{outcome:?}");

    let q = server.query(s).unwrap();
    assert_eq!(q.value, PlainValue::Int(8), "newest event survives");

    let (global, _) = server.stats();
    assert_eq!(global.ingress.dropped, 4);
    server.shutdown();
}

#[test]
fn coalesce_merges_same_input_events_and_keeps_distinct_inputs() {
    let server = tiny_queue_server(BackpressurePolicy::Coalesce);
    let s = server
        .open(ProgramSpec::Builtin("mouse-sum"), None, None, false)
        .unwrap()
        .session;

    // Fill the queue with two inputs, then keep updating one of them: the
    // newer Mouse.x samples replace the queued one in place.
    let batch: Vec<(String, PlainValue)> = vec![
        ("Mouse.x".to_string(), PlainValue::Int(1)),
        ("Mouse.y".to_string(), PlainValue::Int(10)),
        ("Mouse.x".to_string(), PlainValue::Int(2)),
        ("Mouse.y".to_string(), PlainValue::Int(20)),
        ("Mouse.x".to_string(), PlainValue::Int(3)),
        ("Mouse.x".to_string(), PlainValue::Int(4)),
    ];
    let outcome = server.batch(s, &batch).unwrap();
    assert_eq!(outcome.coalesced, 2, "{outcome:?}");

    let q = server.query(s).unwrap();
    assert_eq!(q.value, PlainValue::Int(24), "x=4 coalesced over x=3, y=20");

    let (global, _) = server.stats();
    assert_eq!(global.ingress.coalesced, 2);
    server.shutdown();
}

#[test]
fn unknown_inputs_are_ignored_not_fatal() {
    let server = tiny_queue_server(BackpressurePolicy::Block);
    let s = server
        .open(ProgramSpec::Builtin("counter"), None, None, false)
        .unwrap()
        .session;
    let batch: Vec<(String, PlainValue)> = vec![
        ("Mouse.clicks".to_string(), PlainValue::Unit),
        ("No.SuchInput".to_string(), PlainValue::Int(1)),
        ("Mouse.clicks".to_string(), PlainValue::Unit),
    ];
    let outcome = server.batch(s, &batch).unwrap();
    assert_eq!(outcome.accepted, 2);
    assert_eq!(outcome.ignored, 1);
    assert_eq!(server.query(s).unwrap().value, PlainValue::Int(2));
    server.shutdown();
}

#[test]
fn poisoned_session_recovers_and_the_shard_stays_live() {
    let server = tiny_queue_server(BackpressurePolicy::Block);
    let healthy = server
        .open(ProgramSpec::Builtin("counter"), None, None, false)
        .unwrap()
        .session;
    let doomed = server
        .open(ProgramSpec::Builtin("crashy"), None, None, false)
        .unwrap()
        .session;

    server.event(doomed, "Mouse.x", PlainValue::Int(5)).unwrap();
    assert_eq!(server.query(doomed).unwrap().value, PlainValue::Int(10));
    // Negative input makes the crashy node panic; the supervisor restarts
    // the session in place from snapshot + journal instead of evicting it.
    server
        .event(doomed, "Mouse.x", PlainValue::Int(-1))
        .unwrap();

    let q = server.query(doomed).unwrap();
    assert!(q.poisoned, "the panic is still visible in query info");
    assert_eq!(q.value, PlainValue::Int(10), "last good output survives");

    // The sibling session on the same shard is unharmed.
    server
        .event(healthy, "Mouse.clicks", PlainValue::Unit)
        .unwrap();
    assert_eq!(server.query(healthy).unwrap().value, PlainValue::Int(1));

    let (global, sessions) = server.stats();
    assert_eq!(global.recovery_failed, 0, "budget was never exhausted");
    assert_eq!(global.recovery.restarts, 1);
    assert_eq!(global.sessions_live, 2, "the poisoned session stays live");
    assert_eq!(sessions.len(), 2);
    server.shutdown();
}
