//! Tentpole integration: crash recovery observed through the public
//! `Server` API. A session whose runtime dies keeps its id, its
//! subscribers, and its queryability; outputs under injected crashes
//! match an uninterrupted synchronous replay; and only restart-budget
//! exhaustion ends a session, with the `recovery_failed` close reason.

use elm_environment::FaultPlan;
use elm_runtime::PlainValue;
use elm_server::{
    BackpressurePolicy, ProgramSpec, RestartPolicy, Server, ServerConfig, SessionConfig, Update,
};
use elm_signals::{Engine, Program};

#[test]
fn crashy_session_recovers_in_place_with_subscribers_intact() {
    let server = Server::start(ServerConfig {
        shards: 1,
        session: SessionConfig::default(),
        idle_timeout: None,
        admission: Default::default(),
    });
    let s = server
        .open(ProgramSpec::Builtin("crashy"), None, None, false)
        .unwrap()
        .session;
    let rx = server.subscribe(s).unwrap();

    server.event(s, "Mouse.x", PlainValue::Int(5)).unwrap();
    server.event(s, "Mouse.x", PlainValue::Int(-1)).unwrap(); // panic + restart
    server.event(s, "Mouse.x", PlainValue::Int(7)).unwrap();

    // Same session id answers queries after the crash, and the poisoned
    // node stays NoChange (paper §3.3.2) across the restart: the -1 and
    // the post-recovery 7 both leave the output at 10.
    let q = server.query(s).unwrap();
    assert!(q.poisoned);
    assert_eq!(q.value, PlainValue::Int(10));

    let stats = server.session_stats(s).unwrap();
    assert_eq!(stats.recovery.restarts, 1);
    assert!(stats.recovery.replayed_events <= stats.recovery.snapshot_count.max(1) * 256);
    assert!(!stats.poisoned || stats.recovery.restarts > 0);

    // The pre-crash update reached the subscriber exactly once, and the
    // channel is still connected — closing the session proves it with a
    // final `closed` message.
    server.close(s).unwrap();
    let updates: Vec<Update> = rx.iter().collect();
    let changes: Vec<&Update> = updates
        .iter()
        .filter(|u| matches!(u, Update::Changed { .. }))
        .collect();
    assert_eq!(changes.len(), 1, "{updates:?}");
    match changes[0] {
        Update::Changed { seq, value, .. } => {
            assert_eq!(*seq, 1);
            assert_eq!(value, &PlainValue::Int(10));
        }
        _ => unreachable!(),
    }
    match updates.last() {
        Some(Update::Closed { reason, .. }) => assert_eq!(reason, "closed"),
        other => panic!("stream must end with closed, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn injected_crashes_match_uninterrupted_synchronous_replay() {
    // Feed the chaos program a deterministic trace while the fault plan
    // crashes the runtime roughly every fifty events, then demand the
    // final output equal a crash-free single-session replay.
    let faults = FaultPlan {
        seed: 0xC0FFEE,
        crash: 0.02,
        ..FaultPlan::disabled()
    };
    let server = Server::start(ServerConfig {
        shards: 1,
        session: SessionConfig {
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            snapshot_interval: 16,
            journal_segment: 16,
            restart: RestartPolicy {
                max_restarts: 10_000,
                ..RestartPolicy::default()
            },
            faults,
            // Trace under fire: recovery must re-attach the tracer and
            // keep outputs byte-identical to the crash-free replay.
            observe: true,
            ..SessionConfig::default()
        },
        idle_timeout: None,
        admission: Default::default(),
    });
    let s = server
        .open(ProgramSpec::Builtin("chaos"), None, None, false)
        .unwrap()
        .session;

    let events: Vec<(String, PlainValue)> = (1..=400)
        .flat_map(|n| {
            [
                ("Mouse.clicks".to_string(), PlainValue::Unit),
                ("Mouse.x".to_string(), PlainValue::Int(n)),
            ]
        })
        .collect();
    for chunk in events.chunks(32) {
        server.batch(s, chunk).unwrap();
    }
    while server.query(s).unwrap().queue_len > 0 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    let stats = server.session_stats(s).unwrap();
    assert!(stats.recovery.restarts > 0, "faults must actually fire");
    assert!(
        stats.recovery.max_replay <= 16,
        "snapshots bound replay, saw {}",
        stats.recovery.max_replay
    );

    // Uninterrupted oracle.
    let (_, graph) = server
        .registry()
        .resolve(ProgramSpec::Builtin("chaos"))
        .unwrap();
    let mut oracle = Program::from_dynamic_graph(graph).start(Engine::Synchronous);
    for (input, value) in &events {
        oracle.send_named(input, value.to_value()).unwrap();
    }
    oracle.drain_raw().unwrap();
    let expected = PlainValue::from_value(oracle.current()).unwrap();

    assert_eq!(server.query(s).unwrap().value, expected);
    server.shutdown();
}

#[test]
fn budget_exhaustion_closes_with_recovery_failed() {
    let server = Server::start(ServerConfig {
        shards: 1,
        session: SessionConfig {
            restart: RestartPolicy {
                max_restarts: 0,
                ..RestartPolicy::default()
            },
            ..SessionConfig::default()
        },
        idle_timeout: None,
        admission: Default::default(),
    });
    let s = server
        .open(ProgramSpec::Builtin("crashy"), None, None, false)
        .unwrap()
        .session;
    let rx = server.subscribe(s).unwrap();

    server.event(s, "Mouse.x", PlainValue::Int(-1)).unwrap();

    // The eviction sweep removes the session; its stream must end with
    // the recovery_failed reason.
    match rx.iter().last() {
        Some(Update::Closed { reason, session }) => {
            assert_eq!(reason, "recovery_failed");
            assert_eq!(session, s);
        }
        other => panic!("expected terminal closed update, got {other:?}"),
    }
    assert!(server.query(s).is_err(), "session is gone");

    let (global, _) = server.stats();
    assert_eq!(global.recovery_failed, 1);
    server.shutdown();
}
