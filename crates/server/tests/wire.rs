//! End-to-end wire test: a real TCP client speaking the newline-delimited
//! JSON protocol against `net::serve`.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use elm_server::{net, RestartPolicy, Server, ServerConfig, SessionConfig};
use serde_json::Value as Json;

fn start_with(config: ServerConfig) -> std::net::SocketAddr {
    let server = Arc::new(Server::start(config));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    thread::spawn(move || net::serve(server, listener));
    addr
}

fn start_server() -> std::net::SocketAddr {
    start_with(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    })
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        serde_json::from_str(line.trim()).unwrap()
    }

    fn round_trip(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn field<'a>(v: &'a Json, key: &str) -> &'a Json {
    v.get(key).unwrap_or_else(|| panic!("missing {key}: {v:?}"))
}

fn as_u64(v: &Json) -> u64 {
    match v {
        Json::U64(n) => *n,
        Json::I64(n) => *n as u64,
        other => panic!("not an integer: {other:?}"),
    }
}

fn assert_ok(v: &Json) {
    assert_eq!(field(v, "ok"), &Json::Bool(true), "{v:?}");
}

#[test]
fn full_session_lifecycle_over_tcp() {
    let addr = start_server();
    let mut c = Client::connect(addr);

    let opened = c.round_trip(r#"{"cmd":"open","program":"counter"}"#);
    assert_ok(&opened);
    let session = as_u64(field(&opened, "session"));
    assert_eq!(field(field(&opened, "initial"), "Int"), &Json::I64(0));

    for _ in 0..3 {
        let r = c.round_trip(&format!(
            r#"{{"cmd":"event","session":{session},"input":"Mouse.clicks","value":"Unit"}}"#
        ));
        assert_ok(&r);
        assert_eq!(field(&r, "outcome"), &Json::Str("accepted".into()));
    }

    let q = c.round_trip(&format!(r#"{{"cmd":"query","session":{session}}}"#));
    assert_ok(&q);
    assert_eq!(field(field(&q, "value"), "Int"), &Json::I64(3));
    assert_eq!(as_u64(field(&q, "queue_len")), 0);

    let closed = c.round_trip(&format!(r#"{{"cmd":"close","session":{session}}}"#));
    assert_ok(&closed);
    assert_eq!(as_u64(field(&closed, "closed")), session);

    let gone = c.round_trip(&format!(r#"{{"cmd":"query","session":{session}}}"#));
    assert_eq!(field(&gone, "ok"), &Json::Bool(false));
}

#[test]
fn subscribe_streams_updates_to_the_wire() {
    let addr = start_server();
    let mut c = Client::connect(addr);

    let opened = c.round_trip(r#"{"cmd":"open","program":"counter"}"#);
    assert_ok(&opened);
    let session = as_u64(field(&opened, "session"));

    let sub = c.round_trip(&format!(r#"{{"cmd":"subscribe","session":{session}}}"#));
    assert_ok(&sub);

    c.send(&format!(
        r#"{{"cmd":"event","session":{session},"input":"Mouse.clicks","value":"Unit"}}"#
    ));
    c.send(&format!(r#"{{"cmd":"query","session":{session}}}"#));

    // Replies and pushed updates interleave on the same socket; collect
    // until we have seen the update, the event reply, and the query reply.
    let mut update = None;
    let mut replies = 0;
    while update.is_none() || replies < 2 {
        let msg = c.recv();
        if msg.get("update").is_some() {
            update = Some(msg);
        } else {
            assert_ok(&msg);
            replies += 1;
        }
    }
    let update = update.unwrap();
    assert_eq!(field(&update, "update"), &Json::Str("changed".into()));
    assert_eq!(as_u64(field(&update, "seq")), 1);
    assert_eq!(field(field(&update, "value"), "Int"), &Json::I64(1));
}

#[test]
fn closed_update_with_reason_is_the_final_stream_message() {
    // A zero-restart budget turns the first crash into a recovery failure,
    // so the subscriber must see a final `closed` update carrying the
    // `recovery_failed` reason.
    let addr = start_with(ServerConfig {
        shards: 1,
        session: SessionConfig {
            restart: RestartPolicy {
                max_restarts: 0,
                ..RestartPolicy::default()
            },
            ..SessionConfig::default()
        },
        idle_timeout: None,
        admission: Default::default(),
    });
    let mut c = Client::connect(addr);

    let opened = c.round_trip(r#"{"cmd":"open","program":"crashy"}"#);
    assert_ok(&opened);
    let session = as_u64(field(&opened, "session"));
    assert_ok(&c.round_trip(&format!(r#"{{"cmd":"subscribe","session":{session}}}"#)));

    c.send(&format!(
        r#"{{"cmd":"event","session":{session},"input":"Mouse.x","value":{{"Int":-1}}}}"#
    ));

    // Collect pushed updates until the stream's terminal `closed` line.
    let closed = loop {
        let msg = c.recv();
        if msg.get("update") == Some(&Json::Str("closed".into())) {
            break msg;
        }
    };
    assert_eq!(as_u64(field(&closed, "session")), session);
    assert_eq!(
        field(&closed, "reason"),
        &Json::Str("recovery_failed".into())
    );

    // The session itself is gone.
    let gone = c.round_trip(&format!(r#"{{"cmd":"query","session":{session}}}"#));
    assert_eq!(field(&gone, "ok"), &Json::Bool(false));
}

#[test]
fn ad_hoc_source_and_stats_over_tcp() {
    let addr = start_server();
    let mut c = Client::connect(addr);

    let src = "main = foldp (\\\\x acc -> acc + x) 0 Mouse.x";
    let opened = c.round_trip(&format!(r#"{{"cmd":"open","source":"{src}"}}"#));
    assert_ok(&opened);
    let session = as_u64(field(&opened, "session"));

    for n in [3, 4, 5] {
        let r = c.round_trip(&format!(
            r#"{{"cmd":"event","session":{session},"input":"Mouse.x","value":{{"Int":{n}}}}}"#
        ));
        assert_ok(&r);
    }
    let q = c.round_trip(&format!(r#"{{"cmd":"query","session":{session}}}"#));
    assert_eq!(field(field(&q, "value"), "Int"), &Json::I64(12));

    let stats = c.round_trip(r#"{"cmd":"stats"}"#);
    assert_ok(&stats);
    let global = field(&stats, "global");
    assert_eq!(as_u64(field(global, "sessions_live")), 1);
    assert_eq!(as_u64(field(global, "opened")), 1);

    let bad = c.round_trip(r#"{"cmd":"open"}"#);
    assert_eq!(field(&bad, "ok"), &Json::Bool(false));

    let garbage = c.round_trip("this is not json");
    assert_eq!(field(&garbage, "ok"), &Json::Bool(false));
}
