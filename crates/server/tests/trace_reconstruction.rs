//! Causal-trace reconstruction: a seeded simulator workload, run traced
//! on BOTH schedulers, must yield span trees whose shape matches the
//! signal graph's topology — every tree confined to the subgraph
//! reachable from its ingress node, at least one tree covering that
//! subgraph exactly, and async handoffs linked across the boundary.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use elm_environment::Simulator;
use elm_runtime::{
    assemble, reachable_from, GraphBuilder, NodeId, SignalGraph, SpanTree, Tracer, Value,
};
use elm_server::{ProgramSpec, Registry, Server, ServerConfig, TracePop};
use elm_signals::{Engine, Program};

/// Runs `trace`'s declared-input events through an observed runtime on
/// `engine` and returns the reconstructed span trees.
fn traced_run(graph: &SignalGraph, engine: Engine, events: &elm_runtime::Trace) -> Vec<SpanTree> {
    let tracer = Tracer::for_graph(graph);
    tracer.set_enabled(true);
    let mut running = Program::from_dynamic_graph(graph.clone())
        .start_observed(engine, Some(Arc::clone(&tracer)));
    for e in &events.events {
        if graph.input_named(&e.input).is_some() {
            running.send_named(&e.input, e.value.to_value()).unwrap();
        }
    }
    running.drain_raw().unwrap();
    running.stop();
    assert_eq!(tracer.dropped_spans(), 0, "ring overflowed during the test");
    assemble(&tracer.drain_spans(), graph)
}

/// Asserts the topological invariants on one scheduler's trees and
/// returns each tree's `(trace id, node set)` for cross-engine comparison.
fn check_topology(graph: &SignalGraph, trees: &[SpanTree]) -> Vec<(u64, BTreeSet<u32>)> {
    assert!(!trees.is_empty(), "workload produced no span trees");
    let mut exact = 0usize;
    let mut shapes = Vec::with_capacity(trees.len());
    for tree in trees {
        let roots = tree.roots();
        assert!(!roots.is_empty(), "trace {} has no root", tree.trace.0);
        let mut reachable = BTreeSet::new();
        for &r in &roots {
            reachable.extend(reachable_from(graph, NodeId(tree.spans[r].node)));
        }
        let nodes = tree.node_set();
        assert!(
            nodes.is_subset(&reachable),
            "trace {}: nodes {nodes:?} escape reachable set {reachable:?}",
            tree.trace.0
        );
        if nodes == reachable {
            exact += 1;
        }
        shapes.push((tree.trace.0, nodes));
    }
    assert!(exact > 0, "no tree covered its reachable subgraph exactly");
    shapes.sort();
    shapes
}

#[test]
fn seeded_workload_spans_match_topology_on_both_schedulers() {
    let (_, graph) = Registry::standard()
        .resolve(ProgramSpec::Builtin("dashboard"))
        .unwrap();
    let workload = Simulator::workload(0xE1, 400);

    let sync_trees = traced_run(&graph, Engine::Synchronous, &workload);
    let sync_shapes = check_topology(&graph, &sync_trees);

    let conc_trees = traced_run(&graph, Engine::Concurrent, &workload);
    let conc_shapes = check_topology(&graph, &conc_trees);

    // Same seeded events, same deterministic Change/NoChange semantics:
    // both schedulers must reconstruct structurally identical traces.
    assert_eq!(sync_shapes, conc_shapes);
}

#[test]
fn async_handoff_spans_link_across_the_boundary_on_both_schedulers() {
    let mut g = GraphBuilder::new();
    let i = g.input("i", 0i64);
    let doubled = g.lift1("doubled", |v| Value::Int(v.as_int().unwrap_or(0) * 2), i);
    let a = g.async_source(doubled);
    let m = g.input("m", 0i64);
    let join = g.lift2(
        "join",
        |x, y| Value::Int(x.as_int().unwrap_or(0) + y.as_int().unwrap_or(0)),
        a,
        m,
    );
    let graph = g.finish(join).unwrap();

    for engine in [Engine::Synchronous, Engine::Concurrent] {
        let tracer = Tracer::for_graph(&graph);
        tracer.set_enabled(true);
        let mut running = Program::from_dynamic_graph(graph.clone())
            .start_observed(engine, Some(Arc::clone(&tracer)));
        for v in [3i64, 5, 7] {
            running.send_named("i", Value::Int(v)).unwrap();
        }
        running.send_named("m", Value::Int(100)).unwrap();
        running.drain_raw().unwrap();
        running.stop();

        let trees = assemble(&tracer.drain_spans(), &graph);
        // An `i` event flows i → doubled, hands off through the async
        // node, and recomputes join: one tree spanning both subgraphs.
        let crossing = trees
            .iter()
            .find(|t| t.node_set().contains(&a.0) && t.spans[t.roots()[0]].node == i.0)
            .unwrap_or_else(|| panic!("{engine:?}: no trace crossed the async boundary"));
        let expected = reachable_from(&graph, i);
        assert_eq!(crossing.node_set(), expected, "{engine:?}");
        // The async span's causal parent is the wrapped inner node.
        let (idx, _) = crossing
            .spans
            .iter()
            .enumerate()
            .find(|(_, s)| s.node == a.0)
            .unwrap();
        let parent = crossing.parent[idx].expect("async span has a parent");
        assert_eq!(crossing.spans[parent].node, doubled.0, "{engine:?}");
    }
}

#[test]
fn observed_session_streams_trace_lines_and_exposes_node_timings() {
    let server = Server::start(ServerConfig::default());
    let plain = server
        .open(ProgramSpec::Builtin("counter"), None, None, false)
        .unwrap();
    assert!(
        server.trace_subscribe(plain.session).is_err(),
        "unobserved sessions must reject trace subscriptions"
    );

    let observed = server
        .open(ProgramSpec::Builtin("counter"), None, None, true)
        .unwrap();
    let mailbox = server.trace_subscribe(observed.session).unwrap();
    for _ in 0..5 {
        server
            .event(
                observed.session,
                "Mouse.clicks",
                elm_runtime::PlainValue::Unit,
            )
            .unwrap();
    }

    // The session pump renders completed span trees as NDJSON lines.
    let deadline = Instant::now() + Duration::from_secs(5);
    let line = loop {
        match mailbox.recv_timeout(Duration::from_millis(100)) {
            TracePop::Line(line) => break line,
            TracePop::Empty if Instant::now() < deadline => continue,
            other => panic!("no trace line arrived: {other:?}"),
        }
    };
    let json: serde_json::Value = serde_json::from_str(&line).unwrap();
    let as_u64 = |v: &serde_json::Value| match v {
        serde_json::Value::U64(n) => Some(*n),
        serde_json::Value::I64(n) => u64::try_from(*n).ok(),
        _ => None,
    };
    assert_eq!(
        json.get("session").and_then(as_u64),
        Some(observed.session),
        "{line}"
    );
    assert!(json.get("trace").is_some(), "{line}");
    assert!(
        json.get("spans")
            .and_then(|s| s.as_seq())
            .is_some_and(|a| !a.is_empty()),
        "{line}"
    );

    // Per-node timings surface in session stats and the Prometheus text.
    let stats = server.session_stats(observed.session).unwrap();
    assert!(!stats.nodes.is_empty());
    assert!(stats.nodes.iter().any(|n| n.computes > 0));
    let text = server.metrics_text();
    let sid = format!("session=\"{}\"", observed.session);
    assert!(
        text.lines()
            .any(|l| l.starts_with("elm_node_compute_seconds_count") && l.contains(&sid)),
        "{text}"
    );

    server.shutdown();
}
