//! Property tests for rendezvous placement: the cluster's session → peer
//! assignment must stay balanced across peers and must move as few sessions
//! as possible when the peer group grows or shrinks by one.

use std::collections::HashMap;

use proptest::prelude::*;

use elm_server::place;

/// How many distinct session keys each property hashes. Large enough that the
/// fair-share bound is statistically meaningful, small enough to keep the
/// suite fast.
const KEYS: u64 = 10_000;

proptest! {
    /// Balance: over `KEYS` consecutive keys from a random origin, no peer's
    /// primary count may exceed twice its fair share. Rendezvous hashing with
    /// a splitmix64-grade mixer should land well inside this bound; blowing
    /// it means the score function is correlated with the key or peer index.
    #[test]
    fn primaries_stay_within_twice_fair_share(
        n in 2usize..=8,
        origin in 0u64..u64::MAX / 2,
    ) {
        let mut counts: HashMap<usize, u64> = HashMap::new();
        for key in origin..origin + KEYS {
            let (primary, backup) = place(key, n);
            prop_assert!(primary < n, "primary {primary} out of range for {n} peers");
            prop_assert!(backup < n, "backup {backup} out of range for {n} peers");
            prop_assert_ne!(primary, backup, "primary and backup must differ");
            *counts.entry(primary).or_insert(0) += 1;
        }
        let cap = 2 * KEYS / n as u64;
        for (peer, count) in counts {
            prop_assert!(
                count <= cap,
                "peer {peer} owns {count} of {KEYS} primaries with {n} peers \
                 (cap {cap}): placement is unbalanced"
            );
        }
    }

    /// Minimal disruption: growing the group from `n` to `n + 1` peers may
    /// only move keys onto the new peer. A key whose primary was not taken
    /// by the newcomer must keep exactly the primary it had — rendezvous
    /// scores are per-(key, peer), so adding a peer never reshuffles the
    /// relative order of the existing ones.
    #[test]
    fn adding_a_peer_only_moves_keys_onto_it(
        n in 2usize..=7,
        origin in 0u64..u64::MAX / 2,
    ) {
        let mut moved = 0u64;
        for key in origin..origin + KEYS {
            let (before, _) = place(key, n);
            let (after, _) = place(key, n + 1);
            if after != before {
                prop_assert_eq!(
                    after, n,
                    "key {} changed primary {} -> {} when peer {} joined; \
                     only moves onto the new peer are allowed",
                    key, before, after, n
                );
                moved += 1;
            }
        }
        // The newcomer should claim roughly 1/(n+1) of the keyspace — and
        // certainly not more than twice that, or the "minimal" in minimally
        // disruptive is gone.
        let cap = 2 * KEYS / (n as u64 + 1);
        prop_assert!(
            moved <= cap,
            "adding one peer to {n} moved {moved} of {KEYS} keys (cap {cap})"
        );
    }

    /// The removal direction of the same law: shrinking from `n + 1` back to
    /// `n` peers may only disturb keys whose primary was the departed peer
    /// (index `n`, the highest — peers are identified by index, so the last
    /// one is the one that leaves). Everyone else keeps their owner, which is
    /// what lets a cluster drop a peer without a thundering herd of
    /// snapshot ships.
    #[test]
    fn removing_a_peer_only_moves_its_own_keys(
        n in 2usize..=7,
        origin in 0u64..u64::MAX / 2,
    ) {
        for key in origin..origin + KEYS {
            let (before, _) = place(key, n + 1);
            let (after, _) = place(key, n);
            if before != n {
                prop_assert_eq!(
                    after, before,
                    "key {} moved {} -> {} although the departed peer {} \
                     never owned it",
                    key, before, after, n
                );
            }
        }
    }
}
