//! The experiment harness: regenerates the paper-style result series
//! recorded in EXPERIMENTS.md.
//!
//! Usage: `cargo run -p elm-bench --release --bin harness [-- EXPERIMENT]`
//! where EXPERIMENT ∈ {e4, e5, e6, e11, e14, all} (default `all`).

use std::time::{Duration, Instant};

use elm_bench::{
    deep_chain, diamond_graph, hop_graph, int_events, responsiveness_graph, tree_graph, CostModel,
};
use elm_runtime::{ConcurrentRuntime, Occurrence, PullRuntime, SyncRuntime, Value};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "e4" => e4_push_vs_pull(),
        "e5" => e5_responsiveness(),
        "e6" => e6_pipelining(),
        "e11" => e11_nochange(),
        "e14" => e14_async_overhead(),
        "all" => {
            e4_push_vs_pull();
            e5_responsiveness();
            e6_pipelining();
            e11_nochange();
            e14_async_overhead();
        }
        other => {
            eprintln!("unknown experiment `{other}` (use e4|e5|e6|e11|e14|all)");
            std::process::exit(1);
        }
    }
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

/// E4: push-based discrete signals vs pull-based sampling — computations
/// and time for one simulated second.
fn e4_push_vs_pull() {
    println!(
        "\n== E4: push-based vs pull-based recomputation (64-leaf sum tree, 60 Hz sampling) =="
    );
    println!(
        "{:>10} {:>16} {:>16} {:>14} {:>14}",
        "events/s", "push computs", "pull computs", "push time", "pull time"
    );
    for rate in [1usize, 10, 60, 240, 600] {
        let (graph, inputs) = tree_graph(64);
        let events: Vec<Occurrence> = (0..rate)
            .map(|k| Occurrence::input(inputs[k % 64], k as i64))
            .collect();

        let t0 = Instant::now();
        let mut push = SyncRuntime::new(&graph);
        for occ in events.clone() {
            push.feed(occ).unwrap();
        }
        push.run_to_quiescence();
        let push_time = t0.elapsed();
        let push_computs = push.stats().computations();

        let t0 = Instant::now();
        let mut pull = PullRuntime::new(&graph);
        let per_sample = rate.div_ceil(60).max(1);
        let mut fed = 0;
        for _ in 0..60 {
            for _ in 0..per_sample {
                if fed < rate {
                    let occ = &events[fed];
                    pull.set_input(occ.source, occ.payload.clone().unwrap())
                        .unwrap();
                    fed += 1;
                }
            }
            pull.sample();
        }
        let pull_time = t0.elapsed();
        let pull_computs = pull.stats().computations();

        println!(
            "{:>10} {:>16} {:>16} {:>14?} {:>14?}",
            rate, push_computs, pull_computs, push_time, pull_time
        );
    }
}

/// E5: mouse-burst latency with a long-running f, sync vs async.
fn e5_responsiveness() {
    println!("\n== E5: responsiveness — syncEg vs asyncEg (20 mouse events during f; f blocks) ==");
    println!(
        "{:>10} {:>18} {:>18} {:>10}",
        "f cost", "sync latency", "async latency", "ratio"
    );
    for f_ms in [1u64, 2, 4, 8, 16, 32, 64, 128] {
        let cost = Duration::from_millis(f_ms);
        let measure = |use_async: bool| {
            let runs: Vec<Duration> = (0..5)
                .map(|_| {
                    let (graph, mx, my) = responsiveness_graph(cost, CostModel::Block, use_async);
                    let mut rt = ConcurrentRuntime::start(&graph);
                    rt.feed(Occurrence::input(my, 1i64)).unwrap();
                    let t0 = Instant::now();
                    for k in 0..20 {
                        rt.feed(Occurrence::input(mx, k as i64)).unwrap();
                    }
                    let mut seen = 0;
                    while seen < 20 {
                        let ev = rt.next_output(Duration::from_secs(30)).expect("progress");
                        if ev.source == mx && ev.output.is_change() {
                            seen += 1;
                        }
                    }
                    let dt = t0.elapsed();
                    let _ = rt.drain();
                    rt.stop();
                    dt
                })
                .collect();
            median(runs)
        };
        let sync = measure(false);
        let asynch = measure(true);
        println!(
            "{:>8}ms {:>18?} {:>18?} {:>9.1}x",
            f_ms,
            sync,
            asynch,
            sync.as_secs_f64() / asynch.as_secs_f64().max(1e-9)
        );
    }
}

/// E6: pipelined vs non-pipelined wall time on deep chains of blocking
/// stages.
fn e6_pipelining() {
    println!("\n== E6: pipelined vs non-pipelined (8 events, 2 ms blocking stages) ==");
    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "depth", "non-pipelined", "pipelined", "speedup"
    );
    for depth in [1usize, 2, 4, 8, 16, 32] {
        let (graph, input) = deep_chain(depth, Duration::from_millis(2), CostModel::Block);
        let sync = median(
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    SyncRuntime::run_trace(&graph, int_events(input, 8)).unwrap();
                    t0.elapsed()
                })
                .collect(),
        );
        let conc = median(
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    ConcurrentRuntime::run_trace(&graph, int_events(input, 8)).unwrap();
                    t0.elapsed()
                })
                .collect(),
        );
        println!(
            "{:>8} {:>16?} {:>16?} {:>9.1}x",
            depth,
            sync,
            conc,
            sync.as_secs_f64() / conc.as_secs_f64().max(1e-9)
        );
    }
}

/// E11: NoChange memoization — work saved and foldp correctness.
fn e11_nochange() {
    println!("\n== E11: NoChange memoization ablation (diamond graph, 50 events on input a) ==");
    println!(
        "{:>16} {:>14} {:>12} {:>12} {:>14}",
        "mode", "computations", "memo skips", "time", "foldp count"
    );
    for memoize in [true, false] {
        let (graph, a, _b) = diamond_graph(Duration::from_micros(200), CostModel::Spin);
        let t0 = Instant::now();
        let mut rt = SyncRuntime::with_memoization(&graph, memoize);
        for occ in int_events(a, 50) {
            rt.feed(occ).unwrap();
        }
        rt.run_to_quiescence();
        let elapsed = t0.elapsed();
        // The foldp node counts fa's changes; find its value via the join
        // output list [fa, fb, countA].
        let count = rt
            .output_value()
            .as_list()
            .and_then(|l| l.get(2).cloned())
            .unwrap_or(Value::Unit);
        let snap = rt.stats().snapshot();
        println!(
            "{:>16} {:>14} {:>12} {:>12?} {:>14}",
            if memoize { "memoized" } else { "recompute-all" },
            snap.computations,
            snap.memo_skips,
            elapsed,
            count
        );
    }
    println!(
        "(correct foldp count is 50 — events on `a` only; the ablation double-counts nothing here"
    );
    println!(" but mis-counts once events hit `b`; see the mixed-trace row below)");
    for memoize in [true, false] {
        let (graph, a, b) = diamond_graph(Duration::from_micros(200), CostModel::Spin);
        let mut rt = SyncRuntime::with_memoization(&graph, memoize);
        for k in 0..50 {
            let occ = if k % 2 == 0 {
                Occurrence::input(a, k as i64)
            } else {
                Occurrence::input(b, k as i64)
            };
            rt.feed(occ).unwrap();
        }
        rt.run_to_quiescence();
        let count = rt
            .output_value()
            .as_list()
            .and_then(|l| l.get(2).cloned())
            .unwrap_or(Value::Unit);
        println!(
            "  mixed a/b trace, {:>14}: foldp count = {} (correct: 25)",
            if memoize { "memoized" } else { "recompute-all" },
            count
        );
    }
}

/// E14: per-event cost of an async boundary vs an inline node.
fn e14_async_overhead() {
    println!("\n== E14: async-boundary overhead (200 events, drained; per-event cost) ==");
    println!(
        "{:>10} {:>14} {:>14} {:>16}",
        "payload", "inline", "async hop", "overhead/event"
    );
    for payload in [8usize, 1024, 65536] {
        let measure = |use_async: bool| {
            let (graph, input, value) = hop_graph(use_async, payload);
            let runs: Vec<Duration> = (0..5)
                .map(|_| {
                    let mut rt = ConcurrentRuntime::start(&graph);
                    let t0 = Instant::now();
                    for _ in 0..200 {
                        rt.feed(Occurrence::input(input, value.clone())).unwrap();
                    }
                    rt.drain().unwrap();
                    let dt = t0.elapsed();
                    rt.stop();
                    dt
                })
                .collect();
            median(runs)
        };
        let inline = measure(false);
        let hop = measure(true);
        let overhead = hop.saturating_sub(inline) / 200;
        println!(
            "{:>9}B {:>14?} {:>14?} {:>16?}",
            payload, inline, hop, overhead
        );
    }
}
