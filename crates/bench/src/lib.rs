//! Shared workload builders for the benchmark harness.
//!
//! Each function builds one of the graphs the paper's evaluation claims
//! are stated over (DESIGN.md experiment index E4–E14). The Criterion
//! benches in `benches/` and the table-printing `harness` binary both use
//! these, so measured numbers and recorded tables come from identical
//! workloads.

#![warn(missing_docs)]

use std::time::Duration;

use elm_runtime::{GraphBuilder, NodeId, Occurrence, SignalGraph, Value};

/// How a node's computational cost is modelled.
///
/// The paper's long-running computations are of both kinds: CPU-bound
/// (`toFrench` translation, §3.3.2) and blocking I/O (the image fetch of
/// Example 3). On a single-core host only [`CostModel::Block`] lets
/// pipelining/asynchrony show wall-clock overlap, so the harness reports
/// both models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostModel {
    /// Busy-spin the CPU for the duration.
    Spin,
    /// Block the thread (sleep) for the duration — models I/O latency.
    Block,
}

impl CostModel {
    /// Pays `cost` under this model.
    pub fn pay(self, cost: Duration) {
        if cost.is_zero() {
            return;
        }
        match self {
            CostModel::Spin => busy_work(cost),
            CostModel::Block => std::thread::sleep(cost),
        }
    }
}

/// Spins for roughly `cost` wall-clock time (the "long-running
/// computation f" of §5 — arbitrary work, deliberately not a sleep so the
/// scheduler can't cheat).
pub fn busy_work(cost: Duration) {
    let start = std::time::Instant::now();
    let mut x = 0u64;
    while start.elapsed() < cost {
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        std::hint::black_box(x);
    }
}

/// The paper's §5 example, both variants:
///
/// ```text
/// syncEg  = lift2 (,) Mouse.x (lift f Mouse.y)
/// asyncEg = lift2 (,) Mouse.x (async (lift f Mouse.y))
/// ```
///
/// `f` busy-spins for `f_cost`. Returns the graph plus the `Mouse.x` and
/// `Mouse.y` input ids.
pub fn responsiveness_graph(
    f_cost: Duration,
    model: CostModel,
    use_async: bool,
) -> (SignalGraph, NodeId, NodeId) {
    let mut g = GraphBuilder::new();
    let mx = g.input("Mouse.x", 0i64);
    let my = g.input("Mouse.y", 0i64);
    let f = g.lift1(
        "f",
        move |v| {
            model.pay(f_cost);
            Value::Int(v.as_int().unwrap_or(0) * 2)
        },
        my,
    );
    let right = if use_async { g.async_source(f) } else { f };
    let pair = g.lift2("(,)", |x, fy| Value::pair(x.clone(), fy.clone()), mx, right);
    (g.finish(pair).expect("valid graph"), mx, my)
}

/// A linear chain of `depth` lift nodes, each costing `node_cost`, over a
/// single input — the "sufficiently deep signal graph" with which
/// "pipelined evaluation … has arbitrarily better performance" (§5).
pub fn deep_chain(depth: usize, node_cost: Duration, model: CostModel) -> (SignalGraph, NodeId) {
    let mut g = GraphBuilder::new();
    let input = g.input("i", 0i64);
    let mut cur = input;
    for k in 0..depth {
        cur = g.lift1(
            format!("stage{k}"),
            move |v| {
                model.pay(node_cost);
                Value::Int(v.as_int().unwrap_or(0) + 1)
            },
            cur,
        );
    }
    (g.finish(cur).expect("valid graph"), input)
}

/// A wide two-layer graph: `width` independent unary branches over one
/// input, joined by one n-ary lift — stresses fan-out/fan-in.
pub fn wide_graph(width: usize, node_cost: Duration, model: CostModel) -> (SignalGraph, NodeId) {
    let mut g = GraphBuilder::new();
    let input = g.input("i", 0i64);
    let branches: Vec<NodeId> = (0..width)
        .map(|k| {
            g.lift1(
                format!("branch{k}"),
                move |v| {
                    model.pay(node_cost);
                    Value::Int(v.as_int().unwrap_or(0) + 1)
                },
                input,
            )
        })
        .collect();
    let join = g.lift_n(
        "join",
        |vs| Value::Int(vs.iter().filter_map(Value::as_int).sum()),
        branches,
    );
    (g.finish(join).expect("valid graph"), input)
}

/// A binary-tree reduction over `leaves` inputs — the recomputation
/// workload for push-versus-pull (E4): an event touches one leaf; push
/// recomputes only the path to the root, pull recomputes everything.
pub fn tree_graph(leaves: usize) -> (SignalGraph, Vec<NodeId>) {
    assert!(leaves.is_power_of_two(), "leaves must be a power of two");
    let mut g = GraphBuilder::new();
    let inputs: Vec<NodeId> = (0..leaves)
        .map(|k| g.input(format!("leaf{k}"), 0i64))
        .collect();
    let mut layer = inputs.clone();
    let mut level = 0;
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .enumerate()
            .map(|(k, pair)| {
                g.lift2(
                    format!("sum{level}_{k}"),
                    |a, b| Value::Int(a.as_int().unwrap_or(0) + b.as_int().unwrap_or(0)),
                    pair[0],
                    pair[1],
                )
            })
            .collect();
        level += 1;
    }
    let root = layer[0];
    (g.finish(root).expect("valid graph"), inputs)
}

/// The §3.3.2 memoization diamond: two inputs, two costly branches, one
/// join, plus a `foldp` counting one branch's events (whose correctness
/// depends on `NoChange`).
pub fn diamond_graph(node_cost: Duration, model: CostModel) -> (SignalGraph, NodeId, NodeId) {
    let mut g = GraphBuilder::new();
    let a = g.input("a", 0i64);
    let b = g.input("b", 0i64);
    let fa = g.lift1(
        "fa",
        move |v| {
            model.pay(node_cost);
            Value::Int(v.as_int().unwrap_or(0) + 1)
        },
        a,
    );
    let fb = g.lift1(
        "fb",
        move |v| {
            model.pay(node_cost);
            Value::Int(v.as_int().unwrap_or(0) * 2)
        },
        b,
    );
    let count_a = g.foldp(
        "countA",
        |_v, acc| Value::Int(acc.as_int().unwrap_or(0) + 1),
        0i64,
        fa,
    );
    let join = g.lift3(
        "join",
        |x, y, c| Value::list([x.clone(), y.clone(), c.clone()]),
        fa,
        fb,
        count_a,
    );
    (g.finish(join).expect("valid graph"), a, b)
}

/// An async hop graph for E14: input → (optional async) → identity.
pub fn hop_graph(use_async: bool, payload_bytes: usize) -> (SignalGraph, NodeId, Value) {
    let mut g = GraphBuilder::new();
    let payload = Value::str("x".repeat(payload_bytes));
    let input = g.input("i", payload.clone());
    let mid = g.lift1("id1", |v| v.clone(), input);
    let hopped = if use_async { g.async_source(mid) } else { mid };
    let out = g.lift1("id2", |v| v.clone(), hopped);
    (g.finish(out).expect("valid graph"), input, payload)
}

/// A burst of `n` integer events on one input.
pub fn int_events(input: NodeId, n: usize) -> Vec<Occurrence> {
    (0..n).map(|k| Occurrence::input(input, k as i64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use elm_runtime::SyncRuntime;

    #[test]
    fn workload_graphs_build_and_run() {
        let (g, mx, _my) = responsiveness_graph(Duration::ZERO, CostModel::Spin, true);
        assert_eq!(g.async_sources().len(), 1);
        SyncRuntime::run_trace(&g, int_events(mx, 3)).unwrap();

        let (g, i) = deep_chain(16, Duration::ZERO, CostModel::Spin);
        assert_eq!(g.len(), 17);
        let outs = SyncRuntime::run_trace(&g, int_events(i, 2)).unwrap();
        assert_eq!(outs.len(), 2);

        let (g, i) = wide_graph(8, Duration::ZERO, CostModel::Spin);
        assert_eq!(g.len(), 10);
        SyncRuntime::run_trace(&g, int_events(i, 2)).unwrap();

        let (g, inputs) = tree_graph(8);
        assert_eq!(inputs.len(), 8);
        assert_eq!(g.len(), 8 + 7);

        let (g, a, _b) = diamond_graph(Duration::ZERO, CostModel::Spin);
        SyncRuntime::run_trace(&g, int_events(a, 2)).unwrap();

        let (g, i, payload) = hop_graph(true, 64);
        assert_eq!(g.async_sources().len(), 1);
        SyncRuntime::run_trace(&g, vec![Occurrence::input(i, payload)]).unwrap();
    }

    #[test]
    fn busy_work_spins_for_roughly_the_cost() {
        let t0 = std::time::Instant::now();
        busy_work(Duration::from_millis(5));
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }
}
