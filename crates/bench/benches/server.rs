//! Serving-layer scenario: throughput of the multi-session signal server
//! as the session count grows, and the cost of crash recovery.
//!
//! Each iteration opens `sessions` instances of a builtin program on an
//! in-process [`Server`], drives every session with its own
//! deterministic simulator trace from a driver thread (batched ingress),
//! and waits for all queues to drain. The interesting comparisons are
//! events/sec at 1 session (pure per-event cost) versus 8 sessions
//! (shard-parallel hosting) — the serving layer should scale with
//! available cores rather than serialize sessions — and the chaos
//! variant, which prices write-ahead journaling, periodic snapshots, and
//! supervised restart under injected crashes against the fault-free
//! baseline.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elm_environment::{FaultPlan, Simulator};
use elm_runtime::PlainValue;
use elm_server::{ProgramSpec, RestartPolicy, Server, ServerConfig, SessionConfig};

const EVENTS_PER_SESSION: usize = 2_000;
const BATCH: usize = 64;

fn drive(server: &Arc<Server>, program: &str, traces: &[elm_runtime::Trace]) {
    let mut sessions = Vec::with_capacity(traces.len());
    for _ in 0..traces.len() {
        sessions.push(
            server
                .open(ProgramSpec::Builtin(program), None, None, false)
                .unwrap()
                .session,
        );
    }
    let mut drivers = Vec::with_capacity(sessions.len());
    for (i, &session) in sessions.iter().enumerate() {
        let server = Arc::clone(server);
        let trace = traces[i].clone();
        drivers.push(thread::spawn(move || {
            let events: Vec<(String, PlainValue)> = trace
                .events
                .into_iter()
                .map(|e| (e.input, e.value))
                .collect();
            for chunk in events.chunks(BATCH) {
                server.batch(session, chunk).unwrap();
            }
            while server.query(session).unwrap().queue_len > 0 {
                thread::yield_now();
            }
        }));
    }
    for d in drivers {
        d.join().unwrap();
    }
    for session in sessions {
        server.close(session).unwrap();
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("server");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    for sessions in [1usize, 8] {
        let traces = Simulator::fan_out(42, sessions, EVENTS_PER_SESSION);
        let server = Arc::new(Server::start(ServerConfig::default()));
        group.throughput(Throughput::Elements((sessions * EVENTS_PER_SESSION) as u64));
        group.bench_with_input(
            BenchmarkId::new("hosted-dashboard", sessions),
            &sessions,
            |b, _| b.iter(|| drive(&server, "dashboard", &traces)),
        );
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    // Crash-recovery pricing: the same hosted load, but with seeded
    // runtime crashes forcing snapshot restores + journal replays.
    {
        let sessions = 8usize;
        let faults = FaultPlan {
            seed: 42,
            crash: 0.001,
            ..FaultPlan::disabled()
        };
        let traces = Simulator::fan_out_with_faults(42, sessions, EVENTS_PER_SESSION, &faults);
        let server = Arc::new(Server::start(ServerConfig {
            session: SessionConfig {
                snapshot_interval: 256,
                journal_segment: 256,
                restart: RestartPolicy {
                    max_restarts: 100_000,
                    ..RestartPolicy::default()
                },
                faults,
                ..SessionConfig::default()
            },
            ..ServerConfig::default()
        }));
        group.throughput(Throughput::Elements((sessions * EVENTS_PER_SESSION) as u64));
        group.bench_with_input(
            BenchmarkId::new("hosted-chaos", sessions),
            &sessions,
            |b, _| b.iter(|| drive(&server, "chaos", &traces)),
        );
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
