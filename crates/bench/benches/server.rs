//! Serving-layer scenario: throughput of the multi-session signal server
//! as the session count grows.
//!
//! Each iteration opens `sessions` instances of the `dashboard` builtin
//! on an in-process [`Server`], drives every session with its own
//! deterministic simulator trace from a driver thread (batched ingress),
//! and waits for all queues to drain. The interesting comparison is
//! events/sec at 1 session (pure per-event cost) versus 8 sessions
//! (shard-parallel hosting) — the serving layer should scale with
//! available cores rather than serialize sessions.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elm_environment::Simulator;
use elm_runtime::PlainValue;
use elm_server::{ProgramSpec, Server, ServerConfig};

const EVENTS_PER_SESSION: usize = 2_000;
const BATCH: usize = 64;

fn drive(server: &Arc<Server>, traces: &[elm_runtime::Trace]) {
    let mut sessions = Vec::with_capacity(traces.len());
    for _ in 0..traces.len() {
        sessions.push(
            server
                .open(ProgramSpec::Builtin("dashboard"), None, None)
                .unwrap()
                .session,
        );
    }
    let mut drivers = Vec::with_capacity(sessions.len());
    for (i, &session) in sessions.iter().enumerate() {
        let server = Arc::clone(server);
        let trace = traces[i].clone();
        drivers.push(thread::spawn(move || {
            let events: Vec<(String, PlainValue)> = trace
                .events
                .into_iter()
                .map(|e| (e.input, e.value))
                .collect();
            for chunk in events.chunks(BATCH) {
                server.batch(session, chunk).unwrap();
            }
            while server.query(session).unwrap().queue_len > 0 {
                thread::yield_now();
            }
        }));
    }
    for d in drivers {
        d.join().unwrap();
    }
    for session in sessions {
        server.close(session).unwrap();
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("server");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    for sessions in [1usize, 8] {
        let traces = Simulator::fan_out(42, sessions, EVENTS_PER_SESSION);
        let server = Arc::new(Server::start(ServerConfig::default()));
        group.throughput(Throughput::Elements((sessions * EVENTS_PER_SESSION) as u64));
        group.bench_with_input(
            BenchmarkId::new("hosted-dashboard", sessions),
            &sessions,
            |b, _| b.iter(|| drive(&server, &traces)),
        );
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
