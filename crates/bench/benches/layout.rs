//! Layout-engine performance (supports E1/E9): the purely functional
//! layout must be cheap enough to run per frame. Benches `flow` columns,
//! nested containers, and collages of transformed forms, through layout
//! and each renderer.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elm_graphics::render::{ascii, html, svg};
use elm_graphics::{
    collage, degrees, flow, layout, ngon, palette, solid, Direction, Element, Form, Position,
};

fn column(n: usize) -> Element {
    flow(
        Direction::Down,
        (0..n)
            .map(|k| Element::plain_text(format!("row {k}: some text content")))
            .collect(),
    )
}

fn nested(depth: usize) -> Element {
    let mut e = Element::plain_text("core");
    for k in 0..depth {
        e = Element::container(
            (100 + 10 * k) as u32,
            (40 + 10 * k) as u32,
            Position::MIDDLE,
            e,
        );
    }
    e
}

fn shapes(n: usize) -> Element {
    collage(
        800,
        800,
        (0..n)
            .map(|k| {
                Form::outlined(solid(palette::BLUE), ngon(5 + k % 5, 20.0))
                    .rotated(degrees(k as f64 * 7.0))
                    .shifted(
                        (k % 40) as f64 * 20.0 - 400.0,
                        (k / 40) as f64 * 20.0 - 400.0,
                    )
            })
            .collect(),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout");
    group.measurement_time(Duration::from_secs(2));

    for n in [10usize, 100, 1000] {
        let e = column(n);
        group.bench_with_input(BenchmarkId::new("flow-column", n), &n, |b, _| {
            b.iter(|| layout(&e))
        });
    }
    for d in [4usize, 32] {
        let e = nested(d);
        group.bench_with_input(BenchmarkId::new("nested-containers", d), &d, |b, _| {
            b.iter(|| layout(&e))
        });
    }
    for n in [10usize, 200] {
        let e = shapes(n);
        group.bench_with_input(BenchmarkId::new("collage-forms", n), &n, |b, _| {
            b.iter(|| layout(&e))
        });
    }

    let e = column(200);
    let dl = layout(&e);
    group.bench_function("render-html-200", |b| b.iter(|| html::to_html_fragment(&e)));
    group.bench_function("render-ascii-200", |b| b.iter(|| ascii::to_ascii(&dl)));
    let sh = shapes(100);
    let sdl = layout(&sh);
    group.bench_function("render-svg-100-forms", |b| b.iter(|| svg::to_svg(&sdl)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
