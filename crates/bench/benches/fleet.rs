//! Scenario-fleet pricing: what does hosting a *diverse* population of
//! synthesized programs cost versus the single hand-written dashboard?
//!
//! Three measurements: (1) raw generator throughput — scenarios
//! synthesized per second, since `loadgen --fleet` synthesizes its whole
//! population up front; (2) the local governed-replay oracle that every
//! property check and every shrink attempt pays for; (3) hosted-fleet
//! throughput — 32 distinct synthesized programs (mixed lift/foldp/
//! async/merge shapes) opened as real sessions and driven concurrently,
//! the closest Criterion analogue of the `--fleet` verdict run.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elm_runtime::{EventLimits, PlainValue};
use elm_server::{ProgramSpec, Server, ServerConfig};
use elm_synth::{run_local, GenConfig, Generator, Scenario};

const EVENTS_PER_PROGRAM: usize = 500;
const BATCH: usize = 64;

fn population(programs: usize) -> Vec<Scenario> {
    let g = Generator::new(GenConfig::default());
    (0..programs)
        .map(|i| g.scenario(1_000 + i as u64, EVENTS_PER_PROGRAM))
        .collect()
}

fn drive(server: &Arc<Server>, fleet: &[Scenario]) {
    let mut sessions = Vec::with_capacity(fleet.len());
    for s in fleet {
        sessions.push(
            server
                .open(ProgramSpec::Source(&s.source), None, None, false)
                .unwrap()
                .session,
        );
    }
    let mut drivers = Vec::with_capacity(sessions.len());
    for (i, &session) in sessions.iter().enumerate() {
        let server = Arc::clone(server);
        let events: Vec<(String, PlainValue)> = fleet[i]
            .trace
            .events
            .iter()
            .map(|e| (e.input.clone(), e.value.clone()))
            .collect();
        drivers.push(thread::spawn(move || {
            for chunk in events.chunks(BATCH) {
                server.batch(session, chunk).unwrap();
            }
            while server.query(session).unwrap().queue_len > 0 {
                thread::yield_now();
            }
        }));
    }
    for d in drivers {
        d.join().unwrap();
    }
    for session in sessions {
        server.close(session).unwrap();
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    // Generator throughput: IR growth + pruning + rendering + trace.
    group.throughput(Throughput::Elements(64));
    group.bench_function("synthesize-64", |b| {
        b.iter(|| population(64));
    });

    // The shrinker's inner loop: compile + governed synchronous replay.
    let oracle = population(1).pop().unwrap();
    group.throughput(Throughput::Elements(EVENTS_PER_PROGRAM as u64));
    group.bench_function("local-oracle", |b| {
        b.iter(|| run_local(&oracle.source, &oracle.trace, EventLimits::default()).unwrap());
    });

    // Hosted diversity: 32 distinct shapes driven concurrently.
    let programs = 32usize;
    let fleet = population(programs);
    let server = Arc::new(Server::start(ServerConfig::default()));
    group.throughput(Throughput::Elements((programs * EVENTS_PER_PROGRAM) as u64));
    group.bench_with_input(
        BenchmarkId::new("hosted-fleet", programs),
        &programs,
        |b, _| b.iter(|| drive(&server, &fleet)),
    );
    if let Ok(s) = Arc::try_unwrap(server) {
        s.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
