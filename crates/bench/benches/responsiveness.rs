//! E5 — §5's `syncEg` vs `asyncEg`: "it is easy to write programs such
//! that Elm provides arbitrarily better responsiveness over synchronous
//! FRP."
//!
//! Measures the wall-clock time for a burst of `Mouse.x` updates to reach
//! the display while a long-running `f` (cost swept over a range) is
//! processing a `Mouse.y` event. Synchronous FRP must finish `f` first;
//! `async` lets the mouse updates jump ahead. `f` blocks (models the
//! paper's image fetch); both variants run on the same concurrent
//! pipelined runtime — only the `async` annotation differs.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elm_bench::{responsiveness_graph, CostModel};
use elm_runtime::{ConcurrentRuntime, Occurrence};

const MOUSE_EVENTS: usize = 20;

/// Time until all mouse updates have been displayed, with `f` running.
fn mouse_burst_latency(f_cost: Duration, use_async: bool) -> Duration {
    let (graph, mx, my) = responsiveness_graph(f_cost, CostModel::Block, use_async);
    let mut rt = ConcurrentRuntime::start(&graph);
    // Trigger the long computation…
    rt.feed(Occurrence::input(my, 1i64)).unwrap();
    // …then the mouse burst, and wait for the burst (only) to display.
    let t0 = Instant::now();
    for k in 0..MOUSE_EVENTS {
        rt.feed(Occurrence::input(mx, k as i64)).unwrap();
    }
    let mut seen = 0;
    while seen < MOUSE_EVENTS {
        let ev = rt
            .next_output(Duration::from_secs(30))
            .expect("runtime makes progress");
        if ev.source == mx && ev.output.is_change() {
            seen += 1;
        }
    }
    let elapsed = t0.elapsed();
    let _ = rt.drain();
    rt.stop();
    elapsed
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("responsiveness");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    for f_ms in [1u64, 4, 16, 64] {
        let f_cost = Duration::from_millis(f_ms);
        group.bench_with_input(BenchmarkId::new("sync", f_ms), &f_cost, |b, &cost| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += mouse_burst_latency(cost, false);
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("async", f_ms), &f_cost, |b, &cost| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += mouse_burst_latency(cost, true);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
