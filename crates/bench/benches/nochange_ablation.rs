//! E11 — §3.3.2: "The noChange values are a form of memoization —
//! allowing nodes to avoid needless recomputation."
//!
//! Ablation: the same diamond graph (two costly branches, a join, and a
//! `foldp`) driven by events that touch only one input, with `NoChange`
//! propagation enabled vs disabled. Without it, every node recomputes on
//! every event — and the `foldp` is additionally *wrong* (it counts
//! unrelated events), which the harness binary demonstrates.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elm_bench::{diamond_graph, int_events, CostModel};
use elm_runtime::SyncRuntime;

const EVENTS: usize = 50;
const NODE_COST: Duration = Duration::from_micros(200);

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("nochange_ablation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));

    let (graph, a, _b) = diamond_graph(NODE_COST, CostModel::Spin);
    // All events hit input `a`; branch fb should never recompute.
    for memoize in [true, false] {
        let label = if memoize { "memoized" } else { "recompute-all" };
        group.bench_with_input(BenchmarkId::new(label, EVENTS), &memoize, |bench, &m| {
            bench.iter(|| {
                let mut rt = SyncRuntime::with_memoization(&graph, m);
                for occ in int_events(a, EVENTS) {
                    rt.feed(occ).unwrap();
                }
                rt.run_to_quiescence();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
