//! E12 — §4.3: "Functions `run` and `foldp` are equivalent in expressive
//! power." The equivalence is property-tested in `elm-automaton`; this
//! bench quantifies the *cost* of each encoding (the continuation-based
//! Automaton allocates a fresh closure per step; the primitive `foldp`
//! does not), plus arrow-composition overhead.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elm_automaton::{combine, foldp_via_automaton, Automaton};
use elm_signals::{Engine, SignalNetwork};

const EVENTS: usize = 500;

fn run_signal_program(use_automaton: bool) -> i64 {
    let mut net = SignalNetwork::new();
    let (input, h) = net.input::<i64>("input", 0);
    let sig = if use_automaton {
        foldp_via_automaton(|x: &i64, acc: &i64| acc + x, 0, &input)
    } else {
        input.foldp(0i64, |x, acc| acc + x)
    };
    let prog = net.program(&sig).unwrap();
    let mut run = prog.start(Engine::Synchronous);
    for k in 0..EVENTS {
        run.send(&h, k as i64).unwrap();
    }
    *run.drain_changes().unwrap().last().unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("automaton");
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(EVENTS as u64));

    group.bench_function("foldp-primitive", |b| b.iter(|| run_signal_program(false)));
    group.bench_function("run-init-encoding", |b| b.iter(|| run_signal_program(true)));

    // Raw stepping, no signal network: composition depth sweep.
    for depth in [1usize, 8, 32] {
        let mut auto = Automaton::pure(|x: &i64| x + 1);
        for _ in 1..depth {
            auto = auto.then(Automaton::pure(|x: &i64| x + 1));
        }
        let inputs: Vec<i64> = (0..EVENTS as i64).collect();
        group.bench_with_input(BenchmarkId::new("compose-chain", depth), &depth, |b, _| {
            b.iter(|| auto.run_iter(inputs.iter()))
        });
    }

    // Dynamic collections (the AFRP use case).
    for width in [10usize, 100] {
        let autos: Vec<Automaton<i64, i64>> = (0..width)
            .map(|_| Automaton::state(0i64, |x, acc| acc + x))
            .collect();
        let all = combine(autos);
        let inputs: Vec<i64> = (0..100).collect();
        group.bench_with_input(BenchmarkId::new("combine", width), &width, |b, _| {
            b.iter(|| all.run_iter(inputs.iter()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
