//! E14 — §5: "We investigated using Web Workers to implement `async`, but
//! found their overhead to be too high compared with simpler approaches."
//!
//! The analogue in this runtime: an `async` boundary costs a buffer hop, a
//! dispatcher round-trip, and an extra thread handoff per value. This
//! bench quantifies that per-event overhead against an inline lift node,
//! across payload sizes — the number that decides whether `async` should
//! wrap cheap computations (it should not; it is for long-running ones).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elm_bench::hop_graph;
use elm_runtime::{ConcurrentRuntime, Occurrence};

const EVENTS: usize = 200;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_overhead");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));

    for payload in [8usize, 1024, 65536] {
        group.throughput(Throughput::Elements(EVENTS as u64));
        for use_async in [false, true] {
            let label = if use_async { "async-hop" } else { "inline" };
            let (graph, input, value) = hop_graph(use_async, payload);
            group.bench_with_input(BenchmarkId::new(label, payload), &payload, |b, _| {
                b.iter(|| {
                    let mut rt = ConcurrentRuntime::start(&graph);
                    for _ in 0..EVENTS {
                        rt.feed(Occurrence::input(input, value.clone())).unwrap();
                    }
                    rt.drain().unwrap();
                    rt.stop();
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
