//! E6 — §5: "it is possible to write programs such that the pipelined
//! evaluation of signals has arbitrarily better performance than
//! non-pipelined execution by ensuring that the signal graph of the
//! program is sufficiently deep."
//!
//! A chain of `depth` stages each blocking for a fixed latency (e.g.
//! remote calls) processes a burst of events. Non-pipelined execution
//! costs ≈ `events × depth × latency`; the pipelined thread-per-node
//! runtime overlaps stages for ≈ `(events + depth) × latency`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elm_bench::{deep_chain, int_events, CostModel};
use elm_runtime::{ConcurrentRuntime, SyncRuntime};

const EVENTS: usize = 8;
const STAGE_LATENCY: Duration = Duration::from_millis(2);

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipelining");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(200));

    for depth in [1usize, 4, 16] {
        let (graph, input) = deep_chain(depth, STAGE_LATENCY, CostModel::Block);
        group.bench_with_input(BenchmarkId::new("non-pipelined", depth), &depth, |b, _| {
            b.iter(|| {
                SyncRuntime::run_trace(&graph, int_events(input, EVENTS)).unwrap();
            })
        });
        group.bench_with_input(BenchmarkId::new("pipelined", depth), &depth, |b, _| {
            b.iter(|| {
                ConcurrentRuntime::run_trace(&graph, int_events(input, EVENTS)).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
