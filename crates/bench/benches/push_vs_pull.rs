//! E4 — §1/§2: "many signals change discretely and infrequently, and so
//! constant sampling leads to unnecessary recomputation. By contrast, Elm
//! assumes that all signals are discrete … This reduces needless
//! recomputation."
//!
//! Workload: a 64-leaf summation tree. A simulated second of activity
//! delivers `rate` input events. The push-based runtime does work only on
//! events (and only along changed paths); the pull-based baseline
//! recomputes the whole graph at every 60 Hz sample regardless.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elm_bench::tree_graph;
use elm_runtime::{Occurrence, PullRuntime, SyncRuntime};

const LEAVES: usize = 64;
const SAMPLES_PER_SECOND: usize = 60;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("push_vs_pull");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));

    for rate in [1usize, 10, 60, 600] {
        let (graph, inputs) = tree_graph(LEAVES);
        // `rate` events spread round-robin over the leaves.
        let events: Vec<Occurrence> = (0..rate)
            .map(|k| Occurrence::input(inputs[k % LEAVES], k as i64))
            .collect();

        group.bench_with_input(BenchmarkId::new("push", rate), &rate, |b, _| {
            b.iter(|| {
                SyncRuntime::run_trace(&graph, events.clone()).unwrap();
            })
        });
        group.bench_with_input(BenchmarkId::new("pull-60hz", rate), &rate, |b, _| {
            b.iter(|| {
                let mut rt = PullRuntime::new(&graph);
                // Interleave input updates with the fixed sampling clock.
                let per_sample = rate.div_ceil(SAMPLES_PER_SECOND).max(1);
                let mut fed = 0;
                for _ in 0..SAMPLES_PER_SECOND {
                    for _ in 0..per_sample {
                        if fed < rate {
                            let occ = &events[fed];
                            rt.set_input(occ.source, occ.payload.clone().unwrap())
                                .unwrap();
                            fed += 1;
                        }
                    }
                    rt.sample();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
