//! Interpreter ablation: the faithful Fig. 6 small-step machine
//! (substitution-based, the specification) vs the environment-based
//! big-step evaluator that signal nodes actually run on each event.
//! Quantifies why stage two does not interpret by literal β-reduction.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elm_runtime::Value;
use felm::ast::Expr;
use felm::parser::parse_expr;
use felm::translate::{apply_function, apply_function_small_step};

/// A curried two-argument function with `depth` nested lets and calls.
fn workload(depth: usize) -> Expr {
    let mut body = String::from("x + y");
    for k in 0..depth {
        body = format!("let t{k} = ({body}) * 2 in t{k} - {k}");
    }
    parse_expr(&format!("\\x y -> {body}")).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    group.measurement_time(Duration::from_secs(2));

    for depth in [1usize, 8, 32] {
        let f = workload(depth);
        let args = [Value::Int(21), Value::Int(2)];
        // Both paths must agree before we time them.
        assert_eq!(
            apply_function(&f, &args),
            apply_function_small_step(&f, &args)
        );
        group.bench_with_input(BenchmarkId::new("big-step", depth), &depth, |b, _| {
            b.iter(|| apply_function(&f, &args))
        });
        group.bench_with_input(
            BenchmarkId::new("small-step-spec", depth),
            &depth,
            |b, _| b.iter(|| apply_function_small_step(&f, &args)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
