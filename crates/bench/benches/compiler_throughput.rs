//! E13 — compiler practicality (§5: the 2,700-line Haskell compiler built
//! the Elm website and ~200 examples). Measures front-end and full
//! compilation throughput on generated program suites of growing size.

use std::fmt::Write as _;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use felm::env::InputEnv;

/// Generates a program with `defs` chained definitions.
fn program(defs: usize) -> String {
    let mut src = String::new();
    let _ = writeln!(src, "base = lift (\\x -> x + 1) Mouse.x");
    for k in 0..defs {
        let prev = if k == 0 {
            "base".to_string()
        } else {
            format!("step{}", k - 1)
        };
        let _ = writeln!(src, "step{k} = lift (\\x -> x * 2 + {k}) {prev}");
    }
    let last = if defs == 0 {
        "base".to_string()
    } else {
        format!("step{}", defs - 1)
    };
    let _ = writeln!(
        src,
        "main = lift2 (\\a b -> (a, b)) {last} (foldp (\\k c -> c + 1) 0 Keyboard.lastPressed)"
    );
    src
}

fn bench(c: &mut Criterion) {
    let env = InputEnv::standard();
    let mut group = c.benchmark_group("compiler");
    group.measurement_time(Duration::from_secs(2));

    for defs in [5usize, 25, 100] {
        let src = program(defs);
        group.throughput(Throughput::Bytes(src.len() as u64));

        group.bench_with_input(BenchmarkId::new("parse", defs), &src, |b, s| {
            b.iter(|| felm::parser::parse_program(s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("typecheck", defs), &src, |b, s| {
            let e = felm::parser::parse_program(s).unwrap().to_expr().unwrap();
            b.iter(|| felm::infer::infer_type(&env, &e).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("front-end", defs), &src, |b, s| {
            b.iter(|| felm::pipeline::compile_source(s, &env).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("to-js", defs), &src, |b, s| {
            b.iter(|| elm_compiler::compile_to_js(s, &env).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
