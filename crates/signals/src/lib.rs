//! Typed asynchronous FRP signals — the primary public API of the
//! PLDI 2013 Elm-paper reproduction.
//!
//! This crate is the Rust analogue of Elm's `Signal` library and of the
//! paper's Elm-in-Haskell embedding (§5): a statically typed layer over the
//! concurrent pipelined signal runtime in `elm-runtime`. It provides:
//!
//! * [`Signal<T>`] with the paper's combinators — `map` (`lift`),
//!   [`lift2`]/[`lift3`]/[`lift4`], [`Signal::foldp`], and the headline
//!   [`Signal::async_`] for marking subgraphs whose long-running
//!   computation must not block the rest of the GUI (§3.3.2);
//! * the §4.2 library combinators: [`Signal::merge`],
//!   [`Signal::sample_on`], [`Signal::keep_if`], [`Signal::drop_repeats`],
//!   [`Signal::count`], …;
//! * [`SignalNetwork`] / [`Program`] / [`Running`] for building programs
//!   and running them on the concurrent (pipelined) or synchronous
//!   (deterministic) engine.
//!
//! # Example: the paper's `asyncEg` (§5)
//!
//! ```
//! use elm_signals::{lift2, Engine, SignalNetwork};
//!
//! let mut net = SignalNetwork::new();
//! let (mouse_x, hx) = net.input::<i64>("Mouse.x", 0);
//! let (mouse_y, hy) = net.input::<i64>("Mouse.y", 0);
//!
//! // f is potentially long-running; async keeps the GUI responsive.
//! let f_y = mouse_y.map(|y| y * y).async_();
//! let main = lift2(|x, fy| (x, fy), &mouse_x, &f_y);
//!
//! let prog = net.program(&main).unwrap();
//! let mut run = prog.start(Engine::Concurrent);
//! run.send(&hy, 3).unwrap();
//! run.send(&hx, 10).unwrap();
//! let outs = run.drain_changes().unwrap();
//! assert!(outs.contains(&(10, 9)));
//! run.stop();
//! ```

#![warn(missing_docs)]

mod convert;
mod network;
mod program;

pub use convert::{Opaque, SignalValue};
pub use network::{combine, lift2, lift3, lift4, merges, zip, InputHandle, Signal, SignalNetwork};
pub use program::{Engine, Program, Running};

// Re-export the runtime layer for users who need graph-level access.
pub use elm_runtime as runtime;
