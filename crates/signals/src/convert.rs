//! Conversions between Rust types and the runtime's dynamic [`Value`].
//!
//! The signal runtime is dynamically typed (like its CML model in the
//! paper); this module recovers static types for the `Signal<T>` embedding.
//! [`SignalValue`] plays the role of the paper's `⟦·⟧V` value translation,
//! in both directions.

use std::sync::Arc;

use elm_runtime::Value;

/// Types that can travel on signal-graph edges.
///
/// Implementations must round-trip: `T::from_value(&v.into_value())`
/// reproduces the original (up to `Clone`). Primitive Elm-ish types have
/// structural encodings; arbitrary Rust types can be carried opaquely via
/// [`Opaque`].
pub trait SignalValue: Clone + Send + Sync + 'static {
    /// Encodes into a dynamic value.
    fn into_value(self) -> Value;
    /// Decodes from a dynamic value. Returns `None` on shape mismatch.
    fn from_value(v: &Value) -> Option<Self>;

    /// Decodes, panicking on mismatch — used internally where the type
    /// system already guarantees the shape.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not have this type's encoding.
    fn from_value_unwrap(v: &Value) -> Self {
        Self::from_value(v).unwrap_or_else(|| {
            panic!(
                "signal value shape mismatch: expected {}, got {} ({v:?})",
                std::any::type_name::<Self>(),
                v.kind()
            )
        })
    }
}

impl SignalValue for Value {
    fn into_value(self) -> Value {
        self
    }

    fn from_value(v: &Value) -> Option<Self> {
        Some(v.clone())
    }
}

impl SignalValue for () {
    fn into_value(self) -> Value {
        Value::Unit
    }

    fn from_value(v: &Value) -> Option<Self> {
        matches!(v, Value::Unit).then_some(())
    }
}

impl SignalValue for i64 {
    fn into_value(self) -> Value {
        Value::Int(self)
    }

    fn from_value(v: &Value) -> Option<Self> {
        v.as_int()
    }
}

impl SignalValue for f64 {
    fn into_value(self) -> Value {
        Value::Float(self)
    }

    fn from_value(v: &Value) -> Option<Self> {
        v.as_float()
    }
}

impl SignalValue for bool {
    fn into_value(self) -> Value {
        Value::Bool(self)
    }

    fn from_value(v: &Value) -> Option<Self> {
        v.as_bool()
    }
}

impl SignalValue for String {
    fn into_value(self) -> Value {
        Value::from(self)
    }

    fn from_value(v: &Value) -> Option<Self> {
        v.as_str().map(str::to_string)
    }
}

impl SignalValue for Arc<str> {
    fn into_value(self) -> Value {
        Value::Str(self)
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Str(s) => Some(s.clone()),
            _ => None,
        }
    }
}

impl<A: SignalValue, B: SignalValue> SignalValue for (A, B) {
    fn into_value(self) -> Value {
        Value::pair(self.0.into_value(), self.1.into_value())
    }

    fn from_value(v: &Value) -> Option<Self> {
        let (a, b) = v.as_pair()?;
        Some((A::from_value(a)?, B::from_value(b)?))
    }
}

impl<A: SignalValue, B: SignalValue, C: SignalValue> SignalValue for (A, B, C) {
    fn into_value(self) -> Value {
        // Right-nested pairs, matching FElm's encoding of wider tuples.
        Value::pair(
            self.0.into_value(),
            Value::pair(self.1.into_value(), self.2.into_value()),
        )
    }

    fn from_value(v: &Value) -> Option<Self> {
        let (a, rest) = v.as_pair()?;
        let (b, c) = rest.as_pair()?;
        Some((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?))
    }
}

impl<T: SignalValue> SignalValue for Vec<T> {
    fn into_value(self) -> Value {
        Value::list(self.into_iter().map(SignalValue::into_value))
    }

    fn from_value(v: &Value) -> Option<Self> {
        v.as_list()?.iter().map(T::from_value).collect()
    }
}

impl<T: SignalValue> SignalValue for Option<T> {
    /// `None` encodes as unit, `Some(x)` as a 1-element list — mirroring
    /// Elm's `Maybe` as an algebraic datatype without adding a variant to
    /// the runtime value.
    fn into_value(self) -> Value {
        match self {
            None => Value::Unit,
            Some(x) => Value::list([x.into_value()]),
        }
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Unit => Some(None),
            Value::List(items) if items.len() == 1 => Some(Some(T::from_value(&items[0])?)),
            _ => None,
        }
    }
}

/// Carries an arbitrary Rust value opaquely through the signal graph.
///
/// ```
/// use elm_signals::{Opaque, SignalValue};
///
/// #[derive(Clone, Debug, PartialEq)]
/// struct Sprite { x: i32 }
///
/// let v = Opaque(Sprite { x: 3 }).into_value();
/// let back: Opaque<Sprite> = Opaque::from_value(&v).unwrap();
/// assert_eq!(back.0, Sprite { x: 3 });
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Opaque<T>(pub T);

impl<T: Clone + Send + Sync + 'static> SignalValue for Opaque<T> {
    fn into_value(self) -> Value {
        Value::ext(self.0)
    }

    fn from_value(v: &Value) -> Option<Self> {
        v.downcast_ext::<T>().cloned().map(Opaque)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: SignalValue + PartialEq + std::fmt::Debug>(x: T) {
        let v = x.clone().into_value();
        assert_eq!(T::from_value(&v), Some(x));
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(());
        round_trip(42i64);
        round_trip(2.5f64);
        round_trip(true);
        round_trip("hello".to_string());
        round_trip(Arc::<str>::from("shared"));
    }

    #[test]
    fn compounds_round_trip() {
        round_trip((1i64, "x".to_string()));
        round_trip((1i64, 2.0f64, false));
        round_trip(vec![1i64, 2, 3]);
        round_trip(Some(7i64));
        round_trip(Option::<i64>::None);
        round_trip(vec![(1i64, true), (2i64, false)]);
    }

    #[test]
    fn mismatched_shapes_decode_to_none() {
        assert_eq!(i64::from_value(&Value::str("no")), None);
        assert_eq!(<(i64, i64)>::from_value(&Value::Int(1)), None);
        assert_eq!(
            Vec::<i64>::from_value(&Value::list([Value::Bool(true)])),
            None
        );
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn unwrap_panics_with_context() {
        i64::from_value_unwrap(&Value::Unit);
    }
}
