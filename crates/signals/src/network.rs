//! Building typed signal networks.
//!
//! A [`SignalNetwork`] is the construction scope of one reactive program:
//! Elm's top level, or the first evaluation stage of FElm (which reduces a
//! program to a signal term — here, you build the signal term directly with
//! typed combinators). Finish with [`SignalNetwork::program`], naming the
//! `main` signal, then execute on any scheduler via
//! [`crate::program::Program`].
//!
//! The combinators mirror the paper: `lift`/`lift2`/`lift3` (§2),
//! `foldp` (§3.1), `async` (§3.3.2), and the full-language library signals
//! of §4.2 (`merge`, `sampleOn`, `keepIf`, `dropRepeats`, `count`, …).

use std::cell::RefCell;
use std::marker::PhantomData;
use std::rc::Rc;

use elm_runtime::{GraphBuilder, GraphError, NodeId, Value};

use crate::convert::SignalValue;
use crate::program::Program;

type SharedBuilder = Rc<RefCell<GraphBuilder>>;

/// The construction scope for one reactive program.
///
/// ```
/// use elm_signals::SignalNetwork;
///
/// let mut net = SignalNetwork::new();
/// let (mouse, mouse_in) = net.input::<(i64, i64)>("Mouse.position", (0, 0));
/// let shown = mouse.map(|(x, y)| format!("({x}, {y})"));
/// let program = net.program(&shown).unwrap();
/// # let _ = (program, mouse_in);
/// ```
pub struct SignalNetwork {
    builder: SharedBuilder,
}

impl Default for SignalNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl SignalNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        SignalNetwork {
            builder: Rc::new(RefCell::new(GraphBuilder::new())),
        }
    }

    /// Declares an input signal with its required default value (§3.1),
    /// returning the signal and a typed handle for feeding events to it.
    pub fn input<T: SignalValue>(
        &mut self,
        name: impl Into<String>,
        default: T,
    ) -> (Signal<T>, InputHandle<T>) {
        let name = name.into();
        let id = self
            .builder
            .borrow_mut()
            .input(name.clone(), default.into_value());
        (
            Signal {
                id,
                net: self.builder.clone(),
                _marker: PhantomData,
            },
            InputHandle {
                id,
                name,
                _marker: PhantomData,
            },
        )
    }

    /// A signal that always holds `value` and never fires — Elm's
    /// `constant`. Implemented as an input that is never fed.
    pub fn constant<T: SignalValue>(&mut self, value: T) -> Signal<T> {
        let (s, _handle) = self.input("constant", value);
        s
    }

    /// Finalizes the network with `main` as the displayed signal.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the graph is malformed (cannot happen for
    /// graphs built purely through this API).
    pub fn program<T: SignalValue>(self, main: &Signal<T>) -> Result<Program<T>, GraphError> {
        let builder = Rc::try_unwrap(self.builder)
            .map(RefCell::into_inner)
            .unwrap_or_else(|rc| rc.borrow().clone());
        let graph = builder.finish(main.id)?;
        Ok(Program::from_graph(graph))
    }
}

/// A typed, time-varying value: Elm's `Signal a` (paper §2).
///
/// `Signal<T>` is a *description* — a node in a signal graph under
/// construction. Nothing computes until the network is compiled into a
/// [`Program`] and run on a scheduler.
pub struct Signal<T> {
    id: NodeId,
    net: SharedBuilder,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for Signal<T> {
    fn clone(&self) -> Self {
        Signal {
            id: self.id,
            net: self.net.clone(),
            _marker: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for Signal<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signal<{}>({})", std::any::type_name::<T>(), self.id)
    }
}

/// A typed handle for delivering external events to an input signal.
#[derive(Clone, Debug)]
pub struct InputHandle<T> {
    pub(crate) id: NodeId,
    pub(crate) name: String,
    _marker: PhantomData<fn(T)>,
}

impl<T> InputHandle<T> {
    /// The environment name this input was declared with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying graph node.
    pub fn node_id(&self) -> NodeId {
        self.id
    }
}

impl<T: SignalValue> Signal<T> {
    /// The underlying graph node (for interop with `elm-runtime`).
    pub fn node_id(&self) -> NodeId {
        self.id
    }

    fn derive<U: SignalValue>(&self, id: NodeId) -> Signal<U> {
        Signal {
            id,
            net: self.net.clone(),
            _marker: PhantomData,
        }
    }

    /// `lift : (a -> b) -> Signal a -> Signal b` (paper §2, Example 2).
    pub fn map<U: SignalValue>(&self, f: impl Fn(T) -> U + Send + Sync + 'static) -> Signal<U> {
        let id = self.net.borrow_mut().lift1(
            "lift",
            move |v| f(T::from_value_unwrap(v)).into_value(),
            self.id,
        );
        self.derive(id)
    }

    /// `foldp : (a -> b -> b) -> b -> Signal a -> Signal b` (paper §3.1):
    /// fold from the past. The fold steps **only** when this signal fires —
    /// the memoization-critical property of §3.3.2.
    pub fn foldp<A: SignalValue>(
        &self,
        init: A,
        f: impl Fn(T, A) -> A + Send + Sync + 'static,
    ) -> Signal<A> {
        let id = self.net.borrow_mut().foldp(
            "foldp",
            move |new, acc| f(T::from_value_unwrap(new), A::from_value_unwrap(acc)).into_value(),
            init.into_value(),
            self.id,
        );
        self.derive(id)
    }

    /// `async : Signal a -> Signal a` (paper §3.3.2) — the paper's key
    /// novelty. Marks this signal's subgraph as a *secondary* subgraph
    /// whose updates re-enter the program as fresh events, decoupled from
    /// the global event order, so long-running computation upstream cannot
    /// delay the rest of the program.
    pub fn async_(&self) -> Signal<T> {
        let id = self.net.borrow_mut().async_source(self.id);
        self.derive(id)
    }

    /// `merge : Signal a -> Signal a -> Signal a`, left-biased on
    /// simultaneous events (§4.2 library).
    pub fn merge(&self, other: &Signal<T>) -> Signal<T> {
        let id = self.net.borrow_mut().merge(self.id, other.id);
        self.derive(id)
    }

    /// `sampleOn : Signal a -> Signal b -> Signal b`: the value of `data`
    /// sampled whenever `self` fires.
    pub fn sample_on<U: SignalValue>(&self, data: &Signal<U>) -> Signal<U> {
        let id = self.net.borrow_mut().sample_on(self.id, data.id);
        self.derive(id)
    }

    /// `keepIf : (a -> Bool) -> a -> Signal a -> Signal a`.
    pub fn keep_if(&self, pred: impl Fn(&T) -> bool + Send + Sync + 'static, base: T) -> Signal<T> {
        let id = self.net.borrow_mut().keep_if(
            move |v| pred(&T::from_value_unwrap(v)),
            base.into_value(),
            self.id,
        );
        self.derive(id)
    }

    /// `dropIf : (a -> Bool) -> a -> Signal a -> Signal a`.
    pub fn drop_if(&self, pred: impl Fn(&T) -> bool + Send + Sync + 'static, base: T) -> Signal<T> {
        let id = self.net.borrow_mut().drop_if(
            move |v| pred(&T::from_value_unwrap(v)),
            base.into_value(),
            self.id,
        );
        self.derive(id)
    }

    /// `keepWhen : Signal Bool -> a -> Signal a -> Signal a`: passes this
    /// signal's events only while `gate` is true.
    pub fn keep_when(&self, gate: &Signal<bool>, base: T) -> Signal<T> {
        let id = self
            .net
            .borrow_mut()
            .keep_when(gate.id, base.into_value(), self.id);
        self.derive(id)
    }

    /// `dropWhen : Signal Bool -> a -> Signal a -> Signal a`: passes this
    /// signal's events only while `gate` is **false**.
    pub fn drop_when(&self, gate: &Signal<bool>, base: T) -> Signal<T> {
        let inverted = gate.map(|b| !b);
        self.keep_when(&inverted, base)
    }

    /// Remembers the previous value: emits `(previous, current)` pairs —
    /// a common Elm idiom built on `foldp` (useful for deltas/velocity).
    pub fn with_previous(&self, initial: T) -> Signal<(T, T)> {
        let init_pair = (initial.clone(), initial);
        self.foldp(init_pair, |new, (_, prev)| (prev, new))
    }

    /// `dropRepeats : Signal a -> Signal a`: suppresses consecutive equal
    /// values (structural equality of the encoded value).
    pub fn drop_repeats(&self) -> Signal<T> {
        let id = self.net.borrow_mut().drop_repeats(self.id);
        self.derive(id)
    }

    /// `count : Signal a -> Signal Int`: number of events so far
    /// (paper §3.1's key-press counter; Fig. 14's slide-show index).
    pub fn count(&self) -> Signal<i64> {
        self.foldp(0i64, |_, n| n + 1)
    }

    /// `countIf : (a -> Bool) -> Signal a -> Signal Int`.
    pub fn count_if(&self, pred: impl Fn(&T) -> bool + Send + Sync + 'static) -> Signal<i64> {
        self.foldp(0i64, move |v, n| if pred(&v) { n + 1 } else { n })
    }

    /// Erases the static type, yielding the raw dynamic signal.
    pub fn erased(&self) -> Signal<Value> {
        self.derive(self.id)
    }
}

/// `lift2 : (a -> b -> c) -> Signal a -> Signal b -> Signal c` (paper §3.1).
pub fn lift2<A: SignalValue, B: SignalValue, C: SignalValue>(
    f: impl Fn(A, B) -> C + Send + Sync + 'static,
    a: &Signal<A>,
    b: &Signal<B>,
) -> Signal<C> {
    let id = a.net.borrow_mut().lift2(
        "lift2",
        move |x, y| f(A::from_value_unwrap(x), B::from_value_unwrap(y)).into_value(),
        a.id,
        b.id,
    );
    a.derive(id)
}

/// `lift3 : (a -> b -> c -> d) -> …` (paper §2, Example 3).
pub fn lift3<A: SignalValue, B: SignalValue, C: SignalValue, D: SignalValue>(
    f: impl Fn(A, B, C) -> D + Send + Sync + 'static,
    a: &Signal<A>,
    b: &Signal<B>,
    c: &Signal<C>,
) -> Signal<D> {
    let id = a.net.borrow_mut().lift3(
        "lift3",
        move |x, y, z| {
            f(
                A::from_value_unwrap(x),
                B::from_value_unwrap(y),
                C::from_value_unwrap(z),
            )
            .into_value()
        },
        a.id,
        b.id,
        c.id,
    );
    a.derive(id)
}

/// `lift4`, for completeness with Elm's `Signal` library.
pub fn lift4<A, B, C, D, E>(
    f: impl Fn(A, B, C, D) -> E + Send + Sync + 'static,
    a: &Signal<A>,
    b: &Signal<B>,
    c: &Signal<C>,
    d: &Signal<D>,
) -> Signal<E>
where
    A: SignalValue,
    B: SignalValue,
    C: SignalValue,
    D: SignalValue,
    E: SignalValue,
{
    let id = a.net.borrow_mut().lift_n(
        "lift4",
        move |vs| {
            f(
                A::from_value_unwrap(&vs[0]),
                B::from_value_unwrap(&vs[1]),
                C::from_value_unwrap(&vs[2]),
                D::from_value_unwrap(&vs[3]),
            )
            .into_value()
        },
        vec![a.id, b.id, c.id, d.id],
    );
    a.derive(id)
}

/// `zip`: pairs two signals — `lift2 (,)`.
pub fn zip<A: SignalValue, B: SignalValue>(a: &Signal<A>, b: &Signal<B>) -> Signal<(A, B)> {
    lift2(|x, y| (x, y), a, b)
}

/// `merges : [Signal a] -> Signal a`: left-biased n-way merge.
///
/// # Panics
///
/// Panics if `signals` is empty.
pub fn merges<T: SignalValue>(signals: &[Signal<T>]) -> Signal<T> {
    let (first, rest) = signals
        .split_first()
        .expect("merges requires at least one signal");
    rest.iter().fold(first.clone(), |acc, s| acc.merge(s))
}

/// `combine : [Signal a] -> Signal [a]`: the current values of all the
/// signals, updated whenever any of them fires.
///
/// # Panics
///
/// Panics if `signals` is empty.
pub fn combine<T: SignalValue>(signals: &[Signal<T>]) -> Signal<Vec<T>> {
    let first = signals
        .first()
        .expect("combine requires at least one signal");
    let ids: Vec<_> = signals.iter().map(|s| s.id).collect();
    let id = first
        .net
        .borrow_mut()
        .lift_n("combine", |vs| Value::list(vs.iter().cloned()), ids);
    first.derive(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Engine;

    #[test]
    fn mouse_tracker_one_liner() {
        // Paper Example 2: main = lift asText Mouse.position
        let mut net = SignalNetwork::new();
        let (mouse, h) = net.input::<(i64, i64)>("Mouse.position", (0, 0));
        let main = mouse.map(|p| format!("{p:?}"));
        let prog = net.program(&main).unwrap();

        let mut run = prog.start(Engine::Synchronous);
        run.send(&h, (3, 4)).unwrap();
        run.send(&h, (5, 6)).unwrap();
        let outs = run.drain_changes().unwrap();
        assert_eq!(outs, vec!["(3, 4)".to_string(), "(5, 6)".to_string()]);
    }

    #[test]
    fn count_counts_only_its_signal() {
        let mut net = SignalNetwork::new();
        let (keys, hk) = net.input::<i64>("Keyboard.lastPressed", 0);
        let (mouse, hm) = net.input::<(i64, i64)>("Mouse.position", (0, 0));
        let count = keys.count();
        let main = lift2(|c, m| (c, m), &count, &mouse);
        let prog = net.program(&main).unwrap();

        let mut run = prog.start(Engine::Synchronous);
        run.send(&hk, 65).unwrap();
        run.send(&hm, (1, 1)).unwrap();
        run.send(&hm, (2, 2)).unwrap();
        run.send(&hk, 66).unwrap();
        let outs = run.drain_changes().unwrap();
        assert_eq!(outs.last(), Some(&(2, (2i64, 2i64))));
    }

    #[test]
    fn merge_and_merges_are_left_biased() {
        let mut net = SignalNetwork::new();
        let (a, ha) = net.input::<i64>("a", 0);
        let (b, hb) = net.input::<i64>("b", 0);
        let (c, hc) = net.input::<i64>("c", 0);
        let main = merges(&[a, b, c]);
        let prog = net.program(&main).unwrap();
        let mut run = prog.start(Engine::Synchronous);
        run.send(&hb, 2).unwrap();
        run.send(&ha, 1).unwrap();
        run.send(&hc, 3).unwrap();
        assert_eq!(run.drain_changes().unwrap(), vec![2, 1, 3]);
    }

    #[test]
    fn sample_keep_drop_combinators() {
        let mut net = SignalNetwork::new();
        let (ticks, ht) = net.input::<()>("tick", ());
        let (data, hd) = net.input::<i64>("data", 0);
        let sampled = ticks.sample_on(&data);
        let gated = sampled.keep_if(|v| v % 2 == 0, 0);
        let deduped = gated.drop_repeats();
        let prog = net.program(&deduped).unwrap();

        let mut run = prog.start(Engine::Synchronous);
        run.send(&hd, 4).unwrap();
        run.send(&ht, ()).unwrap(); // samples 4 (even, new) -> out
        run.send(&ht, ()).unwrap(); // samples 4 again -> deduped
        run.send(&hd, 5).unwrap();
        run.send(&ht, ()).unwrap(); // samples 5 (odd) -> filtered
        run.send(&hd, 6).unwrap();
        run.send(&ht, ()).unwrap(); // samples 6 -> out
        assert_eq!(run.drain_changes().unwrap(), vec![4, 6]);
    }

    #[test]
    fn keep_when_gates_by_boolean_signal() {
        let mut net = SignalNetwork::new();
        let (gate, hg) = net.input::<bool>("shift", false);
        let (data, hd) = net.input::<i64>("data", 0);
        let main = data.keep_when(&gate, -1);
        let prog = net.program(&main).unwrap();
        let mut run = prog.start(Engine::Synchronous);
        run.send(&hd, 1).unwrap(); // gate false: dropped
        run.send(&hg, true).unwrap();
        run.send(&hd, 2).unwrap(); // passes
        run.send(&hg, false).unwrap();
        run.send(&hd, 3).unwrap(); // dropped
        assert_eq!(run.drain_changes().unwrap(), vec![2]);
    }

    #[test]
    fn constant_signals_never_fire_but_combine() {
        let mut net = SignalNetwork::new();
        let k = net.constant(100i64);
        let (x, hx) = net.input::<i64>("x", 0);
        let main = lift2(|a, b| a + b, &k, &x);
        let prog = net.program(&main).unwrap();
        let mut run = prog.start(Engine::Synchronous);
        run.send(&hx, 7).unwrap();
        assert_eq!(run.drain_changes().unwrap(), vec![107]);
    }

    #[test]
    fn drop_when_inverts_the_gate() {
        let mut net = SignalNetwork::new();
        let (gate, hg) = net.input::<bool>("busy", false);
        let (data, hd) = net.input::<i64>("data", 0);
        let main = data.drop_when(&gate, -1);
        let prog = net.program(&main).unwrap();
        let mut run = prog.start(Engine::Synchronous);
        run.send(&hd, 1).unwrap(); // gate false: passes
        run.send(&hg, true).unwrap();
        run.send(&hd, 2).unwrap(); // dropped
        run.send(&hg, false).unwrap();
        run.send(&hd, 3).unwrap(); // passes
        assert_eq!(run.drain_changes().unwrap(), vec![1, 3]);
    }

    #[test]
    fn with_previous_pairs_consecutive_values() {
        let mut net = SignalNetwork::new();
        let (x, hx) = net.input::<i64>("x", 0);
        let main = x.with_previous(0);
        let prog = net.program(&main).unwrap();
        let mut run = prog.start(Engine::Synchronous);
        for v in [10, 20, 30] {
            run.send(&hx, v).unwrap();
        }
        assert_eq!(
            run.drain_changes().unwrap(),
            vec![(0, 10), (10, 20), (20, 30)]
        );
    }

    #[test]
    fn combine_collects_current_values() {
        let mut net = SignalNetwork::new();
        let (a, ha) = net.input::<i64>("a", 1);
        let (b, hb) = net.input::<i64>("b", 2);
        let (c, hc) = net.input::<i64>("c", 3);
        let main = combine(&[a, b, c]);
        let prog = net.program(&main).unwrap();
        assert_eq!(prog.initial_value(), vec![1, 2, 3]);
        let mut run = prog.start(Engine::Synchronous);
        run.send(&hb, 20).unwrap();
        run.send(&ha, 10).unwrap();
        let _ = hc;
        assert_eq!(
            run.drain_changes().unwrap(),
            vec![vec![1, 20, 3], vec![10, 20, 3]]
        );
    }

    #[test]
    fn signals_are_shareable_multicast() {
        // One signal consumed twice = multicast node (the `let` translation).
        let mut net = SignalNetwork::new();
        let (x, hx) = net.input::<i64>("x", 0);
        let doubled = x.map(|v| v * 2);
        let squared = x.map(|v| v * v);
        let main = lift2(|a, b| (a, b), &doubled, &squared);
        let prog = net.program(&main).unwrap();
        let mut run = prog.start(Engine::Synchronous);
        run.send(&hx, 5).unwrap();
        assert_eq!(run.drain_changes().unwrap(), vec![(10i64, 25i64)]);
    }
}
