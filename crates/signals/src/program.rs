//! Compiled reactive programs and their execution.
//!
//! [`Program`] is the result of finalizing a [`crate::SignalNetwork`]: an
//! immutable signal graph with a typed `main` output. It can be executed on
//! either scheduler:
//!
//! * [`Engine::Concurrent`] — the paper's pipelined thread-per-node
//!   semantics,
//! * [`Engine::Synchronous`] — the deterministic one-event-at-a-time
//!   reference (no pipelining, no wall-clock concurrency).
//!
//! Programs behave identically on both engines up to the interleaving
//! freedom that `async` deliberately introduces.

use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Duration;

use elm_runtime::{
    ConcurrentRuntime, Occurrence, OutputEvent, RunError, RuntimeSnapshot, SignalGraph,
    StatsSnapshot, SyncRuntime, Trace, Tracer, Value,
};

use crate::convert::SignalValue;
use crate::network::InputHandle;

/// Which scheduler executes the program.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// Thread-per-node pipelined execution (paper §3.3.2).
    #[default]
    Concurrent,
    /// Single-threaded globally-ordered execution (the conceptual
    /// semantics; deterministic).
    Synchronous,
}

/// A finalized reactive program whose output signal carries `T`.
#[derive(Clone, Debug)]
pub struct Program<T> {
    graph: SignalGraph,
    _marker: PhantomData<fn() -> T>,
}

impl Program<Value> {
    /// Wraps an already-built signal graph (e.g. compiled by `felm`) as a
    /// dynamically-typed program: the output signal carries raw [`Value`]s.
    ///
    /// This is the entry point for hosts that receive graphs at runtime —
    /// like the multi-session server — rather than building them through
    /// [`crate::SignalNetwork`]'s typed combinators.
    pub fn from_dynamic_graph(graph: SignalGraph) -> Self {
        Program::from_graph(graph)
    }
}

impl<T: SignalValue> Program<T> {
    pub(crate) fn from_graph(graph: SignalGraph) -> Self {
        Program {
            graph,
            _marker: PhantomData,
        }
    }

    /// The underlying signal graph.
    pub fn graph(&self) -> &SignalGraph {
        &self.graph
    }

    /// Renders the signal graph as Graphviz DOT (paper Figs. 7–8).
    pub fn to_dot(&self) -> String {
        elm_runtime::dot::to_dot(&self.graph)
    }

    /// The output's default value — what the screen shows before any event.
    pub fn initial_value(&self) -> T {
        T::from_value_unwrap(&self.graph.node(self.graph.output()).default)
    }

    /// Starts executing on `engine`.
    pub fn start(&self, engine: Engine) -> Running<T> {
        self.start_observed(engine, None)
    }

    /// Starts executing on `engine` with an optional causal [`Tracer`]
    /// attached: every ingress event gets a trace id and each node that
    /// computes records a span, so the propagation of a single event can be
    /// reconstructed as a span tree afterwards.
    ///
    /// Passing `None` is exactly [`Program::start`] — no tracing overhead.
    pub fn start_observed(&self, engine: Engine, tracer: Option<Arc<Tracer>>) -> Running<T> {
        let inner = match engine {
            Engine::Concurrent => {
                Inner::Concurrent(ConcurrentRuntime::start_with_tracer(&self.graph, tracer))
            }
            Engine::Synchronous => {
                let mut rt = SyncRuntime::new(&self.graph);
                if let Some(t) = tracer {
                    rt.set_tracer(t);
                }
                Inner::Synchronous(rt)
            }
        };
        Running {
            inner,
            graph: self.graph.clone(),
            current: self.initial_value(),
            _marker: PhantomData,
        }
    }
}

enum Inner {
    Concurrent(ConcurrentRuntime),
    Synchronous(SyncRuntime),
}

/// A running program: feed inputs, observe outputs.
pub struct Running<T> {
    inner: Inner,
    graph: SignalGraph,
    current: T,
    _marker: PhantomData<fn() -> T>,
}

impl<T: SignalValue> Running<T> {
    /// Sends a typed event to an input.
    ///
    /// # Errors
    ///
    /// Fails if the handle belongs to a different graph or the runtime has
    /// stopped.
    pub fn send<U: SignalValue>(
        &mut self,
        input: &InputHandle<U>,
        value: U,
    ) -> Result<(), RunError> {
        let occ = Occurrence::input(input.node_id(), value.into_value());
        match &mut self.inner {
            Inner::Concurrent(rt) => rt.feed(occ),
            Inner::Synchronous(rt) => rt.feed(occ),
        }
    }

    /// Sends a dynamic event to an input identified by its environment
    /// name (e.g. `"Mouse.position"`).
    ///
    /// # Errors
    ///
    /// Fails if no input with that name exists.
    pub fn send_named(&mut self, name: &str, value: Value) -> Result<(), RunError> {
        let id = self
            .graph
            .input_named(name)
            .ok_or_else(|| RunError::WorkerLost(format!("unknown input '{name}'")))?;
        let occ = Occurrence::input(id, value);
        match &mut self.inner {
            Inner::Concurrent(rt) => rt.feed(occ),
            Inner::Synchronous(rt) => rt.feed(occ),
        }
    }

    /// Sends a batch of dynamic events, each addressed by input name, in
    /// order. One name resolution error aborts the batch at that point:
    /// earlier events are already queued, the failing one and everything
    /// after it are not.
    ///
    /// This is the bulk ingress path used by the multi-session server —
    /// resolving names once per event but making only one pass over the
    /// engine dispatch.
    ///
    /// # Errors
    ///
    /// Fails on the first unknown input name or if the runtime has
    /// stopped.
    pub fn feed_batch(&mut self, events: &[(&str, Value)]) -> Result<(), RunError> {
        for (name, value) in events {
            let id = self
                .graph
                .input_named(name)
                .ok_or_else(|| RunError::WorkerLost(format!("unknown input '{name}'")))?;
            let occ = Occurrence::input(id, value.clone());
            match &mut self.inner {
                Inner::Concurrent(rt) => rt.feed(occ)?,
                Inner::Synchronous(rt) => rt.feed(occ)?,
            }
        }
        Ok(())
    }

    /// Feeds every event of a recorded trace (ignoring its timestamps).
    ///
    /// # Errors
    ///
    /// Fails if the trace references inputs this program does not declare.
    pub fn send_trace(&mut self, trace: &Trace) -> Result<(), RunError> {
        for occ in trace.to_occurrences(&self.graph)? {
            match &mut self.inner {
                Inner::Concurrent(rt) => rt.feed(occ)?,
                Inner::Synchronous(rt) => rt.feed(occ)?,
            }
        }
        Ok(())
    }

    /// Processes all in-flight events (including `async` follow-ups) and
    /// returns the raw per-event output log.
    ///
    /// # Errors
    ///
    /// Fails if worker threads died.
    pub fn drain_raw(&mut self) -> Result<Vec<OutputEvent>, RunError> {
        let events = match &mut self.inner {
            Inner::Concurrent(rt) => rt.drain()?,
            Inner::Synchronous(rt) => rt.run_to_quiescence(),
        };
        if let Some(v) = events.iter().rev().find_map(|e| e.value()) {
            self.current = T::from_value_unwrap(v);
        }
        Ok(events)
    }

    /// Processes all in-flight events and returns the sequence of values
    /// the output signal took — what a user would see rendered.
    ///
    /// # Errors
    ///
    /// Fails if worker threads died.
    pub fn drain_changes(&mut self) -> Result<Vec<T>, RunError> {
        Ok(self
            .drain_raw()?
            .iter()
            .filter_map(|e| e.value())
            .map(T::from_value_unwrap)
            .collect())
    }

    /// The most recent output value (the default before any change).
    pub fn current(&self) -> &T {
        &self.current
    }

    /// Waits up to `timeout` for the next *changed* output, without a full
    /// drain. Only meaningful on the concurrent engine, where outputs
    /// stream in as they are computed; on the synchronous engine this
    /// processes queued events one at a time.
    pub fn next_change(&mut self, timeout: Duration) -> Option<T> {
        match &mut self.inner {
            Inner::Concurrent(rt) => {
                let deadline = std::time::Instant::now() + timeout;
                loop {
                    let remaining = deadline.checked_duration_since(std::time::Instant::now())?;
                    let ev = rt.next_output(remaining)?;
                    if let Some(v) = ev.value() {
                        let t = T::from_value_unwrap(v);
                        self.current = t.clone();
                        return Some(t);
                    }
                }
            }
            Inner::Synchronous(rt) => {
                while let Some(ev) = rt.step() {
                    if let Some(v) = ev.value() {
                        let t = T::from_value_unwrap(v);
                        self.current = t.clone();
                        return Some(t);
                    }
                }
                None
            }
        }
    }

    /// Captures the runtime's mutable state for crash recovery. Only the
    /// deterministic synchronous engine supports this (the concurrent
    /// engine's state is spread across worker threads); returns `None`
    /// there.
    pub fn snapshot(&self) -> Option<RuntimeSnapshot> {
        match &self.inner {
            Inner::Concurrent(_) => None,
            Inner::Synchronous(rt) => Some(rt.snapshot()),
        }
    }

    /// Restores state captured by [`Running::snapshot`], refreshing the
    /// cached current output value. Synchronous engine only.
    ///
    /// # Errors
    ///
    /// Fails on the concurrent engine or if the snapshot belongs to a
    /// structurally different graph.
    pub fn restore(&mut self, snap: &RuntimeSnapshot) -> Result<(), RunError> {
        match &mut self.inner {
            Inner::Concurrent(_) => Err(RunError::WorkerLost(
                "snapshot/restore requires the synchronous engine".to_string(),
            )),
            Inner::Synchronous(rt) => {
                rt.restore(snap)?;
                self.current = T::from_value_unwrap(rt.output_value());
                Ok(())
            }
        }
    }

    /// Installs per-event resource governance on the synchronous engine:
    /// `limits` bounds fuel/allocation/depth per event, `event_timeout`
    /// gives every event a wall-clock deadline. A no-op on the concurrent
    /// engine (whose node computations run on worker threads outside the
    /// governor's thread-local scope).
    pub fn set_governor(
        &mut self,
        limits: Option<elm_runtime::EventLimits>,
        event_timeout: Option<Duration>,
    ) {
        if let Inner::Synchronous(rt) = &mut self.inner {
            rt.set_governor(limits, event_timeout);
        }
    }

    /// Drains the `(seq, kind)` log of governor-trapped events.
    /// Always empty on the concurrent engine.
    pub fn take_traps(&mut self) -> Vec<(u64, elm_runtime::TrapKind)> {
        match &mut self.inner {
            Inner::Concurrent(_) => Vec::new(),
            Inner::Synchronous(rt) => rt.take_traps(),
        }
    }

    /// The tracer attached at [`Program::start_observed`] time, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        match &self.inner {
            Inner::Concurrent(rt) => rt.tracer(),
            Inner::Synchronous(rt) => rt.tracer(),
        }
    }

    /// Execution counters.
    pub fn stats(&self) -> StatsSnapshot {
        match &self.inner {
            Inner::Concurrent(rt) => rt.stats().snapshot(),
            Inner::Synchronous(rt) => rt.stats().snapshot(),
        }
    }

    /// Stops the program (joins worker threads on the concurrent engine).
    pub fn stop(self) {
        if let Inner::Concurrent(rt) = self.inner {
            rt.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{lift2, SignalNetwork};

    fn counter_program() -> (Program<i64>, InputHandle<()>) {
        let mut net = SignalNetwork::new();
        let (clicks, h) = net.input::<()>("Mouse.clicks", ());
        let count = clicks.count();
        (net.program(&count).unwrap(), h)
    }

    #[test]
    fn both_engines_agree_on_counter() {
        let (prog, h) = counter_program();
        for engine in [Engine::Synchronous, Engine::Concurrent] {
            let mut run = prog.start(engine);
            assert_eq!(run.current(), &0);
            for _ in 0..5 {
                run.send(&h, ()).unwrap();
            }
            let outs = run.drain_changes().unwrap();
            assert_eq!(outs, vec![1, 2, 3, 4, 5], "{engine:?}");
            assert_eq!(run.current(), &5);
            run.stop();
        }
    }

    #[test]
    fn initial_value_is_the_induced_default() {
        let mut net = SignalNetwork::new();
        let (w, _h) = net.input::<i64>("Window.width", 800);
        let half = w.map(|v| v / 2);
        let prog = net.program(&half).unwrap();
        assert_eq!(prog.initial_value(), 400);
    }

    #[test]
    fn send_named_resolves_inputs() {
        let (prog, _h) = counter_program();
        let mut run = prog.start(Engine::Synchronous);
        run.send_named("Mouse.clicks", Value::Unit).unwrap();
        assert!(run.send_named("Nope", Value::Unit).is_err());
        assert_eq!(run.drain_changes().unwrap(), vec![1]);
    }

    #[test]
    fn feed_batch_queues_in_order_and_stops_at_first_error() {
        let (prog, _h) = counter_program();
        let mut run = prog.start(Engine::Synchronous);
        run.feed_batch(&[("Mouse.clicks", Value::Unit), ("Mouse.clicks", Value::Unit)])
            .unwrap();
        assert_eq!(run.drain_changes().unwrap(), vec![1, 2]);

        // Unknown name aborts mid-batch: the first event still lands.
        let err = run.feed_batch(&[
            ("Mouse.clicks", Value::Unit),
            ("No.such.input", Value::Unit),
            ("Mouse.clicks", Value::Unit),
        ]);
        assert!(err.is_err());
        assert_eq!(run.drain_changes().unwrap(), vec![3]);
    }

    #[test]
    fn send_trace_replays_recordings() {
        use elm_runtime::PlainValue;
        let mut net = SignalNetwork::new();
        let (x, _h) = net.input::<i64>("x", 0);
        let (y, _h2) = net.input::<i64>("y", 0);
        let main = lift2(|a, b| a + b, &x, &y);
        let prog = net.program(&main).unwrap();

        let mut trace = Trace::new();
        trace.push(0, "x", PlainValue::Int(1));
        trace.push(5, "y", PlainValue::Int(10));
        trace.push(9, "x", PlainValue::Int(2));

        let mut run = prog.start(Engine::Synchronous);
        run.send_trace(&trace).unwrap();
        assert_eq!(run.drain_changes().unwrap(), vec![1, 11, 12]);
    }

    #[test]
    fn next_change_streams_individual_updates() {
        let (prog, h) = counter_program();
        let mut run = prog.start(Engine::Concurrent);
        run.send(&h, ()).unwrap();
        run.send(&h, ()).unwrap();
        assert_eq!(run.next_change(Duration::from_secs(5)), Some(1));
        assert_eq!(run.next_change(Duration::from_secs(5)), Some(2));
        assert_eq!(run.next_change(Duration::from_millis(50)), None);
        run.stop();
    }

    #[test]
    fn snapshot_restore_round_trips_on_the_sync_engine() {
        let (prog, h) = counter_program();
        let mut run = prog.start(Engine::Synchronous);
        for _ in 0..3 {
            run.send(&h, ()).unwrap();
        }
        run.drain_changes().unwrap();
        let snap = run.snapshot().expect("sync engine snapshots");

        let mut restored = prog.start(Engine::Synchronous);
        restored.restore(&snap).unwrap();
        assert_eq!(restored.current(), &3);
        restored.send(&h, ()).unwrap();
        assert_eq!(restored.drain_changes().unwrap(), vec![4]);

        // The concurrent engine refuses both directions.
        let mut conc = prog.start(Engine::Concurrent);
        assert!(conc.snapshot().is_none());
        assert!(conc.restore(&snap).is_err());
        conc.stop();
    }

    #[test]
    fn start_observed_records_spans_on_both_engines() {
        let (prog, h) = counter_program();
        for engine in [Engine::Synchronous, Engine::Concurrent] {
            let tracer = Tracer::for_graph(prog.graph());
            tracer.set_enabled(true);
            let mut run = prog.start_observed(engine, Some(tracer.clone()));
            run.send(&h, ()).unwrap();
            run.drain_changes().unwrap();
            run.stop();
            let spans = tracer.drain_spans();
            assert!(!spans.is_empty(), "{engine:?} recorded no spans");
            assert!(spans.iter().all(|s| !s.trace.is_none()), "{engine:?}");
        }
        // Plain start attaches no tracer.
        let run = prog.start(Engine::Synchronous);
        assert!(run.tracer().is_none());
    }

    #[test]
    fn dot_rendering_is_exposed() {
        let (prog, _h) = counter_program();
        let dot = prog.to_dot();
        assert!(dot.contains("Mouse.clicks"));
        assert!(dot.contains("foldp"));
    }
}
