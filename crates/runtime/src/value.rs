//! Dynamic runtime values flowing through signal graphs.
//!
//! The runtime is untyped at its core — a single [`Value`] enum travels along
//! every edge of a signal graph. This mirrors the paper's translation to
//! Concurrent ML, where channel payloads are ordinary ML values. Static typing
//! is recovered one level up:
//!
//! * the FElm type system (`felm` crate) guarantees well-typed programs only
//!   ever put the right shapes on each edge (paper Fig. 4), and
//! * the typed `Signal<T>` embedding (`elm-signals` crate) converts through
//!   the [`FromValue`]/`IntoValue` pair so user code never sees [`Value`].
//!
//! [`Value::Ext`] carries arbitrary `Send + Sync` Rust payloads (graphical
//! elements, user structs) without the runtime knowing their type.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A dynamic value carried on signal-graph edges.
///
/// `Value` is cheap to clone: compound payloads are reference counted, which
/// matters because multicast nodes (the translation of `let`, paper §3.3.2)
/// clone one value per subscriber on every event.
#[derive(Clone, Default)]
pub enum Value {
    /// The unit value `()` of FElm.
    #[default]
    Unit,
    /// A 64-bit integer (FElm's `int`).
    Int(i64),
    /// A 64-bit float (full-Elm extension).
    Float(f64),
    /// A boolean (full-Elm extension; FElm encodes booleans as `int`).
    Bool(bool),
    /// An immutable string (full-Elm extension).
    Str(Arc<str>),
    /// An ordered pair, e.g. `Mouse.position : Signal (Int, Int)`.
    Pair(Arc<(Value, Value)>),
    /// An immutable list.
    List(Arc<Vec<Value>>),
    /// An extensible record, keyed by field name (full-Elm extension).
    Record(Arc<BTreeMap<String, Value>>),
    /// A tagged union value — a constructor application of an algebraic
    /// data type (full-Elm extension), e.g. `Just 3` or `Cons 1 Nil`.
    Tagged(Arc<str>, Arc<Vec<Value>>),
    /// An opaque host value (graphical `Element`s, user types, …).
    Ext(Arc<dyn Any + Send + Sync>),
}

impl Value {
    /// Builds a string value.
    ///
    /// ```
    /// use elm_runtime::Value;
    /// assert_eq!(Value::str("hi").as_str(), Some("hi"));
    /// ```
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds a pair value.
    pub fn pair(a: Value, b: Value) -> Self {
        Value::Pair(Arc::new((a, b)))
    }

    /// Builds a list value from an iterator.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Self {
        Value::List(Arc::new(items.into_iter().collect()))
    }

    /// Builds a record value from `(field, value)` pairs.
    pub fn record(fields: impl IntoIterator<Item = (String, Value)>) -> Self {
        Value::Record(Arc::new(fields.into_iter().collect()))
    }

    /// Builds a tagged union value (a constructor application).
    pub fn tagged(tag: impl AsRef<str>, args: impl IntoIterator<Item = Value>) -> Self {
        Value::Tagged(
            Arc::from(tag.as_ref()),
            Arc::new(args.into_iter().collect()),
        )
    }

    /// Returns the tag and arguments, if this is a `Tagged` value.
    pub fn as_tagged(&self) -> Option<(&str, &[Value])> {
        match self {
            Value::Tagged(tag, args) => Some((tag, args)),
            _ => None,
        }
    }

    /// Wraps an arbitrary host value.
    pub fn ext<T: Any + Send + Sync>(v: T) -> Self {
        Value::Ext(Arc::new(v))
    }

    /// A rough retained-size estimate in abstract cells (one cell ≈ one
    /// word-sized allocation, strings at one cell per byte). Used by the
    /// server's memory watermark; shared (`Arc`'d) structure is counted
    /// once per reference, deliberately over-estimating aliased values
    /// rather than walking identity.
    pub fn approx_cells(&self) -> u64 {
        match self {
            Value::Unit | Value::Int(_) | Value::Float(_) | Value::Bool(_) => 1,
            Value::Str(s) => 1 + s.len() as u64,
            Value::Pair(p) => 1 + p.0.approx_cells() + p.1.approx_cells(),
            Value::List(items) => 1 + items.iter().map(Value::approx_cells).sum::<u64>(),
            Value::Record(fields) => {
                1 + fields
                    .iter()
                    .map(|(k, v)| 1 + k.len() as u64 + v.approx_cells())
                    .sum::<u64>()
            }
            Value::Tagged(tag, args) => {
                1 + tag.len() as u64 + args.iter().map(Value::approx_cells).sum::<u64>()
            }
            Value::Ext(_) => 1,
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the float payload, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the components of a pair, if this is a `Pair`.
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(p) => Some((&p.0, &p.1)),
            _ => None,
        }
    }

    /// Returns the element slice, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the field map, if this is a `Record`.
    pub fn as_record(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Record(fields) => Some(fields),
            _ => None,
        }
    }

    /// Downcasts an `Ext` payload to a concrete type.
    pub fn downcast_ext<T: Any + Send + Sync>(&self) -> Option<&T> {
        match self {
            Value::Ext(any) => any.downcast_ref::<T>(),
            _ => None,
        }
    }

    /// FElm truthiness: conditionals test integers against zero
    /// (paper Fig. 6, rules COND-TRUE / COND-FALSE). Booleans are honored
    /// for the full-language extension.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Int(n) => *n != 0,
            Value::Bool(b) => *b,
            _ => false,
        }
    }

    /// A short tag naming the constructor, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Pair(_) => "pair",
            Value::List(_) => "list",
            Value::Record(_) => "record",
            Value::Tagged(..) => "tagged",
            Value::Ext(_) => "ext",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Pair(a), Value::Pair(b)) => a.0 == b.0 && a.1 == b.1,
            (Value::List(a), Value::List(b)) => a == b,
            (Value::Record(a), Value::Record(b)) => a == b,
            (Value::Tagged(t1, a1), Value::Tagged(t2, a2)) => t1 == t2 && a1 == a2,
            // Opaque payloads compare by identity: `dropRepeats` on host
            // values only suppresses literally-shared values.
            (Value::Ext(a), Value::Ext(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.partial_cmp(b),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.partial_cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.partial_cmp(b),
            _ => None,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => write!(f, "{x:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Pair(p) => write!(f, "({:?}, {:?})", p.0, p.1),
            Value::List(items) => f.debug_list().entries(items.iter()).finish(),
            Value::Record(fields) => {
                let mut map = f.debug_map();
                for (k, v) in fields.iter() {
                    map.entry(&format_args!("{k}"), v);
                }
                map.finish()
            }
            Value::Tagged(tag, args) => {
                write!(f, "{tag}")?;
                for a in args.iter() {
                    write!(f, " {a:?}")?;
                }
                Ok(())
            }
            Value::Ext(_) => write!(f, "<ext>"),
        }
    }
}

impl fmt::Display for Value {
    /// Renders a value the way Elm's `asText` / `show` does.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            other => write!(f, "{other:?}"),
        }
    }
}

impl From<()> for Value {
    fn from((): ()) -> Self {
        Value::Unit
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Self {
        Value::Int(n.into())
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<(Value, Value)> for Value {
    fn from((a, b): (Value, Value)) -> Self {
        Value::pair(a, b)
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Value::list(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors_round_trip() {
        assert_eq!(Value::from(7i64).as_int(), Some(7));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::str("abc").as_str(), Some("abc"));
        let p = Value::pair(Value::Int(1), Value::Int(2));
        let (a, b) = p.as_pair().unwrap();
        assert_eq!((a.as_int(), b.as_int()), (Some(1), Some(2)));
        let l = Value::list([Value::Int(1), Value::Int(2)]);
        assert_eq!(l.as_list().unwrap().len(), 2);
    }

    #[test]
    fn truthiness_follows_felm_conditionals() {
        assert!(Value::Int(1).is_truthy());
        assert!(Value::Int(-3).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Unit.is_truthy());
        assert!(!Value::str("nonempty").is_truthy());
    }

    #[test]
    fn equality_is_structural_for_plain_data() {
        assert_eq!(
            Value::pair(Value::Int(1), Value::str("x")),
            Value::pair(Value::Int(1), Value::str("x"))
        );
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn ext_values_compare_by_identity() {
        let a = Value::ext(41i32);
        let b = Value::ext(41i32);
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
        assert_eq!(a.downcast_ext::<i32>(), Some(&41));
        assert_eq!(a.downcast_ext::<u8>(), None);
    }

    #[test]
    fn display_matches_as_text_conventions() {
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(
            Value::pair(Value::Int(3), Value::Int(4)).to_string(),
            "(3, 4)"
        );
        assert_eq!(
            Value::list([Value::Int(9), Value::Int(8)]).to_string(),
            "[9, 8]"
        );
    }

    #[test]
    fn record_accessor_and_debug() {
        let r = Value::record([
            ("x".to_string(), Value::Int(1)),
            ("y".to_string(), Value::Int(2)),
        ]);
        assert_eq!(r.as_record().unwrap()["y"], Value::Int(2));
        assert_eq!(format!("{r:?}"), "{x: 1, y: 2}");
    }

    #[test]
    fn tagged_values_compare_structurally_and_print() {
        let a = Value::tagged("Just", [Value::Int(3)]);
        let b = Value::tagged("Just", [Value::Int(3)]);
        let c = Value::tagged("Nothing", []);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(format!("{a:?}"), "Just 3");
        assert_eq!(format!("{c:?}"), "Nothing");
        assert_eq!(a.as_tagged(), Some(("Just", &[Value::Int(3)][..])));
        assert_eq!(Value::Int(1).as_tagged(), None);
    }

    #[test]
    fn kind_tags_every_variant() {
        for (v, k) in [
            (Value::Unit, "unit"),
            (Value::Int(0), "int"),
            (Value::Float(0.0), "float"),
            (Value::Bool(false), "bool"),
            (Value::str(""), "string"),
            (Value::pair(Value::Unit, Value::Unit), "pair"),
            (Value::list([]), "list"),
            (Value::record([]), "record"),
            (Value::tagged("T", []), "tagged"),
            (Value::ext(0u8), "ext"),
        ] {
            assert_eq!(v.kind(), k);
        }
    }
}
