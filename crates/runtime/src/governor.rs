//! Ambient per-event resource governor.
//!
//! The runtime hosts node functions it cannot inspect — compiled FElm
//! closures among them — so per-event resource limits have to be enforced
//! *inside* the evaluation those closures perform. This module provides
//! the contract between the scheduler and the evaluators without coupling
//! their crates: before running an event's node computations, the
//! scheduler [`enter`]s a governor carrying the event's remaining fuel,
//! allocation pool, depth bound, and deadline; a metered evaluator calls
//! [`active`] to discover the limits, draws the pools down with
//! [`consume`], and reports exhaustion with [`record_trap`]; after the
//! event the scheduler collects the verdict with [`take_trap`].
//!
//! The governor is thread-local (one event is dispatched at a time per
//! runtime, on one thread) and re-entrant: nested scopes save and restore
//! the outer state, so a governed runtime embedded in another governed
//! computation stays isolated.
//!
//! Fuel and allocation pools are *shared across all nodes of one event*:
//! a budget bounds the total work an event may cause, not the work per
//! node, so a graph with many nodes cannot multiply an attacker's budget.

use std::cell::RefCell;
use std::time::Instant;

/// Per-event resource limits enforced by the governor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventLimits {
    /// Total reduction steps / interpreter node visits allowed per event,
    /// summed over every node the event recomputes.
    pub fuel: u64,
    /// Total cells an event may allocate (scalars count 1,
    /// strings/lists/records their length).
    pub max_alloc_cells: u64,
    /// Maximum evaluation nesting depth inside any single node function.
    pub max_depth: u64,
}

impl EventLimits {
    /// Limits that never trap.
    pub fn unlimited() -> EventLimits {
        EventLimits {
            fuel: u64::MAX,
            max_alloc_cells: u64::MAX,
            max_depth: u64::MAX,
        }
    }
}

impl Default for EventLimits {
    /// Defaults matching `felm::budget::Budget::default()`: generous for
    /// honest programs, milliseconds-to-trap for runaways.
    fn default() -> EventLimits {
        EventLimits {
            fuel: 2_000_000,
            max_alloc_cells: 16 * 1024 * 1024,
            max_depth: 4096,
        }
    }
}

/// The kind of resource exhaustion that stopped an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// The per-event fuel pool ran out.
    OutOfFuel,
    /// The per-event allocation pool ran out.
    OutOfMemory,
    /// A node function nested deeper than the depth bound.
    DepthExceeded,
    /// The event's wall-clock deadline passed.
    DeadlineExceeded,
}

impl TrapKind {
    /// Stable lower-case label for metrics and wire errors.
    pub fn label(self) -> &'static str {
        match self {
            TrapKind::OutOfFuel => "out_of_fuel",
            TrapKind::OutOfMemory => "out_of_memory",
            TrapKind::DepthExceeded => "depth_exceeded",
            TrapKind::DeadlineExceeded => "deadline_exceeded",
        }
    }

    /// All kinds, in metrics-rendering order.
    pub const ALL: [TrapKind; 4] = [
        TrapKind::OutOfFuel,
        TrapKind::OutOfMemory,
        TrapKind::DepthExceeded,
        TrapKind::DeadlineExceeded,
    ];
}

impl std::fmt::Display for TrapKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A metered evaluator's view of the active governor.
#[derive(Clone, Copy, Debug)]
pub struct GovernorView {
    /// Fuel remaining in the event's shared pool.
    pub fuel_left: u64,
    /// Allocation cells remaining in the event's shared pool.
    pub alloc_left: u64,
    /// Depth bound for this node's evaluation.
    pub max_depth: u64,
    /// The event's wall-clock deadline, if any.
    pub deadline: Option<Instant>,
}

#[derive(Clone, Copy, Debug)]
struct ActiveGovernor {
    fuel_left: u64,
    alloc_left: u64,
    max_depth: u64,
    deadline: Option<Instant>,
    trap: Option<TrapKind>,
}

thread_local! {
    static GOVERNOR: RefCell<Option<ActiveGovernor>> = const { RefCell::new(None) };
}

/// RAII guard for one governed event; restores the previous governor (if
/// any) on drop, so scopes nest safely.
#[derive(Debug)]
pub struct GovernorScope {
    previous: Option<ActiveGovernor>,
}

impl Drop for GovernorScope {
    fn drop(&mut self) {
        GOVERNOR.with(|g| *g.borrow_mut() = self.previous.take());
    }
}

/// Activates a governor for the current thread with fresh pools drawn
/// from `limits` and an optional wall-clock `deadline`. The returned
/// scope must be kept alive for the duration of the event's node
/// computations.
pub fn enter(limits: EventLimits, deadline: Option<Instant>) -> GovernorScope {
    GOVERNOR.with(|g| {
        let previous = g.borrow_mut().replace(ActiveGovernor {
            fuel_left: limits.fuel,
            alloc_left: limits.max_alloc_cells,
            max_depth: limits.max_depth,
            deadline,
            trap: None,
        });
        GovernorScope { previous }
    })
}

/// The limits and remaining pools of the active governor, or `None` when
/// the current computation is ungoverned (the common, zero-overhead
/// case).
pub fn active() -> Option<GovernorView> {
    GOVERNOR.with(|g| {
        g.borrow().map(|a| GovernorView {
            fuel_left: a.fuel_left,
            alloc_left: a.alloc_left,
            max_depth: a.max_depth,
            deadline: a.deadline,
        })
    })
}

/// Draws `fuel` and `alloc` down from the event's shared pools
/// (saturating). Called by an evaluator after it finishes (or traps) so
/// the *next* node computation of the same event sees the reduced pools.
pub fn consume(fuel: u64, alloc: u64) {
    GOVERNOR.with(|g| {
        if let Some(a) = g.borrow_mut().as_mut() {
            a.fuel_left = a.fuel_left.saturating_sub(fuel);
            a.alloc_left = a.alloc_left.saturating_sub(alloc);
        }
    });
}

/// Records a trap on the active governor. The first trap of an event
/// wins; later reports are ignored. A no-op when ungoverned.
pub fn record_trap(kind: TrapKind) {
    GOVERNOR.with(|g| {
        if let Some(a) = g.borrow_mut().as_mut() {
            if a.trap.is_none() {
                a.trap = Some(kind);
            }
        }
    });
}

/// Takes the recorded trap (clearing it), if any.
pub fn take_trap() -> Option<TrapKind> {
    GOVERNOR.with(|g| g.borrow_mut().as_mut().and_then(|a| a.trap.take()))
}

/// Peeks at the recorded trap without clearing it. The scheduler checks
/// this between node computations to stop propagating a trapped event.
pub fn trapped() -> Option<TrapKind> {
    GOVERNOR.with(|g| g.borrow().and_then(|a| a.trap))
}

/// True when the active governor's deadline has passed. Used by the
/// scheduler between node computations; evaluators check the deadline
/// themselves on an amortized tick counter.
pub fn deadline_blown(now: Instant) -> bool {
    GOVERNOR.with(|g| {
        g.borrow()
            .and_then(|a| a.deadline)
            .is_some_and(|d| now >= d)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ungoverned_thread_reports_nothing() {
        assert!(active().is_none());
        assert!(take_trap().is_none());
        consume(10, 10); // no-op
        record_trap(TrapKind::OutOfFuel); // no-op
        assert!(take_trap().is_none());
    }

    #[test]
    fn pools_draw_down_across_consumes() {
        let _scope = enter(
            EventLimits {
                fuel: 100,
                max_alloc_cells: 50,
                max_depth: 8,
            },
            None,
        );
        let v = active().unwrap();
        assert_eq!((v.fuel_left, v.alloc_left, v.max_depth), (100, 50, 8));
        consume(60, 20);
        let v = active().unwrap();
        assert_eq!((v.fuel_left, v.alloc_left), (40, 30));
        consume(1000, 1000); // saturates at zero
        let v = active().unwrap();
        assert_eq!((v.fuel_left, v.alloc_left), (0, 0));
    }

    #[test]
    fn first_trap_wins_and_take_clears() {
        let _scope = enter(EventLimits::default(), None);
        record_trap(TrapKind::OutOfMemory);
        record_trap(TrapKind::OutOfFuel);
        assert_eq!(take_trap(), Some(TrapKind::OutOfMemory));
        assert_eq!(take_trap(), None);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = enter(
            EventLimits {
                fuel: 7,
                ..EventLimits::unlimited()
            },
            None,
        );
        {
            let _inner = enter(
                EventLimits {
                    fuel: 99,
                    ..EventLimits::unlimited()
                },
                None,
            );
            assert_eq!(active().unwrap().fuel_left, 99);
        }
        assert_eq!(active().unwrap().fuel_left, 7);
        drop(outer);
        assert!(active().is_none());
    }

    #[test]
    fn deadline_blown_checks_the_clock() {
        let now = Instant::now();
        let _scope = enter(
            EventLimits::unlimited(),
            Some(now + Duration::from_secs(60)),
        );
        assert!(!deadline_blown(Instant::now()));
        drop(_scope);
        let _scope = enter(EventLimits::unlimited(), Some(now));
        assert!(deadline_blown(Instant::now()));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TrapKind::OutOfFuel.label(), "out_of_fuel");
        assert_eq!(TrapKind::OutOfMemory.label(), "out_of_memory");
        assert_eq!(TrapKind::DepthExceeded.label(), "depth_exceeded");
        assert_eq!(TrapKind::DeadlineExceeded.label(), "deadline_exceeded");
    }
}
