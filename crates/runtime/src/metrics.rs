//! Lightweight in-tree metrics primitives and Prometheus-text exposition.
//!
//! The paper's efficiency claims (§1, §3.3.2) are about latency and avoided
//! work; this module gives every layer of the runtime a uniform way to count
//! and time both. Three live instrument types — [`Counter`], [`Gauge`], and a
//! fixed-bucket log₂-scale [`Histogram`] — are plain atomics so they can be
//! updated from any scheduler thread without locks, and [`Registry`] renders
//! point-in-time samples of them in the Prometheus text exposition format
//! (`# TYPE` lines, cumulative `_bucket{le=...}` series, `_sum`/`_count`).
//!
//! The existing [`crate::Stats`] counters are built on [`Counter`], so one
//! accounting path feeds both the legacy `StatsSnapshot` view and the
//! `/metrics` exposition surface.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of histogram buckets, including the final `+Inf` bucket.
///
/// Bucket `i < HISTOGRAM_BUCKETS - 1` counts observations `v` with
/// `v <= 2^i` (and greater than the previous bound); with nanosecond
/// observations the finite bounds run from 1 ns to `2^30` ns ≈ 1.07 s.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (or track a running maximum).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` exceeds the current value.
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log₂-scale histogram with atomic bucket counters.
///
/// Observations are `u64` (by convention: nanoseconds). Bucket `i` has the
/// inclusive upper bound `2^i`; the last bucket is `+Inf`. The scale is fixed
/// so histograms can be merged across sessions without coordination.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Index of the bucket an observation falls into.
    pub fn bucket_index(v: u64) -> usize {
        let idx = if v <= 1 {
            0
        } else {
            64 - (v - 1).leading_zeros() as usize
        };
        idx.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`None` for the `+Inf` bucket).
    pub fn bucket_le(i: usize) -> Option<u64> {
        if i + 1 < HISTOGRAM_BUCKETS {
            Some(1u64 << i)
        } else {
            None
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy for serialization / merging.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: per-bucket (non-cumulative)
/// counts plus total sum and count.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Non-cumulative count per bucket (`HISTOGRAM_BUCKETS` entries, or empty
    /// for a default/unobserved histogram).
    pub buckets: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Bucket-wise sum, for aggregating per-session histograms into a global
    /// series. Both operands must use the fixed log₂ scale.
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let n = self.buckets.len().max(other.buckets.len());
        let mut buckets = vec![0u64; n];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets.get(i).copied().unwrap_or(0)
                + other.buckets.get(i).copied().unwrap_or(0);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum + other.sum,
            count: self.count + other.count,
        }
    }

    /// Upper bound (in observation units) of the bucket containing the
    /// `q`-quantile observation — a log₂-quantized overestimate of the true
    /// quantile, which is the best a fixed-bucket histogram can do. Returns
    /// 0 for an empty histogram; the `+Inf` bucket reports the largest
    /// finite bound.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            cumulative += self.buckets.get(i).copied().unwrap_or(0);
            if cumulative >= target {
                return Histogram::bucket_le(i).unwrap_or(1u64 << (HISTOGRAM_BUCKETS - 2));
            }
        }
        1u64 << (HISTOGRAM_BUCKETS - 2)
    }

    /// Fraction of observations strictly above `threshold`, quantized to the
    /// log₂ bucket grid: only buckets entirely above `threshold`'s own
    /// bucket count (exact when `threshold` is a power of two, an
    /// underestimate otherwise). The SLO burn-rate families are built on
    /// this — it never over-reports budget violations.
    pub fn fraction_above(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let cut = Histogram::bucket_index(threshold);
        let above: u64 = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(i, _)| *i > cut)
            .map(|(_, b)| *b)
            .sum();
        above as f64 / self.count as f64
    }
}

/// One sample (label set + value) of a metric family. The `suffix` is the
/// typed family-name suffix (`"_bucket"`, `"_sum"`, `"_count"`, or empty),
/// fixed at registration time so rendering never has to classify a sample
/// by inspecting its label text — label *values* are user-controlled (e.g.
/// ad-hoc session sources) and may legally contain `le="` or `quantile="`.
#[derive(Debug)]
struct Sample {
    labels: String, // pre-rendered `{k="v",...}` or empty
    suffix: &'static str,
    value: String,
}

/// One metric family: name, type, help, and its samples.
#[derive(Debug)]
struct Family {
    name: String,
    kind: &'static str,
    help: String,
    samples: Vec<Sample>,
}

/// A collection of metric families that renders as Prometheus text.
///
/// Callers register point-in-time values (there is no live registration —
/// instruments stay owned by the subsystems that update them and are sampled
/// at exposition time). Families keep insertion order; repeated registrations
/// of the same name append samples to the existing family.
#[derive(Debug, Default)]
pub struct Registry {
    families: Vec<Family>,
}

/// Escapes a label value per the Prometheus text format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a label set as `{k="v",...}`, or an empty string for no labels.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Renders a label set with one extra trailing label (used for `le` /
/// `quantile`).
fn render_labels_plus(labels: &[(&str, &str)], key: &str, value: &str) -> String {
    let mut all: Vec<(&str, &str)> = labels.to_vec();
    all.push((key, value));
    render_labels(&all)
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn family(&mut self, name: &str, kind: &'static str, help: &str) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            return &mut self.families[i];
        }
        self.families.push(Family {
            name: name.to_string(),
            kind,
            help: help.to_string(),
            samples: Vec::new(),
        });
        self.families.last_mut().expect("just pushed")
    }

    /// Registers a counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        let labels = render_labels(labels);
        self.family(name, "counter", help).samples.push(Sample {
            labels,
            suffix: "",
            value: value.to_string(),
        });
    }

    /// Registers a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: i64) {
        let labels = render_labels(labels);
        self.family(name, "gauge", help).samples.push(Sample {
            labels,
            suffix: "",
            value: value.to_string(),
        });
    }

    /// Registers a gauge sample with a fractional value (a ratio, a burn
    /// rate, a quantile in seconds).
    pub fn gauge_f64(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let labels = render_labels(labels);
        self.family(name, "gauge", help).samples.push(Sample {
            labels,
            suffix: "",
            value: format!("{value}"),
        });
    }

    /// Registers a histogram sample from a snapshot, scaling each bucket
    /// bound by `scale` (e.g. `1e-9` to expose nanosecond observations in
    /// seconds). Buckets are rendered cumulatively with `le` labels, plus
    /// `_sum` and `_count` series.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
        scale: f64,
    ) {
        let mut cumulative = 0u64;
        let fam = self.family(name, "histogram", help);
        for i in 0..HISTOGRAM_BUCKETS {
            cumulative += snap.buckets.get(i).copied().unwrap_or(0);
            let le = match Histogram::bucket_le(i) {
                Some(bound) => format!("{}", bound as f64 * scale),
                None => "+Inf".to_string(),
            };
            fam.samples.push(Sample {
                labels: render_labels_plus(labels, "le", &le),
                suffix: "_bucket",
                value: cumulative.to_string(),
            });
        }
        fam.samples.push(Sample {
            labels: render_labels(labels),
            suffix: "_sum",
            value: format!("{}", snap.sum as f64 * scale),
        });
        fam.samples.push(Sample {
            labels: render_labels(labels),
            suffix: "_count",
            value: snap.count.to_string(),
        });
    }

    /// Registers a summary sample: pre-computed quantiles plus sum and count.
    pub fn summary(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        quantiles: &[(f64, f64)],
        sum: f64,
        count: u64,
    ) {
        let fam = self.family(name, "summary", help);
        for (q, v) in quantiles {
            fam.samples.push(Sample {
                labels: render_labels_plus(labels, "quantile", &format!("{q}")),
                suffix: "",
                value: format!("{v}"),
            });
        }
        fam.samples.push(Sample {
            labels: render_labels(labels),
            suffix: "_sum",
            value: format!("{sum}"),
        });
        fam.samples.push(Sample {
            labels: render_labels(labels),
            suffix: "_count",
            value: count.to_string(),
        });
    }

    /// Renders all families in the Prometheus text exposition format. Each
    /// sample carries its typed name suffix from registration, so no label
    /// inspection happens here — hostile label values render correctly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind));
            for s in &fam.samples {
                out.push_str(&format!(
                    "{}{}{} {}\n",
                    fam.name, s.suffix, s.labels, s.value
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // v <= 2^i lands in bucket i (first bound 2^0 = 1).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_le(0), Some(1));
        assert_eq!(Histogram::bucket_le(4), Some(16));
        assert_eq!(Histogram::bucket_le(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn histogram_observe_and_merge() {
        let h = Histogram::new();
        h.observe(1);
        h.observe(100);
        h.observe(1_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 1_000_101);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 3);
        let merged = snap.merged(&snap);
        assert_eq!(merged.count, 6);
        assert_eq!(merged.buckets.iter().sum::<u64>(), 6);
    }

    #[test]
    fn histogram_snapshot_roundtrips_through_json() {
        let h = Histogram::new();
        h.observe(42);
        let snap = h.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let mut reg = Registry::new();
        reg.counter("elm_events_total", "Events processed.", &[], 12);
        reg.gauge(
            "elm_shard_queue_depth",
            "Queued events per shard.",
            &[("shard", "0")],
            3,
        );
        let h = Histogram::new();
        h.observe(1);
        h.observe(2_000_000_000);
        reg.histogram(
            "elm_node_compute_seconds",
            "Per-node compute time.",
            &[("node", "1")],
            &h.snapshot(),
            1e-9,
        );
        reg.summary(
            "elm_ingest_latency_seconds",
            "Ingest-to-output latency.",
            &[],
            &[(0.5, 0.001), (0.99, 0.004)],
            1.5,
            100,
        );
        let text = reg.render();
        assert!(text.contains("# TYPE elm_events_total counter"));
        assert!(text.contains("elm_events_total 12"));
        assert!(text.contains("elm_shard_queue_depth{shard=\"0\"} 3"));
        assert!(text.contains("# TYPE elm_node_compute_seconds histogram"));
        assert!(text.contains("elm_node_compute_seconds_bucket{node=\"1\",le=\"+Inf\"} 2"));
        assert!(text.contains("elm_node_compute_seconds_count{node=\"1\"} 2"));
        assert!(text.contains("elm_ingest_latency_seconds{quantile=\"0.5\"} 0.001"));
        assert!(text.contains("elm_ingest_latency_seconds_count 100"));
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("elm_node_compute_seconds_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn hostile_label_values_escape_and_render_typed_suffixes() {
        // Label values that mimic the renderer's own syntax: a histogram
        // label ending in `le="..."`, quotes, backslashes, and newlines.
        // Before suffixes were typed per sample, the renderer classified
        // bucket-vs-sum/count lines by scanning labels for `le="` — these
        // values broke that pairing.
        let mut reg = Registry::new();
        let h = Histogram::new();
        h.observe(3);
        reg.histogram(
            "elm_node_compute_seconds",
            "Per-node compute time.",
            &[("label", "merge le=\"0.5\" of a\\b\nc")],
            &h.snapshot(),
            1e-9,
        );
        reg.summary(
            "elm_latency_seconds",
            "Latency.",
            &[("session", "quantile=\"0.99\"")],
            &[(0.5, 0.001)],
            0.5,
            1,
        );
        let text = reg.render();
        // Escaping: backslash, quote, newline all escaped in place.
        assert!(
            text.contains("label=\"merge le=\\\"0.5\\\" of a\\\\b\\nc\""),
            "{text}"
        );
        // The hostile histogram still renders exactly 32 bucket lines plus
        // one _sum and one _count.
        let buckets = text
            .lines()
            .filter(|l| l.starts_with("elm_node_compute_seconds_bucket{"))
            .count();
        assert_eq!(buckets, HISTOGRAM_BUCKETS, "{text}");
        assert_eq!(
            text.lines()
                .filter(|l| l.starts_with("elm_node_compute_seconds_sum{"))
                .count(),
            1,
            "{text}"
        );
        assert_eq!(
            text.lines()
                .filter(|l| l.starts_with("elm_node_compute_seconds_count{"))
                .count(),
            1,
            "{text}"
        );
        // The summary's hostile session label must not be mistaken for a
        // quantile sample: exactly one quantile line, one sum, one count.
        assert!(
            text.contains(
                "elm_latency_seconds{session=\"quantile=\\\"0.99\\\"\",quantile=\"0.5\"} 0.001"
            ),
            "{text}"
        );
        assert!(
            text.contains("elm_latency_seconds_sum{session=\"quantile=\\\"0.99\\\"\"} 0.5"),
            "{text}"
        );
        assert!(
            text.contains("elm_latency_seconds_count{session=\"quantile=\\\"0.99\\\"\"} 1"),
            "{text}"
        );
        // Every non-comment line still parses as `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .rsplit_once(' ')
                        .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "unparseable line: {line}"
            );
        }
    }

    #[test]
    fn snapshot_quantile_and_fraction_above() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe(1_000); // bucket le=1024
        }
        for _ in 0..10 {
            h.observe(1_000_000); // bucket le=2^20
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), 1024);
        assert_eq!(snap.quantile(0.9), 1024);
        assert_eq!(snap.quantile(0.99), 1 << 20);
        assert_eq!(snap.quantile(1.0), 1 << 20);
        // Exactly the slow 10% sit above the 2^14 boundary.
        let frac = snap.fraction_above(1 << 14);
        assert!((frac - 0.10).abs() < 1e-9, "{frac}");
        assert_eq!(snap.fraction_above(u64::MAX), 0.0);
        assert_eq!(HistogramSnapshot::default().quantile(0.99), 0);
        assert_eq!(HistogramSnapshot::default().fraction_above(0), 0.0);
    }
}
