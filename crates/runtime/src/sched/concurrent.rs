//! The concurrent, pipelined scheduler — the paper's actual semantics.
//!
//! This is a direct Rust instantiation of the translation to Concurrent ML
//! (paper §3.3.2, Figs. 9–11):
//!
//! * each signal-graph node runs on **its own thread** of control,
//! * each edge is an **unbounded FIFO queue** (a crossbeam channel; CML's
//!   `mailbox`),
//! * a **global event dispatcher** thread assigns every event a position in
//!   the total order and notifies *all* source nodes (CML's `eventNotify`
//!   multicast channel): the one relevant source emits `Change v`, every
//!   other source emits `NoChange`, so each node consumes exactly one
//!   message per incoming edge per event,
//! * an `async s` node is two threads: a *listener* subscribed to the inner
//!   signal that buffers `Change` values and posts fresh events to the
//!   dispatcher (`send newEvent id`), and a *source* participating in the
//!   primary graph like any input.
//!
//! Because edges are queues, processing is **pipelined**: event *k+1* can
//! enter the graph while event *k* is still being computed downstream, yet
//! per-edge FIFO order plus the dispatcher's total order preserve the
//! synchronous semantics (differentially tested against
//! [`crate::sched::sync::SyncRuntime`]).
//!
//! # Quiescence
//!
//! Test and harness code must know when all in-flight events have fully
//! propagated. CML's original formulation never terminates; we add a *flush
//! protocol*: the dispatcher broadcasts a `Flush(round)` marker which
//! travels every edge in FIFO order behind all outstanding `Step` messages;
//! async listeners acknowledge markers back to the dispatcher. A flush
//! round that completes without any new event being dispatched proves the
//! graph quiescent. Markers are invisible to node behaviors.

use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::behavior::StepInputs;
use crate::error::RunError;
use crate::event::{Occurrence, OutputEvent, Propagated};
use crate::graph::{NodeId, NodeKind, SignalGraph};
use crate::stats::Stats;
use crate::tracing::{NodeSpan, SpanKind, TraceId, Tracer};
use crate::value::Value;

/// Shared pending-value buffer between an async node's listener half and
/// its source half: completed inner values awaiting re-injection, each
/// carrying the trace id of the round that produced it.
type PendingBuf = Arc<Mutex<VecDeque<(Value, TraceId)>>>;

/// A message on a signal-graph edge.
#[derive(Clone, Debug)]
enum Msg {
    /// One event round: the globally ordered seq, the source that fired,
    /// and this edge's `Change`/`NoChange` payload.
    Step {
        seq: u64,
        source: NodeId,
        prop: Propagated,
        /// Causal trace of the round ([`TraceId::NONE`] when untraced).
        trace: TraceId,
        /// Dispatch tick of the round (tracer clock; 0 when untraced), so
        /// every node can report its queue wait for this event.
        at_ns: u64,
    },
    /// Quiescence marker (see module docs).
    Flush(u64),
    /// Orderly shutdown.
    Stop,
}

/// Dispatcher broadcast to one source node.
#[derive(Clone, Debug)]
enum SourceCmd {
    Step {
        seq: u64,
        source: NodeId,
        /// True if this event is relevant to the receiving source.
        relevant: bool,
        /// New value, for relevant *input* sources.
        payload: Option<Value>,
        /// Causal trace of the round ([`TraceId::NONE`] when untraced).
        trace: TraceId,
        /// Dispatch tick of the round (tracer clock; 0 when untraced).
        at_ns: u64,
    },
    Flush(u64),
    Stop,
}

/// Control messages into the dispatcher thread.
#[derive(Debug)]
enum Ctrl {
    /// An external input event (CML `newEvent` with payload).
    Event(Occurrence),
    /// An `async` node has a buffered value ready (CML `send newEvent id`);
    /// the trace id of the round that buffered the value rides along so the
    /// handoff stays in the originating causal trace.
    AsyncReady(NodeId, TraceId),
    /// Flush acknowledgement from an async listener.
    FlushAck(u64),
    /// Harness request: flush until quiescent, then report the final round.
    Quiesce,
    /// Harness request: shut everything down.
    Stop,
}

/// Message arriving at the harness-held sink channel.
#[derive(Debug)]
enum SinkMsg {
    Step(OutputEvent),
    Flush(u64),
}

/// A running concurrent (thread-per-node) execution of a [`SignalGraph`].
///
/// ```
/// use elm_runtime::{ConcurrentRuntime, GraphBuilder, Occurrence, Value};
///
/// let mut g = GraphBuilder::new();
/// let x = g.input("Mouse.x", 0i64);
/// let sq = g.lift1("square", |v| Value::Int(v.as_int().unwrap().pow(2)), x);
/// let graph = g.finish(sq).unwrap();
///
/// let mut rt = ConcurrentRuntime::start(&graph);
/// rt.feed(Occurrence::input(x, 9i64)).unwrap();
/// let outs = rt.drain().unwrap();
/// assert_eq!(outs[0].value(), Some(&Value::Int(81)));
/// rt.stop();
/// ```
pub struct ConcurrentRuntime {
    ctrl_tx: Sender<Ctrl>,
    quiet_rx: Receiver<u64>,
    sink_rx: Receiver<SinkMsg>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<Stats>,
    input_ok: Vec<bool>,
    stopped: bool,
    tracer: Option<Arc<Tracer>>,
}

impl ConcurrentRuntime {
    /// Spawns the dispatcher and one thread per node (plus one listener
    /// thread per `async` node) and starts executing `graph`.
    pub fn start(graph: &SignalGraph) -> Self {
        Self::start_with_tracer(graph, None)
    }

    /// Like [`ConcurrentRuntime::start`], but with an optional tracing hub:
    /// the dispatcher stamps every event with a trace id and every node that
    /// applies or recomputes records a span.
    pub fn start_with_tracer(graph: &SignalGraph, tracer: Option<Arc<Tracer>>) -> Self {
        let stats = Stats::new();
        let (ctrl_tx, ctrl_rx) = unbounded::<Ctrl>();
        let (quiet_tx, quiet_rx) = unbounded::<u64>();
        let (sink_tx, sink_rx) = unbounded::<SinkMsg>();

        let n = graph.len();
        let mut handles = Vec::new();

        // One subscriber list per node; edge channels are created as
        // children declare their subscriptions.
        let mut subs: Vec<Vec<Sender<Msg>>> = vec![Vec::new(); n];
        // Per compute node: receivers in parent order.
        let mut compute_rx: Vec<Option<Vec<Receiver<Msg>>>> = (0..n).map(|_| None).collect();
        for node in graph.nodes() {
            if let NodeKind::Compute { .. } = node.kind {
                let mut rxs = Vec::with_capacity(node.parents.len());
                for p in &node.parents {
                    let (tx, rx) = unbounded::<Msg>();
                    subs[p.index()].push(tx);
                    rxs.push(rx);
                }
                compute_rx[node.id.index()] = Some(rxs);
            }
        }

        // Async plumbing: pending-value buffers shared between listener and
        // source halves, plus the listener's subscription to the inner node.
        let mut async_listeners = 0usize;
        let mut pending: Vec<Option<PendingBuf>> = (0..n).map(|_| None).collect();
        let mut listener_rx: Vec<Option<Receiver<Msg>>> = (0..n).map(|_| None).collect();
        for node in graph.nodes() {
            if let NodeKind::Async { inner } = node.kind {
                let (tx, rx) = unbounded::<Msg>();
                subs[inner.index()].push(tx);
                listener_rx[node.id.index()] = Some(rx);
                pending[node.id.index()] = Some(Arc::new(Mutex::new(VecDeque::new())));
                async_listeners += 1;
            }
        }

        // The harness subscribes to the output node.
        {
            let (tx, rx) = unbounded::<Msg>();
            subs[graph.output().index()].push(tx);
            let sink_tx = sink_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name("sig-sink".into())
                    .spawn(move || sink_loop(rx, sink_tx))
                    .expect("spawn sink thread"),
            );
        }

        // Dispatcher broadcast channels, one per source node.
        let mut source_cmd_tx: Vec<(NodeId, Sender<SourceCmd>)> = Vec::new();

        // Spawn node threads.
        let mut subs = subs; // consumed below
        for node in graph.nodes() {
            let my_subs = std::mem::take(&mut subs[node.id.index()]);
            match &node.kind {
                NodeKind::Input { .. } => {
                    let (tx, rx) = unbounded::<SourceCmd>();
                    source_cmd_tx.push((node.id, tx));
                    let stats = stats.clone();
                    let default = node.default.clone();
                    let tracer = tracer.clone();
                    let id = node.id;
                    handles.push(
                        std::thread::Builder::new()
                            .name(format!("sig-input-{}", node.label))
                            .spawn(move || input_loop(rx, my_subs, default, stats, tracer, id))
                            .expect("spawn input thread"),
                    );
                }
                NodeKind::Async { inner } => {
                    let buf = pending[node.id.index()]
                        .clone()
                        .expect("async node has a pending buffer");
                    // Source half.
                    let (tx, rx) = unbounded::<SourceCmd>();
                    source_cmd_tx.push((node.id, tx));
                    {
                        let stats = stats.clone();
                        let buf = buf.clone();
                        let tracer = tracer.clone();
                        let id = node.id;
                        handles.push(
                            std::thread::Builder::new()
                                .name(format!("sig-async-src-{}", node.id))
                                .spawn(move || {
                                    async_source_loop(rx, my_subs, buf, stats, tracer, id)
                                })
                                .expect("spawn async source thread"),
                        );
                    }
                    // Listener half.
                    let rx = listener_rx[node.id.index()]
                        .take()
                        .expect("async node has a listener subscription");
                    let ctrl = ctrl_tx.clone();
                    let id = node.id;
                    let stats = stats.clone();
                    let _ = inner;
                    handles.push(
                        std::thread::Builder::new()
                            .name(format!("sig-async-listen-{}", node.id))
                            .spawn(move || async_listener_loop(rx, buf, ctrl, id, stats))
                            .expect("spawn async listener thread"),
                    );
                }
                NodeKind::Compute { spec } => {
                    let rxs = compute_rx[node.id.index()]
                        .take()
                        .expect("compute node has parent receivers");
                    let behavior = spec.instantiate();
                    let parent_defaults: Vec<Value> = node
                        .parents
                        .iter()
                        .map(|p| graph.node(*p).default.clone())
                        .collect();
                    let default = node.default.clone();
                    let stats = stats.clone();
                    let label = node.label.clone();
                    let tracer = tracer.clone();
                    let id = node.id;
                    handles.push(
                        std::thread::Builder::new()
                            .name(format!("sig-{label}"))
                            .spawn(move || {
                                compute_loop(
                                    rxs,
                                    my_subs,
                                    behavior,
                                    parent_defaults,
                                    default,
                                    stats,
                                    tracer,
                                    id,
                                )
                            })
                            .expect("spawn compute thread"),
                    );
                }
            }
        }

        // Dispatcher thread.
        {
            let stats = stats.clone();
            let tracer = tracer.clone();
            handles.push(
                std::thread::Builder::new()
                    .name("sig-dispatcher".into())
                    .spawn(move || {
                        dispatcher_loop(
                            ctrl_rx,
                            source_cmd_tx,
                            quiet_tx,
                            async_listeners,
                            stats,
                            tracer,
                        )
                    })
                    .expect("spawn dispatcher thread"),
            );
        }

        let input_ok = graph
            .nodes()
            .iter()
            .map(|nd| matches!(nd.kind, NodeKind::Input { .. }))
            .collect();

        ConcurrentRuntime {
            ctrl_tx,
            quiet_rx,
            sink_rx,
            handles,
            stats,
            input_ok,
            stopped: false,
            tracer,
        }
    }

    /// The execution counters for this run.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    /// The attached tracing hub, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Sends an external input event to the dispatcher. Returns immediately;
    /// propagation happens on the worker threads.
    ///
    /// # Errors
    ///
    /// Fails if the runtime is stopped or `occ` does not target an input
    /// source with a payload.
    pub fn feed(&self, occ: Occurrence) -> Result<(), RunError> {
        if self.stopped {
            return Err(RunError::Stopped);
        }
        if !self
            .input_ok
            .get(occ.source.index())
            .copied()
            .unwrap_or(false)
        {
            return Err(RunError::NotASource(occ.source));
        }
        if occ.payload.is_none() {
            return Err(RunError::MissingPayload(occ.source));
        }
        self.ctrl_tx
            .send(Ctrl::Event(occ))
            .map_err(|_| RunError::WorkerLost("dispatcher".into()))
    }

    /// Receives the next output event, blocking up to `timeout`. Returns
    /// `None` on timeout. Flush markers are transparent.
    pub fn next_output(&self, timeout: Duration) -> Option<OutputEvent> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.checked_duration_since(std::time::Instant::now())?;
            match self.sink_rx.recv_timeout(remaining) {
                Ok(SinkMsg::Step(ev)) => return Some(ev),
                Ok(SinkMsg::Flush(_)) => continue,
                Err(_) => return None,
            }
        }
    }

    /// Waits until every in-flight event (including `async`-generated ones)
    /// has fully propagated, then returns all output events observed since
    /// the last drain, in dispatcher order.
    ///
    /// # Errors
    ///
    /// Fails if worker threads have died.
    pub fn drain(&mut self) -> Result<Vec<OutputEvent>, RunError> {
        if self.stopped {
            return Err(RunError::Stopped);
        }
        self.ctrl_tx
            .send(Ctrl::Quiesce)
            .map_err(|_| RunError::WorkerLost("dispatcher".into()))?;
        // Generous bound: protects the caller from a hung graph (e.g. a
        // node blocked forever in user code) instead of deadlocking.
        const DRAIN_TIMEOUT: Duration = Duration::from_secs(300);
        let final_round = self
            .quiet_rx
            .recv_timeout(DRAIN_TIMEOUT)
            .map_err(|_| RunError::WorkerLost("dispatcher quiet channel".into()))?;
        let mut out = Vec::new();
        loop {
            match self.sink_rx.recv_timeout(DRAIN_TIMEOUT) {
                Ok(SinkMsg::Step(ev)) => out.push(ev),
                Ok(SinkMsg::Flush(r)) if r >= final_round => break,
                Ok(SinkMsg::Flush(_)) => continue,
                Err(_) => return Err(RunError::WorkerLost("sink".into())),
            }
        }
        Ok(out)
    }

    /// Shuts down all worker threads and joins them.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        let _ = self.ctrl_tx.send(Ctrl::Stop);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Convenience: starts a runtime, feeds `trace`, drains, stops.
    ///
    /// # Errors
    ///
    /// Fails if any occurrence is invalid for `graph`.
    pub fn run_trace(
        graph: &SignalGraph,
        trace: impl IntoIterator<Item = Occurrence>,
    ) -> Result<Vec<OutputEvent>, RunError> {
        let mut rt = ConcurrentRuntime::start(graph);
        for occ in trace {
            rt.feed(occ)?;
        }
        let out = rt.drain()?;
        rt.stop();
        Ok(out)
    }
}

impl Drop for ConcurrentRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Worker loops
// ---------------------------------------------------------------------------

fn broadcast(subs: &[Sender<Msg>], msg: &Msg, stats: &Stats) {
    for s in subs {
        if matches!(msg, Msg::Step { .. }) {
            stats.record_message();
        }
        let _ = s.send(msg.clone());
    }
}

/// Input source: Fig. 10's translation of `⟨id, mc, v⟩`.
fn input_loop(
    rx: Receiver<SourceCmd>,
    subs: Vec<Sender<Msg>>,
    _default: Value,
    stats: Arc<Stats>,
    tracer: Option<Arc<Tracer>>,
    id: NodeId,
) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            SourceCmd::Step {
                seq,
                source,
                relevant,
                payload,
                trace,
                at_ns,
            } => {
                let start_ns = match (&tracer, relevant) {
                    (Some(t), true) => t.now_ns(),
                    _ => 0,
                };
                let prop = if relevant {
                    let v = payload.expect("relevant input events carry a payload");
                    Propagated::Change(v)
                } else {
                    Propagated::NoChange
                };
                if relevant {
                    if let Some(t) = &tracer {
                        t.record(NodeSpan {
                            trace,
                            seq,
                            node: id.0,
                            kind: SpanKind::Input,
                            start_ns,
                            end_ns: t.now_ns(),
                            queue_ns: start_ns.saturating_sub(at_ns),
                            changed: true,
                            panicked: false,
                        });
                    }
                }
                broadcast(
                    &subs,
                    &Msg::Step {
                        seq,
                        source,
                        prop,
                        trace,
                        at_ns,
                    },
                    &stats,
                );
            }
            SourceCmd::Flush(r) => broadcast(&subs, &Msg::Flush(r), &stats),
            SourceCmd::Stop => {
                broadcast(&subs, &Msg::Stop, &stats);
                return;
            }
        }
    }
}

/// The source half of an `async` node: emits buffered inner-signal values
/// when the dispatcher says this node's event is up.
fn async_source_loop(
    rx: Receiver<SourceCmd>,
    subs: Vec<Sender<Msg>>,
    buf: PendingBuf,
    stats: Arc<Stats>,
    tracer: Option<Arc<Tracer>>,
    id: NodeId,
) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            SourceCmd::Step {
                seq,
                source,
                relevant,
                trace,
                at_ns,
                ..
            } => {
                let start_ns = match (&tracer, relevant) {
                    (Some(t), true) => t.now_ns(),
                    _ => 0,
                };
                let prop = if relevant {
                    match buf.lock().pop_front() {
                        Some((v, _)) => Propagated::Change(v),
                        // Cannot happen: AsyncReady is sent after the push.
                        None => Propagated::NoChange,
                    }
                } else {
                    Propagated::NoChange
                };
                if relevant {
                    if let Some(t) = &tracer {
                        t.record(NodeSpan {
                            trace,
                            seq,
                            node: id.0,
                            kind: SpanKind::Async,
                            start_ns,
                            end_ns: t.now_ns(),
                            queue_ns: start_ns.saturating_sub(at_ns),
                            changed: prop.is_change(),
                            panicked: false,
                        });
                    }
                }
                broadcast(
                    &subs,
                    &Msg::Step {
                        seq,
                        source,
                        prop,
                        trace,
                        at_ns,
                    },
                    &stats,
                );
            }
            SourceCmd::Flush(r) => broadcast(&subs, &Msg::Flush(r), &stats),
            SourceCmd::Stop => {
                broadcast(&subs, &Msg::Stop, &stats);
                return;
            }
        }
    }
}

/// The listener half of an `async` node: Fig. 10's spawned loop that turns
/// inner `Change`s into fresh dispatcher events. The buffered value keeps
/// its round's trace id so the re-injected event continues the same causal
/// trace.
fn async_listener_loop(
    rx: Receiver<Msg>,
    buf: PendingBuf,
    ctrl: Sender<Ctrl>,
    id: NodeId,
    stats: Arc<Stats>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Step {
                prop: Propagated::Change(v),
                trace,
                ..
            } => {
                buf.lock().push_back((v, trace));
                stats.record_async_event();
                if ctrl.send(Ctrl::AsyncReady(id, trace)).is_err() {
                    return;
                }
            }
            Msg::Step { .. } => {}
            Msg::Flush(r) => {
                if ctrl.send(Ctrl::FlushAck(r)).is_err() {
                    return;
                }
            }
            Msg::Stop => return,
        }
    }
}

/// Compute node: Fig. 10's `liftn`/`foldp` translation, generalized over
/// [`crate::behavior::NodeBehavior`].
#[allow(clippy::too_many_arguments)]
fn compute_loop(
    rxs: Vec<Receiver<Msg>>,
    subs: Vec<Sender<Msg>>,
    mut behavior: Box<dyn crate::behavior::NodeBehavior>,
    mut parent_values: Vec<Value>,
    mut prev: Value,
    stats: Arc<Stats>,
    tracer: Option<Arc<Tracer>>,
    id: NodeId,
) {
    let mut poisoned = false;
    loop {
        // One message per incoming edge per round; blocked until all arrive
        // (paper: "computation at the node is blocked until values are
        // available on all incoming edges").
        let mut msgs = Vec::with_capacity(rxs.len());
        for rx in &rxs {
            match rx.recv() {
                Ok(m) => msgs.push(m),
                Err(_) => return,
            }
        }
        match &msgs[0] {
            Msg::Stop => {
                broadcast(&subs, &Msg::Stop, &stats);
                return;
            }
            Msg::Flush(r) => {
                debug_assert!(msgs.iter().all(|m| matches!(m, Msg::Flush(r2) if r2 == r)));
                broadcast(&subs, &Msg::Flush(*r), &stats);
            }
            Msg::Step {
                seq,
                source,
                trace,
                at_ns,
                ..
            } => {
                let (seq, source, trace, at_ns) = (*seq, *source, *trace, *at_ns);
                let mut changed = vec![false; msgs.len()];
                for (i, m) in msgs.iter().enumerate() {
                    let Msg::Step { seq: s2, prop, .. } = m else {
                        unreachable!("all edges deliver the same round kind in FIFO order");
                    };
                    debug_assert_eq!(*s2, seq, "edges must agree on the event round");
                    if let Propagated::Change(v) = prop {
                        parent_values[i] = v.clone();
                        changed[i] = true;
                    }
                }
                let prop = if poisoned {
                    // A previous panic poisoned this node; keep the message
                    // protocol alive but never compute again.
                    Propagated::NoChange
                } else if changed.iter().any(|c| *c) {
                    stats.record_computation();
                    let vals: Vec<&Value> = parent_values.iter().collect();
                    let start_ns = tracer.as_ref().map_or(0, |t| t.now_ns());
                    // A panicking node function must not deadlock the rest
                    // of the graph: catch it, poison the node, propagate
                    // NoChange so downstream queues stay aligned.
                    let stepped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        behavior.step(StepInputs {
                            changed: &changed,
                            values: &vals,
                            prev: &prev,
                        })
                    }));
                    let panicked = stepped.is_err();
                    let prop = match stepped {
                        Ok(Some(v)) => {
                            prev = v.clone();
                            Propagated::Change(v)
                        }
                        Ok(None) => Propagated::NoChange,
                        Err(_) => {
                            poisoned = true;
                            stats.record_node_panic();
                            Propagated::NoChange
                        }
                    };
                    if let Some(t) = &tracer {
                        t.record(NodeSpan {
                            trace,
                            seq,
                            node: id.0,
                            kind: SpanKind::Compute,
                            start_ns,
                            end_ns: t.now_ns(),
                            queue_ns: start_ns.saturating_sub(at_ns),
                            changed: prop.is_change(),
                            panicked,
                        });
                    }
                    prop
                } else {
                    stats.record_memo_skip();
                    Propagated::NoChange
                };
                broadcast(
                    &subs,
                    &Msg::Step {
                        seq,
                        source,
                        prop,
                        trace,
                        at_ns,
                    },
                    &stats,
                );
            }
        }
    }
}

/// Translates edge messages on the output node into harness-visible events.
fn sink_loop(rx: Receiver<Msg>, sink_tx: Sender<SinkMsg>) {
    while let Ok(msg) = rx.recv() {
        let out = match msg {
            Msg::Step {
                seq, source, prop, ..
            } => SinkMsg::Step(OutputEvent {
                seq,
                source,
                output: prop,
            }),
            Msg::Flush(r) => SinkMsg::Flush(r),
            Msg::Stop => return,
        };
        if sink_tx.send(out).is_err() {
            return;
        }
    }
}

/// The global event dispatcher (paper Fig. 11): totally orders events and
/// notifies every source of every event. Extended with the flush protocol
/// for quiescence detection.
fn dispatcher_loop(
    ctrl_rx: Receiver<Ctrl>,
    sources: Vec<(NodeId, Sender<SourceCmd>)>,
    quiet_tx: Sender<u64>,
    async_listeners: usize,
    stats: Arc<Stats>,
    tracer: Option<Arc<Tracer>>,
) {
    let mut seq: u64 = 0;
    let mut flush_round: u64 = 0;

    // Assigns (or keeps) the trace id and dispatch tick of one event round.
    let stamp = |trace: TraceId| -> (TraceId, u64) {
        match &tracer {
            Some(t) if t.is_enabled() => (t.ensure_trace(trace), t.now_ns()),
            _ => (trace, 0),
        }
    };
    let broadcast_step =
        |seq: u64, occ_source: NodeId, payload: Option<Value>, trace: TraceId, at_ns: u64| {
            for (id, tx) in &sources {
                let relevant = *id == occ_source;
                let _ = tx.send(SourceCmd::Step {
                    seq,
                    source: occ_source,
                    relevant,
                    payload: if relevant { payload.clone() } else { None },
                    trace,
                    at_ns,
                });
            }
        };
    let broadcast_flush = |r: u64| {
        for (_, tx) in &sources {
            let _ = tx.send(SourceCmd::Flush(r));
        }
    };
    let broadcast_stop = || {
        for (_, tx) in &sources {
            let _ = tx.send(SourceCmd::Stop);
        }
    };

    while let Ok(ctrl) = ctrl_rx.recv() {
        match ctrl {
            Ctrl::Event(occ) => {
                stats.record_event();
                let (trace, at_ns) = stamp(occ.trace);
                broadcast_step(seq, occ.source, occ.payload, trace, at_ns);
                seq += 1;
            }
            Ctrl::AsyncReady(id, trace) => {
                stats.record_event();
                let (trace, at_ns) = stamp(trace);
                broadcast_step(seq, id, None, trace, at_ns);
                seq += 1;
            }
            Ctrl::FlushAck(_) => {} // stale ack from an earlier drain
            Ctrl::Stop => {
                broadcast_stop();
                return;
            }
            Ctrl::Quiesce => {
                // Flush repeatedly until a round completes with no new
                // events dispatched in the meantime.
                loop {
                    flush_round += 1;
                    let round = flush_round;
                    broadcast_flush(round);
                    let mut acks = 0usize;
                    let mut new_events = 0usize;
                    while acks < async_listeners {
                        match ctrl_rx.recv() {
                            Ok(Ctrl::FlushAck(r)) if r == round => acks += 1,
                            Ok(Ctrl::FlushAck(_)) => {}
                            Ok(Ctrl::Event(occ)) => {
                                stats.record_event();
                                let (trace, at_ns) = stamp(occ.trace);
                                broadcast_step(seq, occ.source, occ.payload, trace, at_ns);
                                seq += 1;
                                new_events += 1;
                            }
                            Ok(Ctrl::AsyncReady(id, trace)) => {
                                stats.record_event();
                                let (trace, at_ns) = stamp(trace);
                                broadcast_step(seq, id, None, trace, at_ns);
                                seq += 1;
                                new_events += 1;
                            }
                            Ok(Ctrl::Quiesce) => {} // collapse nested drains
                            Ok(Ctrl::Stop) => {
                                broadcast_stop();
                                return;
                            }
                            Err(_) => return,
                        }
                    }
                    if new_events == 0 {
                        let _ = quiet_tx.send(round);
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::changed_values;
    use crate::graph::GraphBuilder;
    use crate::sched::sync::SyncRuntime;

    fn int(v: &Value) -> i64 {
        v.as_int().unwrap()
    }

    #[test]
    fn concurrent_matches_sync_on_async_free_graph() {
        let build = || {
            let mut g = GraphBuilder::new();
            let a = g.input("a", 0i64);
            let b = g.input("b", 10i64);
            let sum = g.lift2("sum", |x, y| Value::Int(int(x) + int(y)), a, b);
            let acc = g.foldp("acc", |v, s| Value::Int(int(v) + int(s)), 0i64, sum);
            let graph = g.finish(acc).unwrap();
            (graph, a, b)
        };
        let (graph, a, b) = build();
        let trace = vec![
            Occurrence::input(a, 1i64),
            Occurrence::input(b, 2i64),
            Occurrence::input(a, 3i64),
            Occurrence::input(b, 4i64),
            Occurrence::input(a, 5i64),
        ];
        let sync_out = SyncRuntime::run_trace(&graph, trace.clone()).unwrap();
        let conc_out = ConcurrentRuntime::run_trace(&graph, trace).unwrap();
        assert_eq!(sync_out, conc_out);
    }

    #[test]
    fn pipelined_execution_preserves_global_order_on_deep_chain() {
        let mut g = GraphBuilder::new();
        let i = g.input("i", 0i64);
        let mut cur = i;
        for d in 0..32 {
            cur = g.lift1(format!("inc{d}"), |v| Value::Int(int(v) + 1), cur);
        }
        let graph = g.finish(cur).unwrap();
        let trace: Vec<_> = (0..50).map(|k| Occurrence::input(i, k as i64)).collect();
        let outs = ConcurrentRuntime::run_trace(&graph, trace).unwrap();
        let vals = changed_values(&outs);
        assert_eq!(vals.len(), 50);
        for (k, v) in vals.iter().enumerate() {
            assert_eq!(int(v), k as i64 + 32);
        }
        // Sequence numbers are the dispatcher's total order.
        let seqs: Vec<u64> = outs.iter().map(|o| o.seq).collect();
        assert_eq!(seqs, (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn async_decouples_slow_subgraph() {
        // §5's asyncEg: lift2 (,) Mouse.x (async (lift f Mouse.y))
        let mut g = GraphBuilder::new();
        let mx = g.input("Mouse.x", 0i64);
        let my = g.input("Mouse.y", 0i64);
        let slow = g.lift1(
            "f",
            |v| {
                std::thread::sleep(Duration::from_millis(5));
                Value::Int(int(v) * 10)
            },
            my,
        );
        let async_slow = g.async_source(slow);
        let pair = g.lift2(
            "(,)",
            |x, fy| Value::pair(x.clone(), fy.clone()),
            mx,
            async_slow,
        );
        let graph = g.finish(pair).unwrap();

        let mut rt = ConcurrentRuntime::start(&graph);
        rt.feed(Occurrence::input(my, 1i64)).unwrap();
        for k in 0..20 {
            rt.feed(Occurrence::input(mx, k as i64)).unwrap();
        }
        let outs = rt.drain().unwrap();
        rt.stop();

        // All 20 mouse-x updates appear, in order, uninterrupted by the
        // slow computation; the async result lands eventually.
        let xs: Vec<i64> = outs
            .iter()
            .filter_map(|o| o.value())
            .map(|p| int(p.as_pair().unwrap().0))
            .collect();
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(xs, sorted, "mouse updates must stay in order");
        let final_pair = outs.last().and_then(|o| o.value()).unwrap();
        // After drain, the async value must have arrived (value 10).
        let ys: Vec<i64> = outs
            .iter()
            .filter_map(|o| o.value())
            .map(|p| int(p.as_pair().unwrap().1))
            .collect();
        assert!(
            ys.contains(&10),
            "async result must eventually appear: {ys:?}"
        );
        let _ = final_pair;
    }

    #[test]
    fn async_preserves_per_signal_order() {
        // Values flowing through an async boundary keep their relative
        // order even though they detach from the global order.
        let mut g = GraphBuilder::new();
        let i = g.input("i", 0i64);
        let double = g.lift1("double", |v| Value::Int(int(v) * 2), i);
        let a = g.async_source(double);
        let id = g.lift1("id", |v| v.clone(), a);
        let graph = g.finish(id).unwrap();

        let trace: Vec<_> = (1..=25).map(|k| Occurrence::input(i, k as i64)).collect();
        let outs = ConcurrentRuntime::run_trace(&graph, trace).unwrap();
        let vals: Vec<i64> = changed_values(&outs).iter().map(int).collect();
        assert_eq!(vals, (1..=25).map(|k| k * 2).collect::<Vec<i64>>());
    }

    #[test]
    fn drain_is_reusable_and_incremental() {
        let mut g = GraphBuilder::new();
        let i = g.input("i", 0i64);
        let l = g.lift1("id", |v| v.clone(), i);
        let graph = g.finish(l).unwrap();
        let mut rt = ConcurrentRuntime::start(&graph);

        rt.feed(Occurrence::input(i, 1i64)).unwrap();
        let first = rt.drain().unwrap();
        assert_eq!(changed_values(&first), vec![Value::Int(1)]);

        rt.feed(Occurrence::input(i, 2i64)).unwrap();
        rt.feed(Occurrence::input(i, 3i64)).unwrap();
        let second = rt.drain().unwrap();
        assert_eq!(changed_values(&second), vec![Value::Int(2), Value::Int(3)]);
        rt.stop();
    }

    #[test]
    fn empty_drain_returns_no_events() {
        let mut g = GraphBuilder::new();
        let i = g.input("i", 0i64);
        let graph = g.finish(i).unwrap();
        let mut rt = ConcurrentRuntime::start(&graph);
        assert!(rt.drain().unwrap().is_empty());
        rt.stop();
    }

    #[test]
    fn feed_validates_targets() {
        let mut g = GraphBuilder::new();
        let i = g.input("i", 0i64);
        let l = g.lift1("id", |v| v.clone(), i);
        let a = g.async_source(l);
        let graph = g.finish(a).unwrap();
        let rt = ConcurrentRuntime::start(&graph);
        assert!(matches!(
            rt.feed(Occurrence::input(l, 0i64)),
            Err(RunError::NotASource(_))
        ));
        // Feeding an async source externally is also rejected.
        assert!(matches!(
            rt.feed(Occurrence::input(a, 0i64)),
            Err(RunError::NotASource(_))
        ));
    }

    #[test]
    fn tracer_spans_reconstruct_async_handoff_across_threads() {
        let mut g = GraphBuilder::new();
        let words = g.input("words", Value::str(""));
        let slow = g.lift1("slow", |v| v.clone(), words);
        let a = g.async_source(slow);
        let main = g.lift1("render", |v| v.clone(), a);
        let graph = g.finish(main).unwrap();

        let tracer = crate::tracing::Tracer::for_graph(&graph);
        let mut rt = ConcurrentRuntime::start_with_tracer(&graph, Some(Arc::clone(&tracer)));
        rt.feed(Occurrence::input(words, "cat")).unwrap();
        rt.drain().unwrap();
        rt.stop();

        let spans = tracer.drain_spans();
        let trees = crate::tracing::assemble(&spans, &graph);
        assert_eq!(trees.len(), 1, "handoff must stay in one trace: {spans:?}");
        let tree = &trees[0];
        assert_eq!(
            tree.node_set(),
            crate::tracing::reachable_from(&graph, words)
        );
        let async_span = tree
            .spans
            .iter()
            .position(|s| s.node == a.0)
            .expect("async span present");
        assert_eq!(
            tree.spans[tree.parent[async_span].unwrap()].node,
            slow.0,
            "async span's causal parent is the wrapped inner node"
        );
    }

    #[test]
    fn stop_joins_all_threads() {
        let mut g = GraphBuilder::new();
        let i = g.input("i", 0i64);
        let l = g.lift1("id", |v| v.clone(), i);
        let a = g.async_source(l);
        let m = g.lift1("id2", |v| v.clone(), a);
        let graph = g.finish(m).unwrap();
        let rt = ConcurrentRuntime::start(&graph);
        rt.feed(Occurrence::input(i, 42i64)).unwrap();
        rt.stop(); // must not hang
    }
}
