//! The synchronous scheduler: the paper's *conceptual* semantics.
//!
//! §3.3.2: "Conceptually, signal computation is synchronous: when an event
//! occurs … it is as if the new value propagates completely through the
//! signal graph before the next event is processed." This scheduler does
//! exactly that, single-threaded, one event at a time in global order. It is
//!
//! * the deterministic reference that the concurrent scheduler is tested
//!   against (they must agree on async-free graphs, and per-subgraph order
//!   must be preserved in general), and
//! * the **non-pipelined baseline** for experiment E6 — an event cannot
//!   begin processing until the previous one has fully propagated.
//!
//! `async` nodes still work here: changes of the inner signal are queued and
//! re-enter the event queue as fresh occurrences (FIFO, like the `newEvent`
//! mailbox of Fig. 11), so programs behave identically — only pipelining and
//! wall-clock concurrency are absent.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::behavior::{NodeBehavior, StepInputs};
use crate::error::RunError;
use crate::event::{Occurrence, OutputEvent, Propagated};
use crate::governor::{self, EventLimits, TrapKind};
use crate::graph::{NodeId, NodeKind, SignalGraph};
use crate::stats::Stats;
use crate::tracing::{NodeSpan, SpanKind, TraceId, Tracer};
use crate::value::Value;

/// Single-threaded, globally-ordered executor of a [`SignalGraph`].
///
/// ```
/// use elm_runtime::{GraphBuilder, Occurrence, SyncRuntime, Value};
///
/// let mut g = GraphBuilder::new();
/// let clicks = g.input("Mouse.clicks", Value::Unit);
/// let count = g.foldp("count", |_, acc| Value::Int(acc.as_int().unwrap() + 1), 0i64, clicks);
/// let graph = g.finish(count).unwrap();
///
/// let mut rt = SyncRuntime::new(&graph);
/// rt.feed(Occurrence::input(clicks, Value::Unit)).unwrap();
/// rt.feed(Occurrence::input(clicks, Value::Unit)).unwrap();
/// let outs = rt.run_to_quiescence();
/// assert_eq!(outs.last().unwrap().value(), Some(&Value::Int(2)));
/// ```
pub struct SyncRuntime {
    graph: SignalGraph,
    values: Vec<Value>,
    behaviors: Vec<Option<Box<dyn NodeBehavior>>>,
    pending_async: Vec<VecDeque<(Value, TraceId)>>,
    queue: VecDeque<Occurrence>,
    next_seq: u64,
    stats: Arc<Stats>,
    memoize: bool,
    /// Nodes whose behavior panicked: they emit `NoChange` from then on,
    /// matching the concurrent scheduler's poisoning semantics so hosts
    /// (e.g. the multi-session server) can detect and evict them.
    poisoned: Vec<bool>,
    /// Optional tracing hub. `None` (the default) keeps dispatch on the
    /// untraced fast path.
    tracer: Option<Arc<Tracer>>,
    /// Per-event resource limits; `None` (the default) dispatches
    /// ungoverned with zero overhead.
    limits: Option<EventLimits>,
    /// Default per-event wall-clock deadline, applied when an occurrence
    /// does not carry its own.
    event_timeout: Option<Duration>,
    /// Traps since the last [`SyncRuntime::take_traps`], as
    /// `(seq, kind)` — one entry per trapped (and rolled-back) event.
    trap_log: Vec<(u64, TrapKind)>,
}

/// A point-in-time copy of a [`SyncRuntime`]'s mutable state, sufficient
/// to reconstruct it exactly on a fresh runtime over the same graph.
///
/// Built-in node behaviors are stateless — a `foldp`'s accumulator *is*
/// the node's previous output value — so capturing every node's latest
/// value, the poison flags, the buffered `async` values, and the event
/// queue captures the whole machine. (Only [`crate::Custom`] behaviors
/// can hold hidden state; programs using them get a best-effort restore
/// that re-instantiates the behavior fresh.)
#[derive(Clone, Debug)]
pub struct RuntimeSnapshot {
    fingerprint: u64,
    next_seq: u64,
    values: Vec<Value>,
    poisoned: Vec<bool>,
    pending_async: Vec<VecDeque<(Value, TraceId)>>,
    queue: VecDeque<Occurrence>,
}

impl RuntimeSnapshot {
    /// The structural hash of the graph this snapshot was taken from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The sequence number the runtime would assign to its next event.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Events that were queued but not yet dispatched at snapshot time.
    pub fn queued_events(&self) -> usize {
        self.queue.len()
    }

    /// Converts to the serializable wire form, or `None` if any captured
    /// value is an opaque [`Value::Ext`] (which has no wire encoding —
    /// the shipper then falls back to full-journal replication, which is
    /// still correct, just unbounded by snapshots).
    ///
    /// Trace ids and per-event deadlines are *not* shipped: both are
    /// observability/governance concerns local to the process that
    /// accepted the event, and a replica restoring this snapshot replays
    /// silently (no spans are re-emitted), so dropping them cannot change
    /// any output value.
    pub fn to_wire(&self) -> Option<WireSnapshot> {
        let values = self
            .values
            .iter()
            .map(crate::trace::PlainValue::from_value)
            .collect::<Option<Vec<_>>>()?;
        let pending_async = self
            .pending_async
            .iter()
            .map(|q| {
                q.iter()
                    .map(|(v, _)| crate::trace::PlainValue::from_value(v))
                    .collect::<Option<Vec<_>>>()
            })
            .collect::<Option<Vec<_>>>()?;
        let queue = self
            .queue
            .iter()
            .map(|occ| {
                let payload = match &occ.payload {
                    None => None,
                    Some(v) => Some(crate::trace::PlainValue::from_value(v)?),
                };
                Some(WireOccurrence {
                    source: occ.source.0,
                    payload,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(WireSnapshot {
            fingerprint: self.fingerprint,
            next_seq: self.next_seq,
            values,
            poisoned: self.poisoned.clone(),
            pending_async,
            queue,
        })
    }

    /// Rebuilds a restorable snapshot from its wire form. The inverse of
    /// [`RuntimeSnapshot::to_wire`] up to the documented loss: trace ids
    /// come back as [`TraceId::NONE`] and deadlines as `None`.
    pub fn from_wire(wire: &WireSnapshot) -> RuntimeSnapshot {
        RuntimeSnapshot {
            fingerprint: wire.fingerprint,
            next_seq: wire.next_seq,
            values: wire.values.iter().map(|v| v.to_value()).collect(),
            poisoned: wire.poisoned.clone(),
            pending_async: wire
                .pending_async
                .iter()
                .map(|q| q.iter().map(|v| (v.to_value(), TraceId::NONE)).collect())
                .collect(),
            queue: wire
                .queue
                .iter()
                .map(|occ| Occurrence {
                    source: NodeId(occ.source),
                    payload: occ.payload.as_ref().map(|v| v.to_value()),
                    trace: TraceId::NONE,
                    deadline: None,
                })
                .collect(),
        }
    }
}

/// The serde-serializable form of a [`RuntimeSnapshot`]: values flattened
/// to [`crate::PlainValue`], node ids to raw indices. This is what
/// cluster replication ships to a replica peer — together with the graph
/// fingerprint it carries everything a fresh runtime over the same
/// compiled graph needs to resume byte-identically.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireSnapshot {
    /// Structural hash of the source graph; a restoring peer must check
    /// it against its own compilation of the same program.
    pub fingerprint: u64,
    /// The sequence number the runtime would assign to its next event.
    pub next_seq: u64,
    /// Every node's latest output value, graph order.
    pub values: Vec<crate::trace::PlainValue>,
    /// Per-node poison flags (panicked nodes emit `NoChange` forever).
    pub poisoned: Vec<bool>,
    /// Buffered `async`-node values awaiting re-entry, graph order.
    pub pending_async: Vec<Vec<crate::trace::PlainValue>>,
    /// Events queued but not yet dispatched at snapshot time.
    pub queue: Vec<WireOccurrence>,
}

/// One queued event in a [`WireSnapshot`].
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireOccurrence {
    /// Raw index of the source node.
    pub source: u32,
    /// The payload for input events; `None` for an `async`-ready poke
    /// (whose value is buffered in `pending_async`).
    pub payload: Option<crate::trace::PlainValue>,
}

impl SyncRuntime {
    /// Instantiates runtime state for `graph` with memoization enabled.
    pub fn new(graph: &SignalGraph) -> Self {
        Self::with_memoization(graph, true)
    }

    /// Like [`SyncRuntime::new`], but allows disabling `NoChange`
    /// memoization. Without memoization every node recomputes on every
    /// event and cannot tell whether its inputs changed — the ablation of
    /// experiment E11, which demonstrates both the wasted work *and* the
    /// `foldp` incorrectness the paper warns about (§3.3.2: a key-press
    /// counter must not increment on mouse events).
    pub fn with_memoization(graph: &SignalGraph, memoize: bool) -> Self {
        let values: Vec<Value> = graph.nodes().iter().map(|n| n.default.clone()).collect();
        let behaviors = graph
            .nodes()
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Compute { spec } => Some(spec.instantiate()),
                _ => None,
            })
            .collect();
        let pending_async = graph.nodes().iter().map(|_| VecDeque::new()).collect();
        SyncRuntime {
            graph: graph.clone(),
            values,
            behaviors,
            pending_async,
            queue: VecDeque::new(),
            next_seq: 0,
            stats: Stats::new(),
            memoize,
            poisoned: vec![false; graph.len()],
            tracer: None,
            limits: None,
            event_timeout: None,
            trap_log: Vec::new(),
        }
    }

    /// Installs (or clears) per-event resource governance: `limits`
    /// bounds fuel/allocation/depth shared across all nodes of one
    /// event, and `event_timeout` gives every occurrence without its own
    /// deadline a wall-clock budget. A trapped event is rolled back
    /// completely — values, buffered `async` payloads, and queued
    /// follow-ups are restored, the node is *not* poisoned, and the round
    /// reports `NoChange` — so governance never diverges replayed state.
    pub fn set_governor(&mut self, limits: Option<EventLimits>, event_timeout: Option<Duration>) {
        self.limits = limits;
        self.event_timeout = event_timeout;
    }

    /// Drains the `(seq, kind)` log of events trapped since the last
    /// call.
    pub fn take_traps(&mut self) -> Vec<(u64, TrapKind)> {
        std::mem::take(&mut self.trap_log)
    }

    /// The execution counters for this run.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    /// Attaches a tracing hub: every subsequently dispatched event gets a
    /// trace id and per-node spans.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Some(tracer);
    }

    /// The attached tracing hub, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Current value of any node.
    pub fn value(&self, id: NodeId) -> &Value {
        &self.values[id.index()]
    }

    /// Current value of the output (`main`) node.
    pub fn output_value(&self) -> &Value {
        self.value(self.graph.output())
    }

    /// Number of occurrences waiting in the event queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues an external occurrence.
    ///
    /// # Errors
    ///
    /// Fails if the occurrence does not target an input source of this
    /// graph or carries no payload.
    pub fn feed(&mut self, occ: Occurrence) -> Result<(), RunError> {
        match &self.graph.nodes().get(occ.source.index()).map(|n| &n.kind) {
            Some(NodeKind::Input { .. }) => {
                if occ.payload.is_none() {
                    return Err(RunError::MissingPayload(occ.source));
                }
                self.queue.push_back(occ);
                Ok(())
            }
            _ => Err(RunError::NotASource(occ.source)),
        }
    }

    /// Processes the next queued occurrence, if any, propagating it
    /// completely through the graph. Returns the resulting output event.
    pub fn step(&mut self) -> Option<OutputEvent> {
        let occ = self.queue.pop_front()?;
        Some(self.dispatch(occ))
    }

    /// Processes queued events (including any `async`-generated follow-ups)
    /// until the queue is empty, returning one output event per round.
    pub fn run_to_quiescence(&mut self) -> Vec<OutputEvent> {
        let mut out = Vec::new();
        while let Some(ev) = self.step() {
            out.push(ev);
        }
        out
    }

    /// Convenience: runs a whole input trace on a fresh runtime.
    ///
    /// # Errors
    ///
    /// Fails if any occurrence is invalid for `graph`.
    pub fn run_trace(
        graph: &SignalGraph,
        trace: impl IntoIterator<Item = Occurrence>,
    ) -> Result<Vec<OutputEvent>, RunError> {
        let mut rt = SyncRuntime::new(graph);
        let mut out = Vec::new();
        for occ in trace {
            rt.feed(occ)?;
            // Drain after each external event so async-generated events
            // interleave in FIFO order exactly as the dispatcher would.
            out.extend(rt.run_to_quiescence());
        }
        Ok(out)
    }

    /// Captures the runtime's complete mutable state (cheap: values are
    /// structurally shared, so this is mostly `Arc` bumps).
    pub fn snapshot(&self) -> RuntimeSnapshot {
        RuntimeSnapshot {
            fingerprint: self.graph.fingerprint(),
            next_seq: self.next_seq,
            values: self.values.clone(),
            poisoned: self.poisoned.clone(),
            pending_async: self.pending_async.clone(),
            queue: self.queue.clone(),
        }
    }

    /// Overwrites this runtime's state with `snap`, as if every event the
    /// snapshot had seen had just been replayed here. Behaviors are
    /// re-instantiated fresh (built-ins are stateless; see
    /// [`RuntimeSnapshot`]). Stats counters are *not* restored — they
    /// describe this runtime's own work, and a recovery host adds the
    /// replayed suffix on top.
    ///
    /// # Errors
    ///
    /// Fails with [`RunError::WorkerLost`] if the snapshot was taken from
    /// a structurally different graph.
    pub fn restore(&mut self, snap: &RuntimeSnapshot) -> Result<(), RunError> {
        if snap.fingerprint != self.graph.fingerprint() {
            return Err(RunError::WorkerLost(
                "snapshot does not match this signal graph".to_string(),
            ));
        }
        self.values = snap.values.clone();
        self.poisoned = snap.poisoned.clone();
        self.pending_async = snap.pending_async.clone();
        self.queue = snap.queue.clone();
        self.next_seq = snap.next_seq;
        self.behaviors = self
            .graph
            .nodes()
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Compute { spec } => Some(spec.instantiate()),
                _ => None,
            })
            .collect();
        Ok(())
    }

    fn dispatch(&mut self, occ: Occurrence) -> OutputEvent {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.record_event();

        let n = self.graph.len();
        let mut changed = vec![false; n];

        // Resource governance. Ungoverned dispatch (the default) pays one
        // bool check; governed dispatch activates a thread-local governor
        // that metered node functions draw fuel/allocation from, and keeps
        // an undo log so a trapped event rolls back to a no-op.
        let governed =
            self.limits.is_some() || occ.deadline.is_some() || self.event_timeout.is_some();
        let _scope = governed.then(|| {
            let deadline = occ
                .deadline
                .or_else(|| self.event_timeout.map(|t| Instant::now() + t));
            governor::enter(self.limits.unwrap_or_else(EventLimits::unlimited), deadline)
        });
        let mut undo_values: Vec<(usize, Value)> = Vec::new();
        let mut undo_async_pop: Option<(usize, (Value, TraceId))> = None;
        let mut undo_async_pushes: Vec<usize> = Vec::new();
        let mut undo_queue_pushes = 0usize;

        // Tracing fast path: `tracer` is None (or disabled) in the default
        // configuration, so untraced dispatch pays one Option check.
        let tracer = self.tracer.as_ref().filter(|t| t.is_enabled()).cloned();
        let mut trace = match &tracer {
            Some(t) => t.ensure_trace(occ.trace),
            None => occ.trace,
        };
        let dispatch_ns = tracer.as_ref().map_or(0, |t| t.now_ns());

        // Stage 1: exactly one source is "relevant" to this event; all other
        // sources implicitly emit NoChange (paper §3.3.2).
        let src = occ.source;
        match &self.graph.node(src).kind {
            NodeKind::Input { .. } => {
                let v = occ
                    .payload
                    .clone()
                    .expect("feed() guarantees input occurrences carry payloads");
                if governed {
                    undo_values.push((src.index(), self.values[src.index()].clone()));
                }
                self.values[src.index()] = v;
                changed[src.index()] = true;
                if let Some(t) = &tracer {
                    let now = t.now_ns();
                    t.record(NodeSpan {
                        trace,
                        seq,
                        node: src.0,
                        kind: SpanKind::Input,
                        start_ns: dispatch_ns,
                        end_ns: now,
                        queue_ns: 0,
                        changed: true,
                        panicked: false,
                    });
                }
            }
            NodeKind::Async { .. } => {
                if let Some((v, buffered_trace)) = self.pending_async[src.index()].pop_front() {
                    if governed {
                        undo_async_pop = Some((src.index(), (v.clone(), buffered_trace)));
                        undo_values.push((src.index(), self.values[src.index()].clone()));
                    }
                    self.values[src.index()] = v;
                    changed[src.index()] = true;
                    // The async re-entry continues the trace of the event
                    // whose propagation buffered this value.
                    if !buffered_trace.is_none() {
                        trace = buffered_trace;
                    }
                    if let Some(t) = &tracer {
                        let now = t.now_ns();
                        t.record(NodeSpan {
                            trace,
                            seq,
                            node: src.0,
                            kind: SpanKind::Async,
                            start_ns: dispatch_ns,
                            end_ns: now,
                            queue_ns: 0,
                            changed: true,
                            panicked: false,
                        });
                    }
                }
            }
            NodeKind::Compute { .. } => {
                unreachable!("compute nodes never appear as occurrence sources")
            }
        }

        // Stage 2: propagate in topological (= id) order. Node ids are a
        // topological order by construction, so a single left-to-right pass
        // is a complete synchronous propagation.
        for idx in 0..n {
            if governed && governor::trapped().is_some() {
                // A node function trapped; stop propagating — the whole
                // round is rolled back below.
                break;
            }
            let node = &self.graph.nodes()[idx];
            match &node.kind {
                NodeKind::Input { .. } => {}
                NodeKind::Async { inner } => {
                    // The secondary subgraph produced a change this round:
                    // buffer it and schedule a fresh global event (FIFO).
                    // The buffered value keeps this round's trace id so the
                    // handoff lands in the same causal trace.
                    if changed[inner.index()] {
                        self.pending_async[idx]
                            .push_back((self.values[inner.index()].clone(), trace));
                        self.queue
                            .push_back(Occurrence::async_ready(node.id).with_trace(trace));
                        self.stats.record_async_event();
                        if governed {
                            undo_async_pushes.push(idx);
                            undo_queue_pushes += 1;
                        }
                    }
                }
                NodeKind::Compute { .. } => {
                    self.stats.record_message();
                    if self.poisoned[idx] {
                        // A previous panic poisoned this node; it emits
                        // NoChange forever (same as the concurrent
                        // scheduler, which must keep its message protocol
                        // alive).
                        continue;
                    }
                    let any_changed = node.parents.iter().any(|p| changed[p.index()]);
                    if self.memoize && !any_changed {
                        self.stats.record_memo_skip();
                        continue;
                    }
                    let flags: Vec<bool> = if self.memoize {
                        node.parents.iter().map(|p| changed[p.index()]).collect()
                    } else {
                        // Ablation: without NoChange tracking a node cannot
                        // know which inputs changed; everything looks new.
                        vec![true; node.parents.len()]
                    };
                    let parent_vals: Vec<&Value> = node
                        .parents
                        .iter()
                        .map(|p| &self.values[p.index()])
                        .collect();
                    if governed && governor::deadline_blown(Instant::now()) {
                        // Check between node computations so even
                        // non-metered (native Rust) node functions cannot
                        // extend an event past its deadline unobserved.
                        governor::record_trap(TrapKind::DeadlineExceeded);
                        break;
                    }
                    let prev = self.values[idx].clone();
                    self.stats.record_computation();
                    let behavior = self.behaviors[idx]
                        .as_mut()
                        .expect("compute nodes always have behaviors");
                    let start_ns = tracer.as_ref().map_or(0, |t| t.now_ns());
                    // A panicking node function poisons the node rather
                    // than tearing down the whole runtime — single-threaded
                    // parity with the concurrent scheduler's behavior.
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        behavior.step(StepInputs {
                            changed: &flags,
                            values: &parent_vals,
                            prev: &prev,
                        })
                    }));
                    let panicked = out.is_err();
                    match out {
                        Ok(Some(v)) => {
                            if governed {
                                undo_values.push((idx, prev.clone()));
                            }
                            self.values[idx] = v;
                            changed[idx] = true;
                        }
                        Ok(None) => {}
                        Err(_) => {
                            self.poisoned[idx] = true;
                            self.stats.record_node_panic();
                        }
                    }
                    if let Some(t) = &tracer {
                        let end_ns = t.now_ns();
                        t.record(NodeSpan {
                            trace,
                            seq,
                            node: idx as u32,
                            kind: SpanKind::Compute,
                            start_ns,
                            end_ns,
                            queue_ns: start_ns.saturating_sub(dispatch_ns),
                            changed: changed[idx],
                            panicked,
                        });
                    }
                }
            }
        }

        if governed {
            if let Some(kind) = governor::take_trap() {
                // Roll the whole round back: the trapped event becomes a
                // deterministic no-op. Values are restored, the async pop
                // is un-popped, and this round's async/queue pushes are
                // removed, so replaying the surviving suffix of events on
                // a fresh runtime reproduces this state exactly.
                for (idx, v) in undo_values.into_iter().rev() {
                    self.values[idx] = v;
                }
                for idx in undo_async_pushes.into_iter().rev() {
                    self.pending_async[idx].pop_back();
                }
                for _ in 0..undo_queue_pushes {
                    self.queue.pop_back();
                }
                if let Some((idx, entry)) = undo_async_pop {
                    self.pending_async[idx].push_front(entry);
                }
                self.stats.record_trap();
                self.trap_log.push((seq, kind));
                return OutputEvent {
                    seq,
                    source: src,
                    output: Propagated::NoChange,
                };
            }
        }

        let out_id = self.graph.output();
        let output = if changed[out_id.index()] {
            Propagated::Change(self.values[out_id.index()].clone())
        } else {
            Propagated::NoChange
        };
        OutputEvent {
            seq,
            source: src,
            output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::changed_values;
    use crate::graph::GraphBuilder;

    fn int(v: &Value) -> i64 {
        v.as_int().unwrap()
    }

    #[test]
    fn lift_recomputes_only_on_relevant_events() {
        // Fig. 7 graph: relative mouse position.
        let mut g = GraphBuilder::new();
        let mouse_x = g.input("Mouse.x", 0i64);
        let width = g.input("Window.width", 100i64);
        let rel = g.lift2(
            "ratio",
            |y, z| Value::Int(100 * int(y) / int(z).max(1)),
            mouse_x,
            width,
        );
        let graph = g.finish(rel).unwrap();

        let outs = SyncRuntime::run_trace(
            &graph,
            [
                Occurrence::input(mouse_x, 50i64),
                Occurrence::input(width, 200i64),
                Occurrence::input(mouse_x, 100i64),
            ],
        )
        .unwrap();
        assert_eq!(
            changed_values(&outs),
            vec![Value::Int(50), Value::Int(25), Value::Int(50)]
        );
    }

    #[test]
    fn foldp_counts_only_its_own_events() {
        // §3.3.2: the key-press counter must ignore mouse events.
        let mut g = GraphBuilder::new();
        let keys = g.input("Keyboard.lastPressed", 0i64);
        let mouse = g.input("Mouse.x", 0i64);
        let count = g.foldp("count", |_k, acc| Value::Int(int(acc) + 1), 0i64, keys);
        let both = g.lift2(
            "pair",
            |c, m| Value::pair(c.clone(), m.clone()),
            count,
            mouse,
        );
        let graph = g.finish(both).unwrap();

        let mut rt = SyncRuntime::new(&graph);
        rt.feed(Occurrence::input(keys, 65i64)).unwrap();
        rt.feed(Occurrence::input(mouse, 10i64)).unwrap();
        rt.feed(Occurrence::input(mouse, 20i64)).unwrap();
        rt.feed(Occurrence::input(keys, 66i64)).unwrap();
        rt.run_to_quiescence();
        assert_eq!(int(rt.value(count)), 2);
    }

    #[test]
    fn without_memoization_foldp_is_wrong() {
        // The ablation demonstrates why NoChange is "critical to ensure
        // correct execution" (§3.3.2).
        let mut g = GraphBuilder::new();
        let keys = g.input("keys", 0i64);
        let mouse = g.input("mouse", 0i64);
        let count = g.foldp("count", |_k, acc| Value::Int(int(acc) + 1), 0i64, keys);
        let both = g.lift2(
            "pair",
            |c, m| Value::pair(c.clone(), m.clone()),
            count,
            mouse,
        );
        let graph = g.finish(both).unwrap();

        let mut rt = SyncRuntime::with_memoization(&graph, false);
        for occ in [
            Occurrence::input(keys, 65i64),
            Occurrence::input(mouse, 1i64),
            Occurrence::input(mouse, 2i64),
        ] {
            rt.feed(occ).unwrap();
        }
        rt.run_to_quiescence();
        // One key press, but the broken counter saw all three events.
        assert_eq!(int(rt.value(count)), 3);
    }

    #[test]
    fn memoization_skips_unchanged_subgraphs() {
        let mut g = GraphBuilder::new();
        let a = g.input("a", 0i64);
        let b = g.input("b", 0i64);
        let fa = g.lift1("fa", |v| v.clone(), a);
        let fb = g.lift1("fb", |v| v.clone(), b);
        let join = g.lift2("join", |x, y| Value::pair(x.clone(), y.clone()), fa, fb);
        let graph = g.finish(join).unwrap();

        let mut rt = SyncRuntime::new(&graph);
        rt.feed(Occurrence::input(a, 1i64)).unwrap();
        rt.run_to_quiescence();
        let snap = rt.stats().snapshot();
        // fa and join recomputed; fb was skipped.
        assert_eq!(snap.computations, 2);
        assert_eq!(snap.memo_skips, 1);
    }

    #[test]
    fn async_events_are_queued_fifo_and_processed_later() {
        // Fig. 8(c): primary graph pairs async word-pairs with the mouse.
        let mut g = GraphBuilder::new();
        let words = g.input("words", Value::str(""));
        let translated = g.lift1(
            "toFrench",
            |w| Value::str(format!("fr:{}", w.as_str().unwrap_or(""))),
            words,
        );
        let a = g.async_source(translated);
        let mouse = g.input("mouse", 0i64);
        let main = g.lift2("scene", |t, m| Value::pair(t.clone(), m.clone()), a, mouse);
        let graph = g.finish(main).unwrap();

        let mut rt = SyncRuntime::new(&graph);
        rt.feed(Occurrence::input(words, "cat")).unwrap();
        rt.feed(Occurrence::input(mouse, 5i64)).unwrap();
        let outs = rt.run_to_quiescence();

        // Round 0: words event — secondary subgraph computes, async queues a
        // new event; main does NOT change yet (async emitted NoChange).
        assert_eq!(outs[0].output, Propagated::NoChange);
        // Round 1: mouse event (was queued before the async-generated one).
        assert_eq!(
            outs[1].value().unwrap().as_pair().unwrap().1,
            &Value::Int(5)
        );
        // Round 2: the async event delivers the translation.
        assert_eq!(
            outs[2].value().unwrap().as_pair().unwrap().0,
            &Value::str("fr:cat")
        );
        assert_eq!(rt.stats().async_events(), 1);
        assert_eq!(rt.stats().events(), 3);
    }

    #[test]
    fn async_default_value_is_inner_default() {
        let mut g = GraphBuilder::new();
        let i = g.input("i", 7i64);
        let a = g.async_source(i);
        let graph = g.finish(a).unwrap();
        let rt = SyncRuntime::new(&graph);
        assert_eq!(rt.value(a), &Value::Int(7));
    }

    #[test]
    fn feed_rejects_non_sources_and_missing_payloads() {
        let mut g = GraphBuilder::new();
        let i = g.input("i", 0i64);
        let l = g.lift1("id", |v| v.clone(), i);
        let graph = g.finish(l).unwrap();
        let mut rt = SyncRuntime::new(&graph);
        assert_eq!(
            rt.feed(Occurrence::input(l, 0i64)),
            Err(RunError::NotASource(l))
        );
        assert_eq!(
            rt.feed(Occurrence {
                source: i,
                payload: None,
                trace: TraceId::NONE,
                deadline: None,
            }),
            Err(RunError::MissingPayload(i))
        );
    }

    #[test]
    fn panicking_node_is_poisoned_not_fatal() {
        let mut g = GraphBuilder::new();
        let i = g.input("i", 0i64);
        let risky = g.lift1(
            "risky",
            |v| match v {
                Value::Int(n) if *n < 0 => panic!("negative"),
                v => v.clone(),
            },
            i,
        );
        let graph = g.finish(risky).unwrap();

        let mut rt = SyncRuntime::new(&graph);
        rt.feed(Occurrence::input(i, 3i64)).unwrap();
        rt.feed(Occurrence::input(i, -1i64)).unwrap();
        rt.feed(Occurrence::input(i, 9i64)).unwrap();
        let outs = rt.run_to_quiescence();
        // The panic becomes NoChange; the node never computes again.
        assert_eq!(changed_values(&outs), vec![Value::Int(3)]);
        assert_eq!(rt.stats().node_panics(), 1);
        assert_eq!(rt.value(risky), &Value::Int(3));
    }

    #[test]
    fn snapshot_restore_resumes_exactly() {
        // foldp state lives in the node's prev value, so restore + resume
        // must continue the fold where the snapshot left it.
        let mut g = GraphBuilder::new();
        let clicks = g.input("clicks", Value::Unit);
        let count = g.foldp("count", |_, acc| Value::Int(int(acc) + 1), 0i64, clicks);
        let graph = g.finish(count).unwrap();

        let mut rt = SyncRuntime::new(&graph);
        for _ in 0..3 {
            rt.feed(Occurrence::input(clicks, Value::Unit)).unwrap();
        }
        rt.run_to_quiescence();
        let snap = rt.snapshot();
        assert_eq!(snap.next_seq(), 3);

        let mut fresh = SyncRuntime::new(&graph);
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.value(count), &Value::Int(3));
        fresh.feed(Occurrence::input(clicks, Value::Unit)).unwrap();
        fresh.run_to_quiescence();
        assert_eq!(fresh.value(count), &Value::Int(4));
    }

    #[test]
    fn snapshot_preserves_poisoning_and_queued_events() {
        let mut g = GraphBuilder::new();
        let i = g.input("i", 0i64);
        let risky = g.lift1(
            "risky",
            |v| match v {
                Value::Int(n) if *n < 0 => panic!("negative"),
                v => v.clone(),
            },
            i,
        );
        let graph = g.finish(risky).unwrap();

        let mut rt = SyncRuntime::new(&graph);
        rt.feed(Occurrence::input(i, 3i64)).unwrap();
        rt.feed(Occurrence::input(i, -1i64)).unwrap();
        rt.run_to_quiescence();
        // Queue one event but do not dispatch it before snapshotting.
        rt.feed(Occurrence::input(i, 7i64)).unwrap();
        let snap = rt.snapshot();
        assert_eq!(snap.queued_events(), 1);

        let mut fresh = SyncRuntime::new(&graph);
        fresh.restore(&snap).unwrap();
        let outs = fresh.run_to_quiescence();
        // The poisoned node stays poisoned: the queued event is dispatched
        // but produces NoChange, and no new panic is counted.
        assert_eq!(changed_values(&outs), Vec::<Value>::new());
        assert_eq!(fresh.stats().node_panics(), 0);
        assert_eq!(fresh.value(risky), &Value::Int(3));
    }

    #[test]
    fn restore_rejects_foreign_snapshots() {
        let mut g1 = GraphBuilder::new();
        let a = g1.input("a", 0i64);
        let graph1 = g1.finish(a).unwrap();

        let mut g2 = GraphBuilder::new();
        let b = g2.input("b", 0i64);
        let graph2 = g2.finish(b).unwrap();

        let rt1 = SyncRuntime::new(&graph1);
        let mut rt2 = SyncRuntime::new(&graph2);
        assert!(rt2.restore(&rt1.snapshot()).is_err());
        assert_ne!(graph1.fingerprint(), graph2.fingerprint());
    }

    #[test]
    fn tracer_spans_cover_async_handoff_in_one_trace() {
        let mut g = GraphBuilder::new();
        let words = g.input("words", Value::str(""));
        let slow = g.lift1("slow", |v| v.clone(), words);
        let a = g.async_source(slow);
        let main = g.lift1("render", |v| v.clone(), a);
        let graph = g.finish(main).unwrap();

        let mut rt = SyncRuntime::new(&graph);
        let tracer = Tracer::for_graph(&graph);
        rt.set_tracer(Arc::clone(&tracer));
        rt.feed(Occurrence::input(words, "cat")).unwrap();
        rt.run_to_quiescence();

        let spans = tracer.drain_spans();
        let trees = crate::tracing::assemble(&spans, &graph);
        // One ingress event, two rounds (ingress + async handoff), one trace.
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert_eq!(
            tree.node_set(),
            crate::tracing::reachable_from(&graph, words)
        );
        let seqs: Vec<u64> = tree.spans.iter().map(|s| s.seq).collect();
        assert!(seqs.contains(&0) && seqs.contains(&1));
        // The async span's parent is the wrapped inner node's span.
        let async_idx = tree
            .spans
            .iter()
            .position(|s| s.kind == SpanKind::Async)
            .unwrap();
        let parent = tree.parent[async_idx].unwrap();
        assert_eq!(tree.spans[parent].node, slow.0);
    }

    #[test]
    fn drop_repeats_and_keep_if_interact_with_memoization() {
        let mut g = GraphBuilder::new();
        let i = g.input("i", 0i64);
        let dr = g.drop_repeats(i);
        let even = g.keep_if(|v| int(v) % 2 == 0, 0i64, dr);
        let count = g.foldp("count", |_v, acc| Value::Int(int(acc) + 1), 0i64, even);
        let graph = g.finish(count).unwrap();

        let trace = [2i64, 2, 4, 5, 5, 6].map(|v| Occurrence::input(i, v));
        let outs = SyncRuntime::run_trace(&graph, trace).unwrap();
        // Changes reaching the counter: 2, 4, 6  (dup 2 and 5s filtered).
        assert_eq!(changed_values(&outs).last(), Some(&Value::Int(3)));
    }
}
