//! Schedulers: three execution models for one [`crate::graph::SignalGraph`].
//!
//! | Scheduler | Model | Role in the reproduction |
//! |-----------|-------|--------------------------|
//! | [`concurrent::ConcurrentRuntime`] | thread-per-node, pipelined, global event dispatcher | the paper's semantics (§3.3.2, Figs. 9–11) |
//! | [`sync::SyncRuntime`] | single-threaded, one event fully propagated at a time | the conceptual synchronous semantics; non-pipelined baseline; deterministic test oracle |
//! | [`pull::PullRuntime`] | whole-graph recomputation per sampling tick | the traditional continuous-FRP baseline (§1, §6.1) |

pub mod concurrent;
pub mod pull;
pub mod sync;
