//! The pull-based sampling baseline.
//!
//! "Traditional" FRP systems (Fran and successors; paper §1, §6.1) treat
//! signals as continuously varying and therefore *sample* them: the whole
//! program is recomputed at some sampling rate with the latest input values,
//! whether or not anything changed. The paper's first efficiency claim is
//! that Elm's discrete, push-based signals avoid this wholesale
//! recomputation.
//!
//! [`PullRuntime`] executes the same [`SignalGraph`] under that model: input
//! values are merely *stored* when they arrive, and every call to
//! [`PullRuntime::sample`] recomputes every node from scratch. `foldp` nodes
//! step once per sample (the continuous analogue of integrating state), and
//! `async` has no meaning without discrete events — the inner value is read
//! through directly. Experiment E4 compares computations-per-delivered-
//! update between this scheduler and the push-based ones.

use crate::behavior::{NodeBehavior, StepInputs};
use crate::error::RunError;
use crate::graph::{NodeId, NodeKind, SignalGraph};
use crate::stats::Stats;
use crate::value::Value;
use std::sync::Arc;

/// Sampling (pull-based) executor of a [`SignalGraph`].
///
/// ```
/// use elm_runtime::{GraphBuilder, PullRuntime, Value};
///
/// let mut g = GraphBuilder::new();
/// let x = g.input("x", 1i64);
/// let sq = g.lift1("sq", |v| Value::Int(v.as_int().unwrap().pow(2)), x);
/// let graph = g.finish(sq).unwrap();
///
/// let mut rt = PullRuntime::new(&graph);
/// rt.set_input(x, 7i64).unwrap();
/// assert_eq!(rt.sample(), &Value::Int(49));
/// assert_eq!(rt.sample(), &Value::Int(49)); // recomputed again anyway
/// assert_eq!(rt.stats().computations(), 2);
/// ```
pub struct PullRuntime {
    graph: SignalGraph,
    values: Vec<Value>,
    behaviors: Vec<Option<Box<dyn NodeBehavior>>>,
    stats: Arc<Stats>,
}

impl PullRuntime {
    /// Instantiates sampling state for `graph`.
    pub fn new(graph: &SignalGraph) -> Self {
        let values = graph.nodes().iter().map(|n| n.default.clone()).collect();
        let behaviors = graph
            .nodes()
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Compute { spec } => Some(spec.instantiate()),
                _ => None,
            })
            .collect();
        PullRuntime {
            graph: graph.clone(),
            values,
            behaviors,
            stats: Stats::new(),
        }
    }

    /// The execution counters for this run.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    /// Stores a new current value for an input; no computation happens
    /// until the next [`PullRuntime::sample`].
    ///
    /// # Errors
    ///
    /// Fails if `id` is not an input node of this graph.
    pub fn set_input(&mut self, id: NodeId, value: impl Into<Value>) -> Result<(), RunError> {
        match self.graph.nodes().get(id.index()).map(|n| &n.kind) {
            Some(NodeKind::Input { .. }) => {
                self.values[id.index()] = value.into();
                Ok(())
            }
            _ => Err(RunError::NotASource(id)),
        }
    }

    /// Recomputes the entire graph from current input values and returns
    /// the output node's value — one sampling tick.
    pub fn sample(&mut self) -> &Value {
        self.stats.record_event();
        for idx in 0..self.graph.len() {
            let node = &self.graph.nodes()[idx];
            match &node.kind {
                NodeKind::Input { .. } => {}
                NodeKind::Async { inner } => {
                    // Sampling has no discrete events to reorder; read through.
                    self.values[idx] = self.values[inner.index()].clone();
                }
                NodeKind::Compute { .. } => {
                    let flags = vec![true; node.parents.len()];
                    let parent_vals: Vec<&Value> = node
                        .parents
                        .iter()
                        .map(|p| &self.values[p.index()])
                        .collect();
                    let prev = self.values[idx].clone();
                    self.stats.record_computation();
                    let behavior = self.behaviors[idx]
                        .as_mut()
                        .expect("compute nodes always have behaviors");
                    if let Some(v) = behavior.step(StepInputs {
                        changed: &flags,
                        values: &parent_vals,
                        prev: &prev,
                    }) {
                        self.values[idx] = v;
                    }
                }
            }
        }
        &self.values[self.graph.output().index()]
    }

    /// Current value of any node.
    pub fn value(&self, id: NodeId) -> &Value {
        &self.values[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn int(v: &Value) -> i64 {
        v.as_int().unwrap()
    }

    #[test]
    fn sampling_recomputes_even_when_nothing_changed() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", 0i64);
        let a = g.lift1("a", |v| Value::Int(int(v) + 1), x);
        let b = g.lift1("b", |v| Value::Int(int(v) * 2), a);
        let graph = g.finish(b).unwrap();
        let mut rt = PullRuntime::new(&graph);
        for _ in 0..10 {
            rt.sample();
        }
        // 2 compute nodes × 10 samples, zero input changes.
        assert_eq!(rt.stats().computations(), 20);
    }

    #[test]
    fn sampled_foldp_steps_every_tick() {
        // The continuous model cannot tell "no event" from "same value":
        // a counter over a constant signal counts samples, not events.
        let mut g = GraphBuilder::new();
        let x = g.input("x", 0i64);
        let count = g.foldp("count", |_v, acc| Value::Int(int(acc) + 1), 0i64, x);
        let graph = g.finish(count).unwrap();
        let mut rt = PullRuntime::new(&graph);
        rt.sample();
        rt.sample();
        rt.sample();
        assert_eq!(int(rt.value(count)), 3);
    }

    #[test]
    fn set_input_validates_target() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", 0i64);
        let l = g.lift1("id", |v| v.clone(), x);
        let graph = g.finish(l).unwrap();
        let mut rt = PullRuntime::new(&graph);
        assert!(rt.set_input(l, 3i64).is_err());
        assert!(rt.set_input(x, 3i64).is_ok());
        assert_eq!(rt.sample(), &Value::Int(3));
    }

    #[test]
    fn async_reads_through_under_sampling() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", 5i64);
        let a = g.async_source(x);
        let graph = g.finish(a).unwrap();
        let mut rt = PullRuntime::new(&graph);
        rt.set_input(x, 9i64).unwrap();
        assert_eq!(rt.sample(), &Value::Int(9));
    }
}
