//! Node behaviors: the computation performed at each signal-graph node.
//!
//! The paper gives three computing node kinds — `liftn`, `foldp`, and the
//! structural `async` — plus, in the full language (§4.2), a family of
//! signal combinators (`merge`, `sampleOn`, `keepIf`, `dropRepeats`, …).
//! All except `async` share one execution discipline: per globally-ordered
//! event they consume one message from every incoming edge and emit exactly
//! one message, either `Change v` or `NoChange` (§3.3.2). That discipline is
//! captured by [`NodeBehavior::step`].
//!
//! Behaviors can be *stateful* (`foldp` owns its accumulator), so a graph
//! stores cloneable [`BehaviorSpec`] factories and each scheduler
//! instantiates fresh behavior state when it starts executing — the same
//! [`crate::graph::SignalGraph`] can be run on the concurrent, synchronous,
//! and pull schedulers without cross-contamination.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// A pure n-ary function suitable for a `liftn` node.
pub type LiftFn = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

/// A fold function for `foldp`: `(new_input, accumulator) -> accumulator`.
/// Argument order follows the paper's `foldp f`: `f : τ → τ' → τ'`.
pub type FoldFn = Arc<dyn Fn(&Value, &Value) -> Value + Send + Sync>;

/// A predicate over values, for `keepIf` / `dropIf`.
pub type PredFn = Arc<dyn Fn(&Value) -> bool + Send + Sync>;

/// The inputs available to a node when processing one event.
#[derive(Debug)]
pub struct StepInputs<'a> {
    /// For each parent edge: did that parent change this event?
    pub changed: &'a [bool],
    /// Current (post-event) value of each parent.
    pub values: &'a [&'a Value],
    /// This node's own previous output value.
    pub prev: &'a Value,
}

impl StepInputs<'_> {
    /// True if any incoming edge carried a `Change`.
    pub fn any_changed(&self) -> bool {
        self.changed.iter().any(|c| *c)
    }
}

/// Per-run mutable computation state of a node.
///
/// `step` is invoked once per global event *in which at least one parent
/// changed* (schedulers short-circuit the all-`NoChange` case, the
/// memoization of §3.3.2). Returning `None` emits `NoChange`, letting
/// combinators like `keepIf` suppress propagation even when inputs changed.
pub trait NodeBehavior: Send {
    /// Processes one event round. See the trait docs for the contract.
    fn step(&mut self, inputs: StepInputs<'_>) -> Option<Value>;
}

/// A factory producing fresh [`NodeBehavior`] state, stored in the graph IR.
pub trait BehaviorSpec: Send + Sync {
    /// Creates this node's mutable per-run state.
    fn instantiate(&self) -> Box<dyn NodeBehavior>;

    /// The default (pre-first-event) output, induced from parent defaults
    /// (§3.1: "every input signal is required to have a default value, which
    /// then induces default values for other signals").
    fn default_value(&self, parent_defaults: &[Value]) -> Value;

    /// Short operator name for diagnostics and DOT rendering.
    fn op_name(&self) -> &'static str;
}

impl fmt::Debug for dyn BehaviorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op_name())
    }
}

// ---------------------------------------------------------------------------
// liftn
// ---------------------------------------------------------------------------

/// `liftn f s1 … sn`: applies a pure function to the current values of `n`
/// signals whenever any of them changes (paper Fig. 10, `liftn` case).
pub struct Lift {
    f: LiftFn,
}

impl Lift {
    /// Wraps a pure function of the parents' current values.
    pub fn new(f: impl Fn(&[Value]) -> Value + Send + Sync + 'static) -> Self {
        Lift { f: Arc::new(f) }
    }
}

impl BehaviorSpec for Lift {
    fn instantiate(&self) -> Box<dyn NodeBehavior> {
        Box::new(LiftState { f: self.f.clone() })
    }

    fn default_value(&self, parent_defaults: &[Value]) -> Value {
        (self.f)(parent_defaults)
    }

    fn op_name(&self) -> &'static str {
        "lift"
    }
}

struct LiftState {
    f: LiftFn,
}

impl NodeBehavior for LiftState {
    fn step(&mut self, inputs: StepInputs<'_>) -> Option<Value> {
        let vals: Vec<Value> = inputs.values.iter().map(|v| (*v).clone()).collect();
        Some((self.f)(&vals))
    }
}

// ---------------------------------------------------------------------------
// foldp
// ---------------------------------------------------------------------------

/// `foldp f b s`: folds over a signal's history (paper §3.1). The node's
/// output *is* the accumulator; the scheduler's memoization guarantees the
/// fold steps only when `s` actually changed — the correctness-critical
/// property of §3.3.2 (a key-press counter must not bump on mouse events).
pub struct Foldp {
    f: FoldFn,
    init: Value,
}

impl Foldp {
    /// `f(new_input, acc) -> acc`, starting from `init`.
    pub fn new(
        f: impl Fn(&Value, &Value) -> Value + Send + Sync + 'static,
        init: impl Into<Value>,
    ) -> Self {
        Foldp {
            f: Arc::new(f),
            init: init.into(),
        }
    }
}

impl BehaviorSpec for Foldp {
    fn instantiate(&self) -> Box<dyn NodeBehavior> {
        Box::new(FoldpState { f: self.f.clone() })
    }

    fn default_value(&self, _parent_defaults: &[Value]) -> Value {
        self.init.clone()
    }

    fn op_name(&self) -> &'static str {
        "foldp"
    }
}

struct FoldpState {
    f: FoldFn,
}

impl NodeBehavior for FoldpState {
    fn step(&mut self, inputs: StepInputs<'_>) -> Option<Value> {
        if inputs.changed[0] {
            Some((self.f)(inputs.values[0], inputs.prev))
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Full-language combinators (§4.2 library signals)
// ---------------------------------------------------------------------------

/// `merge s1 s2`: interleaves two signals of the same type. When both change
/// on the same event the left signal wins (Elm's documented left bias).
pub struct Merge;

impl BehaviorSpec for Merge {
    fn instantiate(&self) -> Box<dyn NodeBehavior> {
        Box::new(MergeState)
    }

    fn default_value(&self, parent_defaults: &[Value]) -> Value {
        parent_defaults[0].clone()
    }

    fn op_name(&self) -> &'static str {
        "merge"
    }
}

struct MergeState;

impl NodeBehavior for MergeState {
    fn step(&mut self, inputs: StepInputs<'_>) -> Option<Value> {
        if inputs.changed[0] {
            Some(inputs.values[0].clone())
        } else if inputs.changed[1] {
            Some(inputs.values[1].clone())
        } else {
            None
        }
    }
}

/// `sampleOn ticker data`: emits the current value of `data` whenever
/// `ticker` changes; changes of `data` alone are swallowed.
pub struct SampleOn;

impl BehaviorSpec for SampleOn {
    fn instantiate(&self) -> Box<dyn NodeBehavior> {
        Box::new(SampleOnState)
    }

    fn default_value(&self, parent_defaults: &[Value]) -> Value {
        parent_defaults[1].clone()
    }

    fn op_name(&self) -> &'static str {
        "sampleOn"
    }
}

struct SampleOnState;

impl NodeBehavior for SampleOnState {
    fn step(&mut self, inputs: StepInputs<'_>) -> Option<Value> {
        if inputs.changed[0] {
            Some(inputs.values[1].clone())
        } else {
            None
        }
    }
}

/// `keepIf pred base s`: propagates only changes satisfying `pred`. `base`
/// is the default when the underlying signal's default fails the predicate.
pub struct KeepIf {
    pred: PredFn,
    base: Value,
    /// When true the predicate is negated, yielding `dropIf`.
    negate: bool,
}

impl KeepIf {
    /// Keeps changes where `pred` holds.
    pub fn keep(
        pred: impl Fn(&Value) -> bool + Send + Sync + 'static,
        base: impl Into<Value>,
    ) -> Self {
        KeepIf {
            pred: Arc::new(pred),
            base: base.into(),
            negate: false,
        }
    }

    /// Drops changes where `pred` holds (`dropIf`).
    pub fn drop(
        pred: impl Fn(&Value) -> bool + Send + Sync + 'static,
        base: impl Into<Value>,
    ) -> Self {
        KeepIf {
            pred: Arc::new(pred),
            base: base.into(),
            negate: true,
        }
    }

    fn admits(&self, v: &Value) -> bool {
        (self.pred)(v) != self.negate
    }
}

impl BehaviorSpec for KeepIf {
    fn instantiate(&self) -> Box<dyn NodeBehavior> {
        Box::new(KeepIfState {
            pred: self.pred.clone(),
            negate: self.negate,
        })
    }

    fn default_value(&self, parent_defaults: &[Value]) -> Value {
        if self.admits(&parent_defaults[0]) {
            parent_defaults[0].clone()
        } else {
            self.base.clone()
        }
    }

    fn op_name(&self) -> &'static str {
        "keepIf"
    }
}

struct KeepIfState {
    pred: PredFn,
    negate: bool,
}

impl NodeBehavior for KeepIfState {
    fn step(&mut self, inputs: StepInputs<'_>) -> Option<Value> {
        let v = inputs.values[0];
        if (self.pred)(v) != self.negate {
            Some(v.clone())
        } else {
            None
        }
    }
}

/// `keepWhen gate base s`: propagates changes of `s` only while the boolean
/// signal `gate` is currently true.
pub struct KeepWhen {
    base: Value,
}

impl KeepWhen {
    /// `base` is the default used when the gate starts out false.
    pub fn new(base: impl Into<Value>) -> Self {
        KeepWhen { base: base.into() }
    }
}

impl BehaviorSpec for KeepWhen {
    fn instantiate(&self) -> Box<dyn NodeBehavior> {
        Box::new(KeepWhenState)
    }

    fn default_value(&self, parent_defaults: &[Value]) -> Value {
        if parent_defaults[0].is_truthy() {
            parent_defaults[1].clone()
        } else {
            self.base.clone()
        }
    }

    fn op_name(&self) -> &'static str {
        "keepWhen"
    }
}

struct KeepWhenState;

impl NodeBehavior for KeepWhenState {
    fn step(&mut self, inputs: StepInputs<'_>) -> Option<Value> {
        if inputs.changed[1] && inputs.values[0].is_truthy() {
            Some(inputs.values[1].clone())
        } else {
            None
        }
    }
}

/// `dropRepeats s`: suppresses changes whose value equals the previous
/// output, using structural equality on [`Value`].
pub struct DropRepeats;

impl BehaviorSpec for DropRepeats {
    fn instantiate(&self) -> Box<dyn NodeBehavior> {
        Box::new(DropRepeatsState)
    }

    fn default_value(&self, parent_defaults: &[Value]) -> Value {
        parent_defaults[0].clone()
    }

    fn op_name(&self) -> &'static str {
        "dropRepeats"
    }
}

struct DropRepeatsState;

impl NodeBehavior for DropRepeatsState {
    fn step(&mut self, inputs: StepInputs<'_>) -> Option<Value> {
        if inputs.values[0] != inputs.prev {
            Some(inputs.values[0].clone())
        } else {
            None
        }
    }
}

/// An arbitrary user-defined stateful behavior, for combinators not covered
/// by the built-ins (used by the typed DSL's `custom` escape hatch and by
/// tests).
pub struct Custom {
    name: &'static str,
    default: Value,
    make: Arc<dyn Fn() -> Box<dyn NodeBehavior> + Send + Sync>,
}

impl Custom {
    /// Creates a custom spec with an explicit default output value.
    pub fn new(
        name: &'static str,
        default: impl Into<Value>,
        make: impl Fn() -> Box<dyn NodeBehavior> + Send + Sync + 'static,
    ) -> Self {
        Custom {
            name,
            default: default.into(),
            make: Arc::new(make),
        }
    }
}

impl BehaviorSpec for Custom {
    fn instantiate(&self) -> Box<dyn NodeBehavior> {
        (self.make)()
    }

    fn default_value(&self, _parent_defaults: &[Value]) -> Value {
        self.default.clone()
    }

    fn op_name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_of(
        spec: &dyn BehaviorSpec,
        changed: &[bool],
        values: &[&Value],
        prev: &Value,
    ) -> Option<Value> {
        let mut b = spec.instantiate();
        b.step(StepInputs {
            changed,
            values,
            prev,
        })
    }

    #[test]
    fn lift_applies_function_and_induces_default() {
        let spec = Lift::new(|vs| Value::Int(vs[0].as_int().unwrap() * 2));
        assert_eq!(spec.default_value(&[Value::Int(21)]), Value::Int(42));
        let out = step_of(&spec, &[true], &[&Value::Int(5)], &Value::Int(0));
        assert_eq!(out, Some(Value::Int(10)));
    }

    #[test]
    fn foldp_steps_only_on_changed_input() {
        let spec = Foldp::new(|_new, acc| Value::Int(acc.as_int().unwrap() + 1), 0i64);
        assert_eq!(spec.default_value(&[Value::Unit]), Value::Int(0));
        let stepped = step_of(&spec, &[true], &[&Value::Unit], &Value::Int(4));
        assert_eq!(stepped, Some(Value::Int(5)));
        let skipped = step_of(&spec, &[false], &[&Value::Unit], &Value::Int(4));
        assert_eq!(skipped, None);
    }

    #[test]
    fn merge_is_left_biased() {
        let a = Value::Int(1);
        let b = Value::Int(2);
        assert_eq!(
            step_of(&Merge, &[true, true], &[&a, &b], &Value::Unit),
            Some(Value::Int(1))
        );
        assert_eq!(
            step_of(&Merge, &[false, true], &[&a, &b], &Value::Unit),
            Some(Value::Int(2))
        );
        assert_eq!(
            step_of(&Merge, &[false, false], &[&a, &b], &Value::Unit),
            None
        );
    }

    #[test]
    fn sample_on_fires_only_on_ticker() {
        let tick = Value::Unit;
        let data = Value::Int(9);
        assert_eq!(
            step_of(&SampleOn, &[true, false], &[&tick, &data], &Value::Int(0)),
            Some(Value::Int(9))
        );
        assert_eq!(
            step_of(&SampleOn, &[false, true], &[&tick, &data], &Value::Int(0)),
            None
        );
        assert_eq!(
            SampleOn.default_value(&[Value::Unit, Value::Int(7)]),
            Value::Int(7)
        );
    }

    #[test]
    fn keep_if_filters_and_falls_back_to_base_default() {
        let keep = KeepIf::keep(|v| v.as_int().unwrap_or(0) > 0, -1i64);
        assert_eq!(
            step_of(&keep, &[true], &[&Value::Int(3)], &Value::Int(0)),
            Some(Value::Int(3))
        );
        assert_eq!(
            step_of(&keep, &[true], &[&Value::Int(-3)], &Value::Int(0)),
            None
        );
        assert_eq!(keep.default_value(&[Value::Int(-5)]), Value::Int(-1));
        assert_eq!(keep.default_value(&[Value::Int(5)]), Value::Int(5));

        let drop = KeepIf::drop(|v| v.as_int().unwrap_or(0) > 0, 0i64);
        assert_eq!(
            step_of(&drop, &[true], &[&Value::Int(3)], &Value::Int(0)),
            None
        );
        assert_eq!(
            step_of(&drop, &[true], &[&Value::Int(-3)], &Value::Int(0)),
            Some(Value::Int(-3))
        );
    }

    #[test]
    fn keep_when_gates_data_changes() {
        let spec = KeepWhen::new(0i64);
        let open = Value::Bool(true);
        let shut = Value::Bool(false);
        let data = Value::Int(5);
        assert_eq!(
            step_of(&spec, &[false, true], &[&open, &data], &Value::Int(0)),
            Some(Value::Int(5))
        );
        assert_eq!(
            step_of(&spec, &[false, true], &[&shut, &data], &Value::Int(0)),
            None
        );
        // Gate toggling alone does not re-emit.
        assert_eq!(
            step_of(&spec, &[true, false], &[&open, &data], &Value::Int(0)),
            None
        );
        assert_eq!(
            spec.default_value(&[Value::Bool(false), Value::Int(9)]),
            Value::Int(0)
        );
    }

    #[test]
    fn drop_repeats_suppresses_equal_values() {
        assert_eq!(
            step_of(&DropRepeats, &[true], &[&Value::Int(5)], &Value::Int(5)),
            None
        );
        assert_eq!(
            step_of(&DropRepeats, &[true], &[&Value::Int(6)], &Value::Int(5)),
            Some(Value::Int(6))
        );
    }

    #[test]
    fn custom_behavior_runs_user_state() {
        let spec = Custom::new("toggle", false, || {
            struct Toggle(bool);
            impl NodeBehavior for Toggle {
                fn step(&mut self, _i: StepInputs<'_>) -> Option<Value> {
                    self.0 = !self.0;
                    Some(Value::Bool(self.0))
                }
            }
            Box::new(Toggle(false))
        });
        let mut b = spec.instantiate();
        let v = Value::Unit;
        let mk = |prev: &Value, b: &mut Box<dyn NodeBehavior>| {
            b.step(StepInputs {
                changed: &[true],
                values: &[&v],
                prev,
            })
        };
        assert_eq!(mk(&Value::Bool(false), &mut b), Some(Value::Bool(true)));
        assert_eq!(mk(&Value::Bool(true), &mut b), Some(Value::Bool(false)));
        assert_eq!(spec.op_name(), "toggle");
    }
}
