//! Concurrent pipelined signal-graph runtime for asynchronous FRP.
//!
//! This crate is the execution substrate of a from-scratch reproduction of
//! *Asynchronous Functional Reactive Programming for GUIs* (Czaplicki &
//! Chong, PLDI 2013) — the Elm paper. It implements the paper's signal
//! evaluation semantics (§3.3.2):
//!
//! * a scheduler-agnostic [`SignalGraph`] IR whose nodes are input signals,
//!   `liftn`/`foldp`/library combinators, and `async` sources;
//! * [`ConcurrentRuntime`] — the paper's semantics, a faithful Rust
//!   rendition of the translation to Concurrent ML (Figs. 9–11): thread per
//!   node, unbounded FIFO edge queues, a global event dispatcher totally
//!   ordering events, `Change`/`NoChange` propagation, and `async` nodes
//!   that re-enter the dispatcher as fresh event sources;
//! * [`SyncRuntime`] — the conceptual synchronous semantics, used as the
//!   deterministic oracle and the non-pipelined baseline;
//! * [`PullRuntime`] — the continuous-sampling baseline of traditional FRP.
//!
//! Most users want the typed `elm-signals` crate instead; this crate is the
//! shared machine underneath it, the FElm interpreter, and the compiler.
//!
//! # Example
//!
//! ```
//! use elm_runtime::{ConcurrentRuntime, GraphBuilder, Occurrence, Value};
//!
//! // lift2 (y ÷ z) Mouse.x Window.width   (paper Fig. 7)
//! let mut g = GraphBuilder::new();
//! let mouse_x = g.input("Mouse.x", 0i64);
//! let width = g.input("Window.width", 100i64);
//! let rel = g.lift2(
//!     "ratio",
//!     |y, z| Value::Int(y.as_int().unwrap() / z.as_int().unwrap().max(1)),
//!     mouse_x,
//!     width,
//! );
//! let graph = g.finish(rel).unwrap();
//!
//! let mut rt = ConcurrentRuntime::start(&graph);
//! rt.feed(Occurrence::input(mouse_x, 300i64)).unwrap();
//! let outs = rt.drain().unwrap();
//! assert_eq!(outs[0].value(), Some(&Value::Int(3)));
//! rt.stop();
//! ```

#![warn(missing_docs)]

pub mod behavior;
pub mod dot;
pub mod error;
pub mod event;
pub mod governor;
pub mod graph;
pub mod journal;
pub mod metrics;
pub mod sched;
pub mod stats;
pub mod trace;
pub mod tracing;
mod value;

pub use behavior::{
    BehaviorSpec, Custom, DropRepeats, Foldp, KeepIf, KeepWhen, Lift, Merge, NodeBehavior,
    SampleOn, StepInputs,
};
pub use error::{GraphError, RunError};
pub use event::{changed_values, Occurrence, OutputEvent, Propagated};
pub use governor::{EventLimits, GovernorScope, TrapKind};
pub use graph::{GraphBuilder, Node, NodeId, NodeKind, SignalGraph};
pub use journal::{EventJournal, JournalEntry, JournalError};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use sched::concurrent::ConcurrentRuntime;
pub use sched::pull::PullRuntime;
pub use sched::sync::{RuntimeSnapshot, SyncRuntime, WireOccurrence, WireSnapshot};
pub use stats::{Stats, StatsSnapshot};
pub use trace::{PlainValue, Trace, TraceEvent};
pub use tracing::{
    assemble, assemble_cluster, reachable_from, ClusterPhase, ClusterSpan, ClusterSpanTree,
    NodeSpan, NodeTimingSnapshot, PlainSpan, PlainSpanTree, SpanKind, SpanRing, SpanTree, TraceId,
    Tracer,
};
pub use value::Value;
