//! Serializable event traces for record/replay.
//!
//! The reproduction substitutes the browser's live event stream with
//! deterministic, replayable traces (DESIGN.md S6). A [`Trace`] names input
//! signals symbolically (e.g. `"Mouse.position"`) so the same recording can
//! drive any graph exposing those inputs, on any scheduler.
//!
//! [`PlainValue`] is the serializable subset of [`Value`] — everything
//! except opaque `Ext` payloads, which by construction never originate from
//! the external environment.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::RunError;
use crate::event::Occurrence;
use crate::graph::SignalGraph;
use crate::value::Value;

/// A serializable runtime value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PlainValue {
    /// The unit value.
    Unit,
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// A pair.
    Pair(Box<PlainValue>, Box<PlainValue>),
    /// A list.
    List(Vec<PlainValue>),
    /// A record.
    Record(BTreeMap<String, PlainValue>),
    /// A tagged union value.
    Tagged(String, Vec<PlainValue>),
}

impl PlainValue {
    /// Converts a runtime [`Value`] into its serializable form.
    ///
    /// Returns `None` if the value contains an opaque `Ext` payload.
    pub fn from_value(v: &Value) -> Option<Self> {
        Some(match v {
            Value::Unit => PlainValue::Unit,
            Value::Int(n) => PlainValue::Int(*n),
            Value::Float(x) => PlainValue::Float(*x),
            Value::Bool(b) => PlainValue::Bool(*b),
            Value::Str(s) => PlainValue::Str(s.to_string()),
            Value::Pair(p) => PlainValue::Pair(
                Box::new(Self::from_value(&p.0)?),
                Box::new(Self::from_value(&p.1)?),
            ),
            Value::List(items) => PlainValue::List(
                items
                    .iter()
                    .map(Self::from_value)
                    .collect::<Option<Vec<_>>>()?,
            ),
            Value::Record(fields) => PlainValue::Record(
                fields
                    .iter()
                    .map(|(k, v)| Some((k.clone(), Self::from_value(v)?)))
                    .collect::<Option<BTreeMap<_, _>>>()?,
            ),
            Value::Tagged(tag, args) => PlainValue::Tagged(
                tag.to_string(),
                args.iter()
                    .map(Self::from_value)
                    .collect::<Option<Vec<_>>>()?,
            ),
            Value::Ext(_) => return None,
        })
    }

    /// Converts back into a runtime [`Value`].
    pub fn to_value(&self) -> Value {
        match self {
            PlainValue::Unit => Value::Unit,
            PlainValue::Int(n) => Value::Int(*n),
            PlainValue::Float(x) => Value::Float(*x),
            PlainValue::Bool(b) => Value::Bool(*b),
            PlainValue::Str(s) => Value::Str(Arc::from(s.as_str())),
            PlainValue::Pair(a, b) => Value::pair(a.to_value(), b.to_value()),
            PlainValue::List(items) => Value::list(items.iter().map(PlainValue::to_value)),
            PlainValue::Record(fields) => {
                Value::record(fields.iter().map(|(k, v)| (k.clone(), v.to_value())))
            }
            PlainValue::Tagged(tag, args) => {
                Value::tagged(tag, args.iter().map(PlainValue::to_value))
            }
        }
    }
}

/// One recorded input event: which named input fired, with what value, and
/// at what virtual time (milliseconds since trace start).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual timestamp in milliseconds.
    pub at_ms: u64,
    /// The environment name of the input signal (e.g. `"Mouse.position"`).
    pub input: String,
    /// The new value.
    pub value: PlainValue,
}

/// A recorded sequence of input events, ordered by time.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The recorded events, in nondecreasing `at_ms` order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event; `at_ms` must be nondecreasing.
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` goes backwards.
    pub fn push(&mut self, at_ms: u64, input: impl Into<String>, value: PlainValue) {
        if let Some(last) = self.events.last() {
            assert!(
                last.at_ms <= at_ms,
                "trace timestamps must be nondecreasing"
            );
        }
        self.events.push(TraceEvent {
            at_ms,
            input: input.into(),
            value,
        });
    }

    /// Resolves the trace against `graph`'s named inputs, yielding
    /// occurrences ready to feed to any scheduler.
    ///
    /// # Errors
    ///
    /// Fails with [`RunError::WorkerLost`] naming the offending input if an
    /// event references an input the graph does not declare.
    pub fn to_occurrences(&self, graph: &SignalGraph) -> Result<Vec<Occurrence>, RunError> {
        self.events
            .iter()
            .map(|e| {
                let id = graph
                    .input_named(&e.input)
                    .ok_or_else(|| RunError::WorkerLost(format!("unknown input '{}'", e.input)))?;
                Ok(Occurrence::input(id, e.value.to_value()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn plain_value_round_trips_through_value() {
        let pv = PlainValue::Record(BTreeMap::from([
            (
                "pos".to_string(),
                PlainValue::Pair(Box::new(PlainValue::Int(3)), Box::new(PlainValue::Int(4))),
            ),
            (
                "tags".to_string(),
                PlainValue::List(vec![PlainValue::Str("a".into()), PlainValue::Bool(true)]),
            ),
        ]));
        let v = pv.to_value();
        assert_eq!(PlainValue::from_value(&v), Some(pv));
    }

    #[test]
    fn ext_values_are_not_serializable() {
        assert_eq!(PlainValue::from_value(&Value::ext(1u8)), None);
        let nested = Value::pair(Value::Int(1), Value::ext(1u8));
        assert_eq!(PlainValue::from_value(&nested), None);
    }

    #[test]
    fn trace_resolves_named_inputs() {
        let mut g = GraphBuilder::new();
        let m = g.input("Mouse.x", 0i64);
        let graph = g.finish(m).unwrap();

        let mut t = Trace::new();
        t.push(0, "Mouse.x", PlainValue::Int(10));
        t.push(16, "Mouse.x", PlainValue::Int(20));
        let occs = t.to_occurrences(&graph).unwrap();
        assert_eq!(occs.len(), 2);
        assert_eq!(occs[0].source, m);
        assert_eq!(occs[1].payload, Some(Value::Int(20)));

        let mut bad = Trace::new();
        bad.push(0, "Nope", PlainValue::Unit);
        assert!(bad.to_occurrences(&graph).is_err());
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn trace_rejects_time_travel() {
        let mut t = Trace::new();
        t.push(10, "a", PlainValue::Unit);
        t.push(5, "a", PlainValue::Unit);
    }
}
