//! Causal per-event tracing: trace ids, node spans, a lock-free span ring,
//! and span-tree reconstruction.
//!
//! The paper's responsiveness argument (§1, §3.3) is a claim about *where an
//! event spends its time* inside the signal graph: `async` moves slow nodes
//! off the update path, so the latency of the path that matters stays low.
//! This module makes that visible. Every ingress [`crate::Occurrence`] is
//! stamped with a [`TraceId`]; both schedulers record a [`NodeSpan`] for each
//! node that actually participates in propagating that event (the source
//! apply plus every recomputation — memo-skipped nodes are *not* spanned, so
//! a trace's node set is exactly the subgraph the event touched). When an
//! `async` node re-injects a buffered value as a fresh global event, the new
//! round inherits the originating trace id, so the handoff shows up in the
//! same trace as a span whose causal parent is the async node's wrapped
//! `inner` node.
//!
//! Spans land in a bounded lock-free MPMC ring ([`SpanRing`], a Vyukov-style
//! sequence-stamped array queue) with drop-oldest overflow, so tracing never
//! blocks a scheduler thread and memory stays bounded. [`assemble`] groups
//! drained spans by trace id and rebuilds each event's propagation tree using
//! the graph's edge structure.

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::graph::{NodeId, NodeKind, SignalGraph};
use crate::metrics::{Histogram, HistogramSnapshot};

/// Identifier of one causal trace: an ingress event plus every propagation
/// round it spawns (async handoffs inherit the id). `TraceId::NONE` (zero)
/// marks an untraced occurrence; real ids start at 1 and are allocated by
/// the [`Tracer`] attached to a runtime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The null trace id carried by untraced occurrences.
    pub const NONE: TraceId = TraceId(0);

    /// True if this is the null id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// What role a node played in a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// An input source applying an ingress payload.
    Input,
    /// An `async` source re-injecting a buffered value (the handoff back to
    /// the global queue).
    Async,
    /// A compute node recomputing.
    Compute,
}

impl SpanKind {
    /// Stable lowercase name for serialization.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Input => "input",
            SpanKind::Async => "async",
            SpanKind::Compute => "compute",
        }
    }
}

/// One node's participation in one propagation round of a trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeSpan {
    /// The causal trace this span belongs to.
    pub trace: TraceId,
    /// Global event sequence number of the propagation round.
    pub seq: u64,
    /// The node (graph topological index).
    pub node: u32,
    /// The node's role in this round.
    pub kind: SpanKind,
    /// Monotonic start tick, nanoseconds from the tracer's origin.
    pub start_ns: u64,
    /// Monotonic end tick.
    pub end_ns: u64,
    /// Wait between the round's dispatch and this span's start.
    pub queue_ns: u64,
    /// Whether the node emitted `Change` (false = `NoChange`).
    pub changed: bool,
    /// Whether the node's step function panicked (poisoning it).
    pub panicked: bool,
}

/// One slot of the [`SpanRing`]: a sequence stamp plus storage.
struct Slot {
    stamp: AtomicUsize,
    value: UnsafeCell<MaybeUninit<NodeSpan>>,
}

/// A bounded lock-free MPMC ring buffer of [`NodeSpan`]s (Vyukov-style
/// sequence-stamped array queue). `push` drops the oldest span on overflow
/// instead of blocking, so scheduler threads never wait on observers.
pub struct SpanRing {
    slots: Box<[Slot]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slots are only written by the thread that won the enqueue-position
// CAS and only read by the thread that won the dequeue-position CAS; the
// per-slot stamp (Acquire/Release) orders those accesses.
unsafe impl Send for SpanRing {}
unsafe impl Sync for SpanRing {}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.slots.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl SpanRing {
    /// Creates a ring with at least `capacity` slots (rounded up to a power
    /// of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<Slot> = (0..cap)
            .map(|i| Slot {
                stamp: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        SpanRing {
            slots: slots.into_boxed_slice(),
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans discarded by drop-oldest overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Attempts to enqueue; returns `false` if the ring is full.
    pub fn try_push(&self, span: NodeSpan) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let stamp = slot.stamp.load(Ordering::Acquire);
            let diff = stamp as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive write
                        // access to this slot until the stamp is published.
                        unsafe { (*slot.value.get()).write(span) };
                        slot.stamp.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return false; // full
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue the oldest span.
    pub fn try_pop(&self) -> Option<NodeSpan> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let stamp = slot.stamp.load(Ordering::Acquire);
            let diff = stamp as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive read
                        // access; the Acquire stamp load saw the writer's
                        // Release store, so the slot is initialized.
                        let span = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.stamp
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(span);
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return None; // empty
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Enqueues, discarding the oldest span (counted in [`SpanRing::dropped`])
    /// if the ring is full. Never blocks.
    pub fn push(&self, span: NodeSpan) {
        while !self.try_push(span) {
            if self.try_pop().is_some() {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drains every currently queued span, oldest first.
    pub fn drain(&self) -> Vec<NodeSpan> {
        let mut out = Vec::new();
        while let Some(s) = self.try_pop() {
            out.push(s);
        }
        out
    }
}

/// Per-node live timing instruments.
#[derive(Debug)]
struct NodePerf {
    label: String,
    kind: &'static str,
    computes: AtomicU64,
    compute: Histogram,
    queue: Histogram,
}

/// A point-in-time copy of one node's timing instruments, serializable so it
/// can travel inside session stats and be merged across sessions.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NodeTimingSnapshot {
    /// The node (graph topological index).
    pub node: u32,
    /// The node's diagnostic label.
    pub label: String,
    /// Node kind: `"input"`, `"async"`, or `"compute"`.
    pub kind: String,
    /// Spans recorded for this node (source applies or recomputations).
    pub computes: u64,
    /// Compute-time histogram (nanoseconds).
    pub compute: HistogramSnapshot,
    /// Dispatch-to-start queue-wait histogram (nanoseconds).
    pub queue: HistogramSnapshot,
}

impl NodeTimingSnapshot {
    /// Merges another snapshot of the *same* node (e.g. from a different
    /// session hosting the same program).
    pub fn merged(&self, other: &NodeTimingSnapshot) -> NodeTimingSnapshot {
        NodeTimingSnapshot {
            node: self.node,
            label: self.label.clone(),
            kind: self.kind.clone(),
            computes: self.computes + other.computes,
            compute: self.compute.merged(&other.compute),
            queue: self.queue.merged(&other.queue),
        }
    }
}

/// Default span-ring capacity (slots) used by [`Tracer::for_graph`].
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// The per-runtime tracing hub: allocates trace ids, supplies the monotonic
/// clock, owns the span ring, and accumulates per-node timing histograms.
///
/// A `Tracer` is shared (`Arc`) between a runtime's scheduler threads and
/// whoever drains spans. All operations are wait-free or lock-free; when
/// `enabled` is false, [`Tracer::record`] is a single relaxed atomic load.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    origin: Instant,
    next_trace: AtomicU64,
    ring: SpanRing,
    nodes: Vec<NodePerf>,
}

impl Tracer {
    /// Creates a tracer sized for `graph` with the default ring capacity.
    pub fn for_graph(graph: &SignalGraph) -> Arc<Tracer> {
        Tracer::with_capacity(graph, DEFAULT_RING_CAPACITY)
    }

    /// Creates a tracer sized for `graph` with an explicit ring capacity.
    pub fn with_capacity(graph: &SignalGraph, ring_capacity: usize) -> Arc<Tracer> {
        let nodes = graph
            .nodes()
            .iter()
            .map(|n| NodePerf {
                label: n.label.clone(),
                kind: match n.kind {
                    NodeKind::Input { .. } => "input",
                    NodeKind::Async { .. } => "async",
                    NodeKind::Compute { .. } => "compute",
                },
                computes: AtomicU64::new(0),
                compute: Histogram::new(),
                queue: Histogram::new(),
            })
            .collect();
        Arc::new(Tracer {
            enabled: AtomicBool::new(true),
            origin: Instant::now(),
            next_trace: AtomicU64::new(1),
            ring: SpanRing::new(ring_capacity),
            nodes,
        })
    }

    /// Whether spans are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables span recording (id allocation keeps working).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds elapsed since this tracer was created (the monotonic tick
    /// domain of all spans it records).
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Allocates a fresh trace id.
    pub fn next_trace_id(&self) -> TraceId {
        TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Returns `trace` unchanged if already assigned, otherwise allocates a
    /// fresh id (the ingress point of a causal trace).
    pub fn ensure_trace(&self, trace: TraceId) -> TraceId {
        if trace.is_none() {
            self.next_trace_id()
        } else {
            trace
        }
    }

    /// Records one span into the ring and the node's timing histograms.
    pub fn record(&self, span: NodeSpan) {
        if !self.is_enabled() {
            return;
        }
        if let Some(perf) = self.nodes.get(span.node as usize) {
            perf.computes.fetch_add(1, Ordering::Relaxed);
            perf.compute
                .observe(span.end_ns.saturating_sub(span.start_ns));
            perf.queue.observe(span.queue_ns);
        }
        self.ring.push(span);
    }

    /// Drains all queued spans, oldest first.
    pub fn drain_spans(&self) -> Vec<NodeSpan> {
        self.ring.drain()
    }

    /// Spans discarded by ring overflow.
    pub fn dropped_spans(&self) -> u64 {
        self.ring.dropped()
    }

    /// Point-in-time copy of every node's timing instruments.
    pub fn node_timings(&self) -> Vec<NodeTimingSnapshot> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, p)| NodeTimingSnapshot {
                node: i as u32,
                label: p.label.clone(),
                kind: p.kind.to_string(),
                computes: p.computes.load(Ordering::Relaxed),
                compute: p.compute.snapshot(),
                queue: p.queue.snapshot(),
            })
            .collect()
    }
}

/// One reconstructed causal trace: the spans of every propagation round an
/// ingress event spawned, linked into a tree by the graph's edge structure.
#[derive(Clone, Debug)]
pub struct SpanTree {
    /// The trace id.
    pub trace: TraceId,
    /// Member spans, sorted by `(seq, node)`.
    pub spans: Vec<NodeSpan>,
    /// For each span (by index into `spans`), the index of its causal parent
    /// span, or `None` for the root(s).
    pub parent: Vec<Option<usize>>,
}

impl SpanTree {
    /// The set of node indices that participated in this trace.
    pub fn node_set(&self) -> BTreeSet<u32> {
        self.spans.iter().map(|s| s.node).collect()
    }

    /// Indices of root spans (spans with no causal parent — normally the
    /// single ingress input span).
    pub fn roots(&self) -> Vec<usize> {
        self.parent
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// Serializable flat form (each span carries its parent's node id).
    pub fn to_plain(&self, graph: &SignalGraph) -> PlainSpanTree {
        PlainSpanTree {
            trace: self.trace.0,
            spans: self
                .spans
                .iter()
                .enumerate()
                .map(|(i, s)| PlainSpan {
                    node: s.node,
                    label: graph
                        .nodes()
                        .get(s.node as usize)
                        .map(|n| n.label.clone())
                        .unwrap_or_default(),
                    kind: s.kind.name().to_string(),
                    seq: s.seq,
                    start_ns: s.start_ns,
                    end_ns: s.end_ns,
                    queue_ns: s.queue_ns,
                    changed: s.changed,
                    panicked: s.panicked,
                    parent: self.parent[i].map(|p| self.spans[p].node),
                })
                .collect(),
        }
    }
}

/// Serializable form of a [`SpanTree`], suitable for NDJSON streaming.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlainSpanTree {
    /// The trace id.
    pub trace: u64,
    /// Member spans with parent links by node id.
    pub spans: Vec<PlainSpan>,
}

/// Serializable form of a [`NodeSpan`] inside a [`PlainSpanTree`].
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlainSpan {
    /// The node (graph topological index).
    pub node: u32,
    /// The node's diagnostic label.
    pub label: String,
    /// Span kind name (`input` / `async` / `compute`).
    pub kind: String,
    /// Propagation-round sequence number.
    pub seq: u64,
    /// Monotonic start tick (ns).
    pub start_ns: u64,
    /// Monotonic end tick (ns).
    pub end_ns: u64,
    /// Dispatch-to-start wait (ns).
    pub queue_ns: u64,
    /// Whether the node emitted `Change`.
    pub changed: bool,
    /// Whether the node panicked.
    pub panicked: bool,
    /// The causal parent span's node id (`None` for the trace root).
    pub parent: Option<u32>,
}

/// Groups drained spans by trace id and reconstructs each trace's span tree.
///
/// Parent links are derived from the graph: a compute span's parent is the
/// latest same-trace span of one of its graph parents at or before its round;
/// an async span's parent is the span of the wrapped `inner` node from the
/// originating round (the handoff edge); input spans are roots.
pub fn assemble(spans: &[NodeSpan], graph: &SignalGraph) -> Vec<SpanTree> {
    let mut by_trace: BTreeMap<u64, Vec<NodeSpan>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace.0).or_default().push(*s);
    }
    let mut out = Vec::new();
    for (trace, mut members) in by_trace {
        members.sort_by_key(|s| (s.seq, s.node));
        let mut parent = vec![None; members.len()];
        for (i, s) in members.iter().enumerate() {
            let node = graph.nodes().get(s.node as usize);
            let candidates: Vec<NodeId> = match (s.kind, node) {
                (SpanKind::Compute, Some(n)) => n.parents.clone(),
                (SpanKind::Async, Some(n)) => match n.kind {
                    NodeKind::Async { inner } => vec![inner],
                    _ => Vec::new(),
                },
                _ => Vec::new(),
            };
            // Latest candidate span at or before this round; ties broken by
            // smaller node id for determinism.
            let mut best: Option<(u64, u32, usize)> = None;
            for (j, other) in members.iter().enumerate() {
                if j == i || other.seq > s.seq {
                    continue;
                }
                if !candidates.iter().any(|c| c.0 == other.node) {
                    continue;
                }
                let key = (other.seq, u32::MAX - other.node, j);
                match best {
                    Some((bs, bn, _)) if (bs, bn) >= (key.0, key.1) => {}
                    _ => best = Some(key),
                }
            }
            parent[i] = best.map(|(_, _, j)| j);
        }
        out.push(SpanTree {
            trace: TraceId(trace),
            spans: members,
            parent,
        });
    }
    out
}

/// Which stage of an event's cross-process life a [`ClusterSpan`] covers.
///
/// Phases have a fixed causal order — an event is ingested on its primary,
/// replicated to its backup, (maybe) taken over after a kill, and resumed
/// on the adopter — so cross-peer assembly can chain spans by phase rank
/// even when the peers' clocks disagree slightly.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum ClusterPhase {
    /// The event was admitted and applied on its primary peer.
    Ingest,
    /// The journal entry reached the backup peer.
    Replicate,
    /// A monitor declared the primary dead and claimed the session.
    Takeover,
    /// The adopter rebuilt the session (snapshot restore + replay).
    Resume,
}

impl ClusterPhase {
    /// Stable lowercase name for reports and NDJSON.
    pub fn name(self) -> &'static str {
        match self {
            ClusterPhase::Ingest => "ingest",
            ClusterPhase::Replicate => "replicate",
            ClusterPhase::Takeover => "takeover",
            ClusterPhase::Resume => "resume",
        }
    }

    /// Causal order within one trace (ingest < replicate < takeover <
    /// resume).
    pub fn rank(self) -> u8 {
        match self {
            ClusterPhase::Ingest => 0,
            ClusterPhase::Replicate => 1,
            ClusterPhase::Takeover => 2,
            ClusterPhase::Resume => 3,
        }
    }
}

/// One peer-hop span: a phase of an event's cross-process journey,
/// stamped with the peer that executed it. The process-internal analogue
/// is [`NodeSpan`]; a `ClusterSpan` is what crosses the wire.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClusterSpan {
    /// The causal trace id (never 0 in an assembled tree).
    pub trace: u64,
    /// The session the event belongs to.
    pub session: u64,
    /// The event's journal sequence number (0 when the phase is not tied
    /// to a single event, e.g. a takeover claiming a whole session).
    pub seq: u64,
    /// Which stage this span covers.
    pub phase: ClusterPhase,
    /// The peer index that executed the phase.
    pub peer: u32,
    /// The peer the work arrived from, when it crossed a process boundary
    /// (-1 for none: ingest spans originate at the client).
    pub from_peer: i64,
    /// Start, in microseconds on the *observing* peer's clock.
    pub start_us: u64,
    /// End, in microseconds on the observing peer's clock.
    pub end_us: u64,
}

/// A reconstructed cross-process trace: the spans of one trace id chained
/// in causal (phase, time) order.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClusterSpanTree {
    /// The trace id.
    pub trace: u64,
    /// Member spans, causally ordered.
    pub spans: Vec<ClusterSpan>,
    /// Parent index per span (index into `spans`; `None` for the root).
    pub parent: Vec<Option<usize>>,
}

impl ClusterSpanTree {
    /// Distinct peers this trace touched, in causal order of first
    /// appearance. A kill-chaos trace that survived a failover shows the
    /// victim before the adopter.
    pub fn peer_path(&self) -> Vec<u32> {
        let mut path = Vec::new();
        for s in &self.spans {
            if !path.contains(&s.peer) {
                path.push(s.peer);
            }
        }
        path
    }

    /// True when the trace crossed a process boundary (was observed on
    /// more than one peer).
    pub fn crosses_peers(&self) -> bool {
        self.peer_path().len() > 1
    }
}

/// Groups [`ClusterSpan`]s by trace id and chains each trace's spans in
/// causal order: primary sort by [`ClusterPhase::rank`], secondary by
/// start time, with each span parented on its predecessor.
///
/// Spans with trace id 0 are untraced noise and are skipped. The chain
/// parent rule is deliberately simpler than [`assemble`]'s graph-derived
/// parents: across processes the only causal edges are the phase
/// transitions themselves, and ranking by phase first keeps the chain
/// correct even when the two peers' microsecond clocks are skewed.
pub fn assemble_cluster(spans: &[ClusterSpan]) -> Vec<ClusterSpanTree> {
    let mut by_trace: BTreeMap<u64, Vec<ClusterSpan>> = BTreeMap::new();
    for s in spans {
        if s.trace == 0 {
            continue;
        }
        by_trace.entry(s.trace).or_default().push(s.clone());
    }
    let mut out = Vec::new();
    for (trace, mut members) in by_trace {
        members.sort_by_key(|s| (s.phase.rank(), s.start_us, s.peer));
        let parent = (0..members.len())
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        out.push(ClusterSpanTree {
            trace,
            spans: members,
            parent,
        });
    }
    out
}

/// The set of nodes reachable from `start` by following signal-graph edges,
/// including the async handoff edge `inner → async` (an event at `start`
/// can, at most, touch exactly these nodes).
pub fn reachable_from(graph: &SignalGraph, start: NodeId) -> BTreeSet<u32> {
    let mut children = graph.children();
    for n in graph.nodes() {
        if let NodeKind::Async { inner } = n.kind {
            children[inner.index()].push(n.id);
        }
    }
    let mut seen = BTreeSet::new();
    let mut stack = vec![start];
    while let Some(id) = stack.pop() {
        if !seen.insert(id.0) {
            continue;
        }
        for c in &children[id.index()] {
            stack.push(*c);
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::value::Value;

    fn span(trace: u64, seq: u64, node: u32, kind: SpanKind) -> NodeSpan {
        NodeSpan {
            trace: TraceId(trace),
            seq,
            node,
            kind,
            start_ns: seq * 10,
            end_ns: seq * 10 + 5,
            queue_ns: 1,
            changed: true,
            panicked: false,
        }
    }

    #[test]
    fn ring_push_pop_fifo() {
        let ring = SpanRing::new(8);
        for i in 0..5 {
            assert!(ring.try_push(span(1, i, i as u32, SpanKind::Compute)));
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 5);
        assert_eq!(drained[0].seq, 0);
        assert_eq!(drained[4].seq, 4);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_drop_oldest_on_overflow() {
        let ring = SpanRing::new(4); // capacity 4
        for i in 0..10 {
            ring.push(span(1, i, 0, SpanKind::Compute));
        }
        assert_eq!(ring.dropped(), 6);
        let drained = ring.drain();
        assert_eq!(drained.len(), 4);
        // The oldest were dropped; the newest four survive.
        assert_eq!(drained[0].seq, 6);
        assert_eq!(drained[3].seq, 9);
    }

    #[test]
    fn ring_concurrent_producers_lose_nothing_under_capacity() {
        let ring = Arc::new(SpanRing::new(4096));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        ring.push(span(t, i, t as u32, SpanKind::Compute));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.drain().len(), 2000);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn tracer_allocates_ids_and_records_timings() {
        let mut g = GraphBuilder::new();
        let x = g.input("Mouse.x", 0i64);
        let d = g.lift1("double", |v| Value::Int(v.as_int().unwrap() * 2), x);
        let graph = g.finish(d).unwrap();
        let tracer = Tracer::for_graph(&graph);
        let t1 = tracer.ensure_trace(TraceId::NONE);
        let t2 = tracer.ensure_trace(TraceId::NONE);
        assert_ne!(t1, t2);
        assert_eq!(tracer.ensure_trace(t1), t1);
        tracer.record(NodeSpan {
            trace: t1,
            seq: 0,
            node: 1,
            kind: SpanKind::Compute,
            start_ns: 10,
            end_ns: 30,
            queue_ns: 4,
            changed: true,
            panicked: false,
        });
        let timings = tracer.node_timings();
        assert_eq!(timings.len(), 2);
        assert_eq!(timings[1].computes, 1);
        assert_eq!(timings[1].compute.sum, 20);
        assert_eq!(timings[1].queue.sum, 4);
        assert_eq!(timings[0].computes, 0);
        assert_eq!(tracer.drain_spans().len(), 1);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut g = GraphBuilder::new();
        let x = g.input("Mouse.x", 0i64);
        let graph = g.finish(x).unwrap();
        let tracer = Tracer::for_graph(&graph);
        tracer.set_enabled(false);
        tracer.record(span(1, 0, 0, SpanKind::Input));
        assert!(tracer.drain_spans().is_empty());
        assert_eq!(tracer.node_timings()[0].computes, 0);
    }

    #[test]
    fn assemble_links_compute_spans_to_graph_parents() {
        let mut g = GraphBuilder::new();
        let x = g.input("Mouse.x", 0i64);
        let y = g.input("Mouse.y", 0i64);
        let sum = g.lift2(
            "sum",
            |a, b| Value::Int(a.as_int().unwrap() + b.as_int().unwrap()),
            x,
            y,
        );
        let graph = g.finish(sum).unwrap();
        let spans = vec![
            span(7, 0, x.0, SpanKind::Input),
            span(7, 0, sum.0, SpanKind::Compute),
            span(8, 1, y.0, SpanKind::Input),
            span(8, 1, sum.0, SpanKind::Compute),
        ];
        let trees = assemble(&spans, &graph);
        assert_eq!(trees.len(), 2);
        let t7 = &trees[0];
        assert_eq!(t7.trace, TraceId(7));
        assert_eq!(t7.roots(), vec![0]);
        // sum's parent is the x input span in trace 7, the y span in trace 8.
        assert_eq!(t7.parent[1], Some(0));
        assert_eq!(t7.spans[t7.parent[1].unwrap()].node, x.0);
        let t8 = &trees[1];
        assert_eq!(t8.spans[t8.parent[1].unwrap()].node, y.0);
        let plain = t7.to_plain(&graph);
        assert_eq!(plain.spans[1].parent, Some(x.0));
        assert_eq!(plain.spans[0].parent, None);
    }

    #[test]
    fn assemble_links_async_handoff_to_inner_node() {
        let mut g = GraphBuilder::new();
        let x = g.input("Mouse.x", 0i64);
        let slow = g.lift1("slow", |v| v.clone(), x);
        let a = g.async_source(slow);
        let out = g.lift1("render", |v| v.clone(), a);
        let graph = g.finish(out).unwrap();
        // Round 0: ingress at x, slow computes, async buffers.
        // Round 1 (same trace): async re-injects, render computes.
        let spans = vec![
            span(3, 0, x.0, SpanKind::Input),
            span(3, 0, slow.0, SpanKind::Compute),
            span(3, 1, a.0, SpanKind::Async),
            span(3, 1, out.0, SpanKind::Compute),
        ];
        let trees = assemble(&spans, &graph);
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        // async's parent is slow's span from the earlier round.
        assert_eq!(t.spans[t.parent[2].unwrap()].node, slow.0);
        // render's parent is the async span.
        assert_eq!(t.spans[t.parent[3].unwrap()].node, a.0);
        assert_eq!(t.roots(), vec![0]);
        assert_eq!(
            t.node_set(),
            [x.0, slow.0, a.0, out.0].into_iter().collect()
        );
    }

    #[test]
    fn reachable_includes_async_handoff_edge() {
        let mut g = GraphBuilder::new();
        let x = g.input("Mouse.x", 0i64);
        let y = g.input("Mouse.y", 0i64);
        let slow = g.lift1("slow", |v| v.clone(), x);
        let a = g.async_source(slow);
        let out = g.lift2("pair", |l, r| Value::pair(l.clone(), r.clone()), a, y);
        let graph = g.finish(out).unwrap();
        let from_x = reachable_from(&graph, x);
        assert_eq!(from_x, [x.0, slow.0, a.0, out.0].into_iter().collect());
        let from_y = reachable_from(&graph, y);
        assert_eq!(from_y, [y.0, out.0].into_iter().collect());
    }

    #[test]
    fn plain_span_tree_roundtrips_through_json() {
        let tree = PlainSpanTree {
            trace: 9,
            spans: vec![PlainSpan {
                node: 0,
                label: "Mouse.x".into(),
                kind: "input".into(),
                seq: 0,
                start_ns: 1,
                end_ns: 2,
                queue_ns: 0,
                changed: true,
                panicked: false,
                parent: None,
            }],
        };
        let json = serde_json::to_string(&tree).unwrap();
        let back: PlainSpanTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tree);
    }

    #[test]
    fn assemble_tolerates_drop_oldest_ring_gaps() {
        // A drop-oldest ring under pressure loses arbitrary older spans.
        // Whatever subset survives, assemble() must produce trees without
        // panicking, and every span must land in the tree for its trace.
        let mut g = GraphBuilder::new();
        let x = g.input("Mouse.x", 0i64);
        let a = g.lift1("a", |v| v.clone(), x);
        let b = g.lift1("b", |v| v.clone(), a);
        let out = g.lift1("out", |v| v.clone(), b);
        let graph = g.finish(out).unwrap();
        let full: Vec<NodeSpan> = (1u64..=8)
            .flat_map(|trace| {
                vec![
                    span(trace, trace, x.0, SpanKind::Input),
                    span(trace, trace, a.0, SpanKind::Compute),
                    span(trace, trace, b.0, SpanKind::Compute),
                    span(trace, trace, out.0, SpanKind::Compute),
                ]
            })
            .collect();
        // Drop every third span — orphaning mid-chain computes, removing
        // roots, splitting traces — as a ring overflow would.
        let gappy: Vec<NodeSpan> = full
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, s)| *s)
            .collect();
        let trees = assemble(&gappy, &graph);
        let total: usize = trees.iter().map(|t| t.spans.len()).sum();
        assert_eq!(total, gappy.len());
        for t in &trees {
            // Parent links stay in-bounds and acyclic (parent strictly
            // earlier in the sorted order).
            for (i, p) in t.parent.iter().enumerate() {
                if let Some(p) = p {
                    assert!(*p < i, "parent {p} not before span {i}");
                }
            }
            // A span whose graph-parent span was dropped becomes a root
            // rather than being misattached; to_plain stays total too.
            let plain = t.to_plain(&graph);
            assert_eq!(plain.spans.len(), t.spans.len());
            assert!(!t.roots().is_empty());
        }
    }

    fn cspan(
        trace: u64,
        seq: u64,
        phase: ClusterPhase,
        peer: u32,
        from_peer: i64,
        start_us: u64,
    ) -> ClusterSpan {
        ClusterSpan {
            trace,
            session: 7,
            seq,
            phase,
            peer,
            from_peer,
            start_us,
            end_us: start_us + 3,
        }
    }

    #[test]
    fn assemble_cluster_chains_phases_across_peers() {
        // Event traced 42: ingested on peer 0, replicated to peer 2, then
        // peer 0 dies — peer 2 takes over and resumes. Spans arrive
        // shuffled and with skewed clocks (takeover start before the
        // replicate start); phase rank keeps the causal order.
        let spans = vec![
            cspan(42, 5, ClusterPhase::Resume, 2, 0, 900),
            cspan(42, 5, ClusterPhase::Ingest, 0, -1, 100),
            cspan(42, 0, ClusterPhase::Takeover, 2, 0, 140),
            cspan(42, 5, ClusterPhase::Replicate, 2, 0, 150),
            cspan(9, 1, ClusterPhase::Ingest, 1, -1, 50),
            // Untraced noise must be skipped, not rooted as trace 0.
            cspan(0, 3, ClusterPhase::Ingest, 1, -1, 60),
        ];
        let trees = assemble_cluster(&spans);
        assert_eq!(trees.len(), 2);
        let t9 = &trees[0];
        assert_eq!(t9.trace, 9);
        assert!(!t9.crosses_peers());

        let t42 = &trees[1];
        assert_eq!(t42.trace, 42);
        let phases: Vec<ClusterPhase> = t42.spans.iter().map(|s| s.phase).collect();
        assert_eq!(
            phases,
            vec![
                ClusterPhase::Ingest,
                ClusterPhase::Replicate,
                ClusterPhase::Takeover,
                ClusterPhase::Resume,
            ]
        );
        assert_eq!(t42.parent, vec![None, Some(0), Some(1), Some(2)]);
        assert_eq!(t42.peer_path(), vec![0, 2]);
        assert!(t42.crosses_peers());

        // Serializable for NDJSON reports.
        let json = serde_json::to_string(t42).unwrap();
        let back: ClusterSpanTree = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, t42);
    }

    #[test]
    fn cluster_phase_names_and_ranks_are_ordered() {
        let all = [
            ClusterPhase::Ingest,
            ClusterPhase::Replicate,
            ClusterPhase::Takeover,
            ClusterPhase::Resume,
        ];
        for w in all.windows(2) {
            assert!(w[0].rank() < w[1].rank());
        }
        assert_eq!(
            all.map(ClusterPhase::name),
            ["ingest", "replicate", "takeover", "resume"]
        );
    }
}
