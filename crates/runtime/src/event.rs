//! Events and edge messages.
//!
//! The paper's semantics (§3.3.2) revolve around two kinds of message:
//!
//! * **events** — a source node produced a new value; the global event
//!   dispatcher assigns each a total order and broadcasts it to every source,
//! * **edge messages** — `Change v` / `NoChange` values flowing along the
//!   FIFO queue of each signal-graph edge, exactly one per source event.
//!
//! [`Occurrence`] is the external stimulus (`newEvent` in Fig. 11);
//! [`Propagated`] is the datatype `'a event = NoChange 'a | Change 'a` of
//! Fig. 9, with the payload of `NoChange` kept implicitly (each node caches
//! the last value of every incoming edge).

use crate::graph::NodeId;
use crate::tracing::TraceId;
use crate::value::Value;
use std::time::Instant;

/// A stimulus handed to the global event dispatcher: "source `source` has a
/// new value". For input sources the payload travels with the occurrence; for
/// `async` sources the payload is queued inside the async node (paper Fig. 10,
/// translation of `async s`).
#[derive(Clone, Debug, PartialEq)]
pub struct Occurrence {
    /// The source node this occurrence is relevant to.
    pub source: NodeId,
    /// New value for input sources; `None` for `async`-generated occurrences
    /// whose payload is already buffered at the async node.
    pub payload: Option<Value>,
    /// Causal trace context. [`TraceId::NONE`] for untraced occurrences; a
    /// tracer-equipped scheduler assigns a fresh id at ingress, and
    /// `async`-generated occurrences inherit the id of the event whose
    /// propagation buffered their payload.
    pub trace: TraceId,
    /// Wall-clock deadline for processing this occurrence. When set, node
    /// computation checks it between (and, for metered evaluators, inside)
    /// reductions; blowing it traps only this event with
    /// [`crate::governor::TrapKind::DeadlineExceeded`]. `None` (the
    /// default) means the scheduler's configured per-event timeout, or no
    /// deadline at all.
    pub deadline: Option<Instant>,
}

impl Occurrence {
    /// An external input event carrying `value`.
    pub fn input(source: NodeId, value: impl Into<Value>) -> Self {
        Occurrence {
            source,
            payload: Some(value.into()),
            trace: TraceId::NONE,
            deadline: None,
        }
    }

    /// An internally generated event for an `async` source.
    pub fn async_ready(source: NodeId) -> Self {
        Occurrence {
            source,
            payload: None,
            trace: TraceId::NONE,
            deadline: None,
        }
    }

    /// The same occurrence stamped with a trace id.
    pub fn with_trace(mut self, trace: TraceId) -> Self {
        self.trace = trace;
        self
    }

    /// The same occurrence with a processing deadline attached.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }
}

/// What a node emitted for one globally-ordered event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Propagated {
    /// The node computed a new value.
    Change(Value),
    /// The node's value is unchanged; downstream work can be skipped.
    NoChange,
}

impl Propagated {
    /// `true` for [`Propagated::Change`] — the `change` helper of Fig. 9.
    pub fn is_change(&self) -> bool {
        matches!(self, Propagated::Change(_))
    }

    /// Returns the new value, if any.
    pub fn changed_value(&self) -> Option<&Value> {
        match self {
            Propagated::Change(v) => Some(v),
            Propagated::NoChange => None,
        }
    }
}

/// One observation at a program's output (`main`) node: the globally ordered
/// event sequence number, which source fired, and what the output did.
#[derive(Clone, Debug, PartialEq)]
pub struct OutputEvent {
    /// Global sequence number assigned by the dispatcher (0-based).
    pub seq: u64,
    /// The source node whose event triggered this round of propagation.
    pub source: NodeId,
    /// Whether the output node changed, and its value if it did.
    pub output: Propagated,
}

impl OutputEvent {
    /// The output value if this round changed it.
    pub fn value(&self) -> Option<&Value> {
        self.output.changed_value()
    }
}

/// Extracts only the changed values from a stream of output events — the
/// sequence a user would actually see rendered.
pub fn changed_values(events: &[OutputEvent]) -> Vec<Value> {
    events.iter().filter_map(|e| e.value().cloned()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrence_constructors() {
        let o = Occurrence::input(NodeId(3), 7i64);
        assert_eq!(o.source, NodeId(3));
        assert_eq!(o.payload, Some(Value::Int(7)));
        let a = Occurrence::async_ready(NodeId(9));
        assert_eq!(a.payload, None);
        assert!(a.trace.is_none());
        let traced = a.with_trace(TraceId(5));
        assert_eq!(traced.trace, TraceId(5));
    }

    #[test]
    fn propagated_accessors() {
        assert!(Propagated::Change(Value::Unit).is_change());
        assert!(!Propagated::NoChange.is_change());
        assert_eq!(
            Propagated::Change(Value::Int(5)).changed_value(),
            Some(&Value::Int(5))
        );
        assert_eq!(Propagated::NoChange.changed_value(), None);
    }

    #[test]
    fn changed_values_filters_no_change_rounds() {
        let events = vec![
            OutputEvent {
                seq: 0,
                source: NodeId(0),
                output: Propagated::Change(Value::Int(1)),
            },
            OutputEvent {
                seq: 1,
                source: NodeId(1),
                output: Propagated::NoChange,
            },
            OutputEvent {
                seq: 2,
                source: NodeId(0),
                output: Propagated::Change(Value::Int(2)),
            },
        ];
        assert_eq!(changed_values(&events), vec![Value::Int(1), Value::Int(2)]);
    }
}
