//! The signal-graph intermediate representation.
//!
//! A FElm program that evaluates (stage one) to a signal term denotes a
//! directed acyclic *signal graph* (paper §3.3.2, Figs. 7–8): input signals
//! and `async` terms are **source nodes**, `liftn`/`foldp`/library
//! combinators are **compute nodes**, and `let`-bound signals become
//! multicast fan-out (a node with several children). [`SignalGraph`] is that
//! DAG, scheduler-agnostic: the concurrent, synchronous, and pull schedulers
//! in [`crate::sched`] all execute the same IR.
//!
//! Acyclicity is guaranteed by construction — a node's parents must already
//! exist when it is added, so parent ids are always smaller than the child's
//! id and node-id order is a topological order.

use std::fmt;
use std::sync::Arc;

use crate::behavior::{BehaviorSpec, Foldp, KeepIf, KeepWhen, Lift, Merge, SampleOn};
use crate::error::GraphError;
use crate::value::Value;

/// Identifies a node within one [`SignalGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's position in the graph's topological order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node does.
#[derive(Clone)]
pub enum NodeKind {
    /// An input signal from the external environment (paper `i ∈ Input`).
    Input {
        /// The environment name, e.g. `"Mouse.position"`.
        name: String,
    },
    /// A computing node (`liftn`, `foldp`, or a library combinator).
    Compute {
        /// The behavior factory shared by all runs of this graph.
        spec: Arc<dyn BehaviorSpec>,
    },
    /// An `async s` node: a *source* in the primary subgraph whose events are
    /// the `Change` values produced by the secondary subgraph rooted at
    /// `inner` (paper §3.3.2 and Fig. 10's `async` translation).
    Async {
        /// The node whose changes are re-injected as fresh global events.
        inner: NodeId,
    },
}

impl fmt::Debug for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Input { name } => write!(f, "input({name})"),
            NodeKind::Compute { spec } => write!(f, "{}", spec.op_name()),
            NodeKind::Async { inner } => write!(f, "async({inner:?})"),
        }
    }
}

/// One node of a signal graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// This node's id (also its topological index).
    pub id: NodeId,
    /// The node's role.
    pub kind: NodeKind,
    /// Incoming edges, in argument order. Empty for sources.
    pub parents: Vec<NodeId>,
    /// The node's default (pre-first-event) value, induced per §3.1.
    pub default: Value,
    /// Human-readable label for diagnostics / DOT output.
    pub label: String,
}

impl Node {
    /// True if the node is a source (input or `async`) — it receives event
    /// notifications from the global dispatcher rather than edge messages.
    pub fn is_source(&self) -> bool {
        matches!(self.kind, NodeKind::Input { .. } | NodeKind::Async { .. })
    }
}

/// An immutable signal-graph DAG plus a designated output (`main`) node.
///
/// Build one with [`GraphBuilder`]:
///
/// ```
/// use elm_runtime::{GraphBuilder, Value};
///
/// let mut g = GraphBuilder::new();
/// let mouse_x = g.input("Mouse.x", 0i64);
/// let doubled = g.lift1("double", |v| Value::Int(v.as_int().unwrap() * 2), mouse_x);
/// let graph = g.finish(doubled).expect("valid graph");
/// assert_eq!(graph.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct SignalGraph {
    nodes: Vec<Node>,
    output: NodeId,
}

impl SignalGraph {
    /// All nodes in topological (= id) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node displayed as the program's result (`main`).
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes (never true for built graphs, which
    /// have at least the output node).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of all source nodes (inputs and `async` nodes), in id order.
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_source())
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all `async` nodes, in id order.
    pub fn async_sources(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Async { .. }))
            .map(|n| n.id)
            .collect()
    }

    /// The input node named `name`, if any.
    pub fn input_named(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().find_map(|n| match &n.kind {
            NodeKind::Input { name: n2 } if n2 == name => Some(n.id),
            _ => None,
        })
    }

    /// Children (outgoing edges) of each node, computed on demand.
    /// `children()[id.index()]` lists the nodes that consume `id`'s output.
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for n in &self.nodes {
            for p in &n.parents {
                out[p.index()].push(n.id);
            }
        }
        out
    }

    /// A structural hash of the graph: node count, output id, and each
    /// node's kind, wiring, label, and default-value shape. Two graphs
    /// built the same way hash the same, so a [`crate::RuntimeSnapshot`]
    /// can be checked for compatibility before being restored into a
    /// runtime (restoring node values into a differently-shaped graph
    /// would silently corrupt state).
    ///
    /// Stable within one process; not a persistent format.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.nodes.len().hash(&mut h);
        self.output.0.hash(&mut h);
        for n in &self.nodes {
            n.id.0.hash(&mut h);
            n.label.hash(&mut h);
            for p in &n.parents {
                p.0.hash(&mut h);
            }
            match &n.kind {
                NodeKind::Input { name } => {
                    0u8.hash(&mut h);
                    name.hash(&mut h);
                }
                NodeKind::Compute { spec } => {
                    1u8.hash(&mut h);
                    spec.op_name().hash(&mut h);
                }
                NodeKind::Async { inner } => {
                    2u8.hash(&mut h);
                    inner.0.hash(&mut h);
                }
            }
        }
        h.finish()
    }

    /// Partitions nodes into the *primary subgraph* (reaches the output
    /// without passing through an `async` boundary) and *secondary
    /// subgraphs* (feed `async` nodes), reproducing the decomposition of
    /// paper Fig. 8(c). Returns, for each node, the id of the `async` node
    /// whose secondary subgraph it belongs to (`None` = primary).
    ///
    /// A node feeding several async nodes is attributed to the smallest id;
    /// nodes reachable from the output directly are primary even if they
    /// also feed an async node.
    pub fn subgraph_owner(&self) -> Vec<Option<NodeId>> {
        let mut owner: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut primary = vec![false; self.nodes.len()];
        // Mark the primary subgraph: walk up from the output, not crossing
        // async boundaries (async nodes are sources of the primary graph).
        let mut stack = vec![self.output];
        while let Some(id) = stack.pop() {
            if primary[id.index()] {
                continue;
            }
            primary[id.index()] = true;
            stack.extend(self.node(id).parents.iter().copied());
        }
        // Walk up from each async node's inner signal.
        for a in self.async_sources() {
            let NodeKind::Async { inner } = self.node(a).kind else {
                unreachable!("async_sources returned a non-async node");
            };
            let mut stack = vec![inner];
            while let Some(id) = stack.pop() {
                if primary[id.index()] || owner[id.index()].is_some() {
                    continue;
                }
                owner[id.index()] = Some(a);
                stack.extend(self.node(id).parents.iter().copied());
            }
        }
        owner
    }
}

/// Incremental builder for [`SignalGraph`].
///
/// Every constructor returns the new node's [`NodeId`]; ids are handed out
/// in topological order. The builder computes each node's default value from
/// its parents' defaults at insertion time (paper §3.1).
#[derive(Clone, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(
        &mut self,
        kind: NodeKind,
        parents: Vec<NodeId>,
        default: Value,
        label: String,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        for p in &parents {
            assert!(
                p.index() < self.nodes.len(),
                "parent {p:?} does not exist yet (graphs are built bottom-up)"
            );
        }
        self.nodes.push(Node {
            id,
            kind,
            parents,
            default,
            label,
        });
        id
    }

    /// Adds an input signal with its required default value.
    pub fn input(&mut self, name: impl Into<String>, default: impl Into<Value>) -> NodeId {
        let name = name.into();
        let label = name.clone();
        self.push(NodeKind::Input { name }, Vec::new(), default.into(), label)
    }

    /// Adds a compute node from an explicit behavior spec.
    pub fn compute(
        &mut self,
        label: impl Into<String>,
        spec: impl BehaviorSpec + 'static,
        parents: Vec<NodeId>,
    ) -> NodeId {
        let parent_defaults: Vec<Value> = parents
            .iter()
            .map(|p| {
                self.nodes
                    .get(p.index())
                    .unwrap_or_else(|| {
                        panic!("parent {p:?} does not exist yet (graphs are built bottom-up)")
                    })
                    .default
                    .clone()
            })
            .collect();
        let default = spec.default_value(&parent_defaults);
        self.push(
            NodeKind::Compute {
                spec: Arc::new(spec),
            },
            parents,
            default,
            label.into(),
        )
    }

    /// `lift1 f s`.
    pub fn lift1(
        &mut self,
        label: impl Into<String>,
        f: impl Fn(&Value) -> Value + Send + Sync + 'static,
        s: NodeId,
    ) -> NodeId {
        self.compute(label, Lift::new(move |vs| f(&vs[0])), vec![s])
    }

    /// `lift2 f s1 s2`.
    pub fn lift2(
        &mut self,
        label: impl Into<String>,
        f: impl Fn(&Value, &Value) -> Value + Send + Sync + 'static,
        s1: NodeId,
        s2: NodeId,
    ) -> NodeId {
        self.compute(label, Lift::new(move |vs| f(&vs[0], &vs[1])), vec![s1, s2])
    }

    /// `lift3 f s1 s2 s3`.
    pub fn lift3(
        &mut self,
        label: impl Into<String>,
        f: impl Fn(&Value, &Value, &Value) -> Value + Send + Sync + 'static,
        s1: NodeId,
        s2: NodeId,
        s3: NodeId,
    ) -> NodeId {
        self.compute(
            label,
            Lift::new(move |vs| f(&vs[0], &vs[1], &vs[2])),
            vec![s1, s2, s3],
        )
    }

    /// `liftn f [s1 … sn]` for arbitrary arity.
    pub fn lift_n(
        &mut self,
        label: impl Into<String>,
        f: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
        parents: Vec<NodeId>,
    ) -> NodeId {
        self.compute(label, Lift::new(f), parents)
    }

    /// `foldp f init s`.
    pub fn foldp(
        &mut self,
        label: impl Into<String>,
        f: impl Fn(&Value, &Value) -> Value + Send + Sync + 'static,
        init: impl Into<Value>,
        s: NodeId,
    ) -> NodeId {
        self.compute(label, Foldp::new(f, init), vec![s])
    }

    /// `merge s1 s2` (left-biased).
    pub fn merge(&mut self, s1: NodeId, s2: NodeId) -> NodeId {
        self.compute("merge", Merge, vec![s1, s2])
    }

    /// `sampleOn ticker data`.
    pub fn sample_on(&mut self, ticker: NodeId, data: NodeId) -> NodeId {
        self.compute("sampleOn", SampleOn, vec![ticker, data])
    }

    /// `keepIf pred base s`.
    pub fn keep_if(
        &mut self,
        pred: impl Fn(&Value) -> bool + Send + Sync + 'static,
        base: impl Into<Value>,
        s: NodeId,
    ) -> NodeId {
        self.compute("keepIf", KeepIf::keep(pred, base), vec![s])
    }

    /// `dropIf pred base s`.
    pub fn drop_if(
        &mut self,
        pred: impl Fn(&Value) -> bool + Send + Sync + 'static,
        base: impl Into<Value>,
        s: NodeId,
    ) -> NodeId {
        self.compute("dropIf", KeepIf::drop(pred, base), vec![s])
    }

    /// `keepWhen gate base s`.
    pub fn keep_when(&mut self, gate: NodeId, base: impl Into<Value>, s: NodeId) -> NodeId {
        self.compute("keepWhen", KeepWhen::new(base), vec![gate, s])
    }

    /// `dropRepeats s`.
    pub fn drop_repeats(&mut self, s: NodeId) -> NodeId {
        self.compute("dropRepeats", crate::behavior::DropRepeats, vec![s])
    }

    /// `async s`: registers a new source whose events are `inner`'s changes.
    /// The async node's default value is `inner`'s default (paper Fig. 10).
    pub fn async_source(&mut self, inner: NodeId) -> NodeId {
        let default = self.nodes[inner.index()].default.clone();
        self.push(
            NodeKind::Async { inner },
            Vec::new(),
            default,
            format!("async({inner})"),
        )
    }

    /// Finalizes the graph with `output` as the `main` node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the graph is empty, `output` is out of
    /// range, an `async` inner reference is dangling, or a compute node has
    /// no parents.
    pub fn finish(self, output: NodeId) -> Result<SignalGraph, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        if output.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(output));
        }
        for n in &self.nodes {
            match &n.kind {
                NodeKind::Compute { .. } if n.parents.is_empty() => {
                    return Err(GraphError::ComputeWithoutParents(n.id));
                }
                NodeKind::Async { inner } if inner.index() >= n.id.index() => {
                    return Err(GraphError::UnknownNode(*inner));
                }
                _ => {}
            }
        }
        Ok(SignalGraph {
            nodes: self.nodes,
            output,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relative_position_graph() -> SignalGraph {
        // Paper Fig. 7: lift2 (λy.λz. y ÷ z) Mouse.x Window.width
        let mut g = GraphBuilder::new();
        let mouse_x = g.input("Mouse.x", 0i64);
        let width = g.input("Window.width", 100i64);
        let rel = g.lift2(
            "divide",
            |y, z| Value::Int(y.as_int().unwrap() / z.as_int().unwrap().max(1)),
            mouse_x,
            width,
        );
        g.finish(rel).unwrap()
    }

    #[test]
    fn builds_fig7_graph_shape() {
        let g = relative_position_graph();
        assert_eq!(g.len(), 3);
        assert_eq!(g.sources(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(g.node(g.output()).parents, vec![NodeId(0), NodeId(1)]);
        assert_eq!(g.input_named("Mouse.x"), Some(NodeId(0)));
        assert_eq!(g.input_named("Nope"), None);
    }

    #[test]
    fn defaults_are_induced_from_parents() {
        let mut g = GraphBuilder::new();
        let w = g.input("Window.width", 50i64);
        let double = g.lift1("double", |v| Value::Int(v.as_int().unwrap() * 2), w);
        let graph = g.finish(double).unwrap();
        assert_eq!(graph.node(double).default, Value::Int(100));
    }

    #[test]
    fn multicast_children_are_tracked() {
        let mut g = GraphBuilder::new();
        let i = g.input("words", Value::str(""));
        let a = g.lift1("idA", |v| v.clone(), i);
        let b = g.lift1("idB", |v| v.clone(), i);
        let pair = g.lift2("pair", |x, y| Value::pair(x.clone(), y.clone()), a, b);
        let graph = g.finish(pair).unwrap();
        let children = graph.children();
        assert_eq!(children[i.index()], vec![a, b]);
        assert_eq!(children[a.index()], vec![pair]);
    }

    #[test]
    fn async_partitions_primary_and_secondary_subgraphs() {
        // Paper Fig. 8(c): lift2 (,) (async wordPairs) Mouse.position
        let mut g = GraphBuilder::new();
        let words = g.input("words", Value::str(""));
        let to_french = g.lift1("toFrench", |v| v.clone(), words);
        let word_pairs = g.lift2(
            "(,)",
            |a, b| Value::pair(a.clone(), b.clone()),
            words,
            to_french,
        );
        let async_pairs = g.async_source(word_pairs);
        let mouse = g.input("Mouse.position", Value::pair(Value::Int(0), Value::Int(0)));
        let main = g.lift2(
            "(,)",
            |a, b| Value::pair(a.clone(), b.clone()),
            async_pairs,
            mouse,
        );
        let graph = g.finish(main).unwrap();

        assert_eq!(graph.async_sources(), vec![async_pairs]);
        assert_eq!(graph.sources(), vec![words, async_pairs, mouse]);

        let owner = graph.subgraph_owner();
        // Primary: async node, mouse, main.
        assert_eq!(owner[async_pairs.index()], None);
        assert_eq!(owner[mouse.index()], None);
        assert_eq!(owner[main.index()], None);
        // Secondary (owned by the async node): words, toFrench, wordPairs.
        assert_eq!(owner[words.index()], Some(async_pairs));
        assert_eq!(owner[to_french.index()], Some(async_pairs));
        assert_eq!(owner[word_pairs.index()], Some(async_pairs));
    }

    #[test]
    fn finish_rejects_bad_graphs() {
        let g = GraphBuilder::new();
        assert!(matches!(g.finish(NodeId(0)), Err(GraphError::Empty)));

        let mut g = GraphBuilder::new();
        let i = g.input("i", 0i64);
        assert!(matches!(
            g.finish(NodeId(5)),
            Err(GraphError::UnknownNode(NodeId(5)))
        ));
        let mut g = GraphBuilder::new();
        let _ = i;
        let i = g.input("i", 0i64);
        assert!(g.finish(i).is_ok());
    }

    #[test]
    #[should_panic(expected = "parent")]
    fn forward_references_panic_at_build_time() {
        let mut g = GraphBuilder::new();
        let _ = g.lift1("bad", |v| v.clone(), NodeId(7));
    }
}
