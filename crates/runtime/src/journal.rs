//! Per-session write-ahead event journal.
//!
//! Theorem 1 makes an FRP program a deterministic function of its input
//! history, so a session is fully reconstructible from a log of its
//! admitted events. [`EventJournal`] is that log: append-before-dispatch
//! (the entry is durable before the runtime sees the event), sequence-
//! numbered to align with [`crate::StatsSnapshot`] event counts, stored
//! as bounded in-memory segments with an optional NDJSON file backend.
//!
//! Recovery replays only the *suffix* after the last snapshot:
//! [`EventJournal::truncate_through`] discards segments fully covered by
//! a snapshot, bounding both memory and replay length.

use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use crate::trace::PlainValue;

/// One journaled input event.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JournalEntry {
    /// 1-based sequence number; aligns with the runtime's event counter.
    pub seq: u64,
    /// Input signal name, e.g. `"Mouse.x"`.
    pub input: String,
    /// The event payload.
    pub value: PlainValue,
    /// Causal trace id carried end-to-end with the event (0 = untraced).
    /// Persisting it in the journal is what lets a replica or adopter
    /// continue the *same* trace after a failover: replayed events keep
    /// the id they were ingested with, so cross-process span assembly
    /// sees one causal story rather than a new root per process.
    pub trace: u64,
}

/// Why an append was not recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// The configured failure hook rejected this append (fault injection,
    /// standing in for a full disk / failed fsync).
    Rejected,
    /// The file backend failed.
    Io(String),
    /// The append carried a stale ownership epoch: the journal has been
    /// fenced at a higher epoch (a newer owner exists) and this writer
    /// must demote itself rather than extend the history.
    Fenced {
        /// The epoch the stale writer presented.
        writer: u64,
        /// The epoch the journal is fenced at.
        fence: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Rejected => write!(f, "journal append rejected"),
            JournalError::Io(e) => write!(f, "journal io error: {e}"),
            JournalError::Fenced { writer, fence } => write!(
                f,
                "journal fenced: writer epoch {writer} is stale (fence epoch {fence})"
            ),
        }
    }
}

/// Hook deciding whether the next append fails (deterministic fault
/// injection). Returning `true` rejects the append.
pub type FailureHook = Box<dyn FnMut(&JournalEntry) -> bool + Send>;

/// A segmented, truncatable write-ahead log of input events.
///
/// ```
/// use elm_runtime::{EventJournal, JournalEntry, PlainValue};
///
/// let mut j = EventJournal::new(4);
/// for seq in 1..=6 {
///     j.append(JournalEntry {
///         seq,
///         input: "Mouse.x".into(),
///         value: PlainValue::Int(seq as i64),
///         trace: 0,
///     })
///     .unwrap();
/// }
/// assert_eq!(j.len(), 6);
/// j.truncate_through(4); // a snapshot now covers seq <= 4
/// assert_eq!(j.suffix_after(4).len(), 2);
/// ```
pub struct EventJournal {
    /// Sealed segments (oldest first) followed by the active tail.
    segments: VecDeque<Vec<JournalEntry>>,
    segment_capacity: usize,
    /// Highest sequence number appended so far.
    last_seq: u64,
    /// Everything at or below this seq has been dropped by truncation.
    truncated_through: u64,
    /// Highest seq known durable on disk (fsynced). Always 0 for
    /// in-memory journals.
    synced_through: u64,
    /// Ownership fence: [`EventJournal::append_owned`] rejects writers
    /// presenting an epoch below this. 0 = never fenced (all epochs ok).
    fence_epoch: u64,
    file: Option<File>,
    fail_hook: Option<FailureHook>,
}

impl fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventJournal")
            .field("len", &self.len())
            .field("last_seq", &self.last_seq)
            .field("truncated_through", &self.truncated_through)
            .field("file", &self.file.is_some())
            .finish()
    }
}

impl EventJournal {
    /// An in-memory journal whose segments seal after `segment_capacity`
    /// entries (truncation drops whole sealed segments).
    pub fn new(segment_capacity: usize) -> EventJournal {
        let mut segments = VecDeque::new();
        segments.push_back(Vec::new());
        EventJournal {
            segments,
            segment_capacity: segment_capacity.max(1),
            last_seq: 0,
            truncated_through: 0,
            synced_through: 0,
            fence_epoch: 0,
            file: None,
            fail_hook: None,
        }
    }

    /// Like [`EventJournal::new`], but additionally appends every entry —
    /// and every truncation marker — as one NDJSON line to `path`.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be created/opened for append.
    pub fn with_file(segment_capacity: usize, path: &Path) -> Result<EventJournal, JournalError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| JournalError::Io(e.to_string()))?;
        let mut j = EventJournal::new(segment_capacity);
        j.file = Some(file);
        Ok(j)
    }

    /// Installs a deterministic failure hook (fault injection). The hook
    /// runs once per append attempt; `true` rejects that append.
    pub fn set_failure_hook(&mut self, hook: FailureHook) {
        self.fail_hook = Some(hook);
    }

    /// Appends one entry. `entry.seq` must be strictly increasing.
    ///
    /// # Errors
    ///
    /// Fails if the failure hook rejects the append or the file backend
    /// errors; the entry is then **not** recorded (the caller decides
    /// whether to drop the event or protect it with a forced snapshot).
    pub fn append(&mut self, entry: JournalEntry) -> Result<u64, JournalError> {
        assert!(
            entry.seq > self.last_seq,
            "journal sequence numbers must be strictly increasing ({} after {})",
            entry.seq,
            self.last_seq
        );
        if let Some(hook) = &mut self.fail_hook {
            if hook(&entry) {
                // The seq is still consumed: a rejected append leaves a
                // hole, never a renumbering.
                self.last_seq = entry.seq;
                return Err(JournalError::Rejected);
            }
        }
        if let Some(file) = &mut self.file {
            let line =
                serde_json::to_string(&entry).map_err(|e| JournalError::Io(e.to_string()))?;
            file.write_all(line.as_bytes())
                .and_then(|()| file.write_all(b"\n"))
                .map_err(|e| JournalError::Io(e.to_string()))?;
        }
        let seq = entry.seq;
        self.last_seq = seq;
        let tail = self.segments.back_mut().expect("always one active segment");
        tail.push(entry);
        if tail.len() >= self.segment_capacity {
            self.segments.push_back(Vec::new());
            // Segment seal is the journal's explicit durability flush
            // point: everything up to `seq` must survive a hard process
            // kill, so a replica replaying the on-disk file agrees with
            // the primary's sealed history. The entry is already recorded
            // in memory either way; a failed flush reports Io so the
            // caller can force a covering snapshot.
            if let Some(file) = &self.file {
                file.sync_all()
                    .map_err(|e| JournalError::Io(e.to_string()))?;
                self.synced_through = seq;
            }
        }
        Ok(seq)
    }

    /// Raises the ownership fence to `epoch` (never lowers it). After
    /// this, [`EventJournal::append_owned`] rejects any writer whose
    /// epoch is below the fence — the journal-side half of split-brain
    /// prevention: a demoted primary's session object still holds the
    /// journal, but its stale epoch can no longer extend the history.
    pub fn fence(&mut self, epoch: u64) {
        self.fence_epoch = self.fence_epoch.max(epoch);
    }

    /// The current ownership fence (0 = never fenced).
    pub fn fence_epoch(&self) -> u64 {
        self.fence_epoch
    }

    /// [`EventJournal::append`] stamped with the writer's ownership
    /// epoch. The entry is recorded only when `epoch` is at or above the
    /// fence; a stale writer gets a typed [`JournalError::Fenced`] and
    /// the entry — and its seq — are **not** consumed, so the rightful
    /// owner's numbering is undisturbed.
    ///
    /// # Errors
    ///
    /// Fails with [`JournalError::Fenced`] on a stale epoch, otherwise
    /// exactly as [`EventJournal::append`].
    pub fn append_owned(&mut self, epoch: u64, entry: JournalEntry) -> Result<u64, JournalError> {
        if epoch < self.fence_epoch {
            return Err(JournalError::Fenced {
                writer: epoch,
                fence: self.fence_epoch,
            });
        }
        self.append(entry)
    }

    /// Entries with `seq > after`, oldest first — the replay suffix for a
    /// snapshot covering everything through `after`.
    pub fn suffix_after(&self, after: u64) -> Vec<JournalEntry> {
        self.segments
            .iter()
            .flatten()
            .filter(|e| e.seq > after)
            .cloned()
            .collect()
    }

    /// Drops sealed segments whose every entry is `<= through` (a snapshot
    /// now covers them). The file backend appends a marker line instead of
    /// rewriting history.
    pub fn truncate_through(&mut self, through: u64) {
        while self.segments.len() > 1 {
            let oldest = &self.segments[0];
            if oldest.last().is_some_and(|e| e.seq <= through) || oldest.is_empty() {
                self.segments.pop_front();
            } else {
                break;
            }
        }
        self.truncated_through = self.truncated_through.max(through);
        if let Some(file) = &mut self.file {
            let marker = format!("{{\"snapshot_through\":{through}}}");
            let _ = file
                .write_all(marker.as_bytes())
                .and_then(|()| file.write_all(b"\n"));
        }
    }

    /// Entries currently held in memory.
    pub fn len(&self) -> usize {
        self.segments.iter().map(Vec::len).sum()
    }

    /// True if no entries are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest sequence number ever appended (0 before the first).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Highest sequence number dropped by truncation (0 if none).
    pub fn truncated_through(&self) -> u64 {
        self.truncated_through
    }

    /// Highest sequence number covered by a durability flush (fsync on
    /// segment seal). Entries above this mark live in the OS page cache
    /// until the active segment seals; a hard kill may lose them locally,
    /// which is why replication ships every append, not just sealed ones.
    pub fn synced_through(&self) -> u64 {
        self.synced_through
    }

    /// Reads entries back from a file written by [`EventJournal::with_file`],
    /// honoring the latest `snapshot_through` marker: only entries after it
    /// are returned (the replay suffix a restart would need).
    ///
    /// A malformed **final** line is a torn tail — the process died
    /// mid-append, which the append-before-fsync discipline makes the one
    /// partial write the format permits. The tail is truncated off the
    /// file (with a warning) and the intact prefix restores normally; a
    /// malformed line anywhere *before* the end is real corruption and
    /// still fails the restore.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be read or a non-final line is malformed.
    pub fn read_file(path: &Path) -> Result<(u64, Vec<JournalEntry>), JournalError> {
        // Raw bytes, not read_to_string: a torn tail can split a
        // multi-byte UTF-8 sequence, and that must surface as a malformed
        // final line (truncatable) rather than a fatal IO error.
        let bytes = std::fs::read(path).map_err(|e| JournalError::Io(e.to_string()))?;
        let mut through = 0u64;
        let mut entries: Vec<JournalEntry> = Vec::new();
        let mut offset = 0usize;
        for raw in bytes.split_inclusive(|&b| b == b'\n') {
            let start = offset;
            offset += raw.len();
            let parsed = std::str::from_utf8(raw).map(str::trim);
            if parsed == Ok("") {
                continue;
            }
            if let Ok(line) = parsed {
                if let Ok(json) = serde_json::from_str::<serde_json::Value>(line) {
                    if let Some(t) = json.get("snapshot_through").and_then(|v| match v {
                        serde_json::Value::U64(n) => Some(*n),
                        serde_json::Value::I64(n) if *n >= 0 => Some(*n as u64),
                        _ => None,
                    }) {
                        through = through.max(t);
                        continue;
                    }
                }
            }
            let err = match parsed.map_err(|e| e.to_string()).and_then(|line| {
                serde_json::from_str::<JournalEntry>(line).map_err(|e| e.to_string())
            }) {
                Ok(entry) => {
                    entries.push(entry);
                    continue;
                }
                Err(e) => e,
            };
            // Only the very last line may be torn; anything with
            // content after it is mid-file corruption.
            if bytes[offset..].iter().all(u8::is_ascii_whitespace) {
                eprintln!(
                    "journal: torn final line in {} ({err}); truncating {} byte(s)",
                    path.display(),
                    bytes.len() - start
                );
                OpenOptions::new()
                    .write(true)
                    .open(path)
                    .and_then(|f| f.set_len(start as u64))
                    .map_err(|e| JournalError::Io(e.to_string()))?;
                break;
            }
            return Err(JournalError::Io(err));
        }
        entries.retain(|e| e.seq > through);
        Ok((through, entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> JournalEntry {
        JournalEntry {
            seq,
            input: "Mouse.x".to_string(),
            value: PlainValue::Int(seq as i64),
            trace: 0,
        }
    }

    #[test]
    fn appends_and_reads_suffixes() {
        let mut j = EventJournal::new(3);
        for seq in 1..=7 {
            assert_eq!(j.append(entry(seq)), Ok(seq));
        }
        assert_eq!(j.len(), 7);
        assert_eq!(j.last_seq(), 7);
        let suffix = j.suffix_after(5);
        assert_eq!(suffix.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![6, 7]);
        assert_eq!(j.suffix_after(0).len(), 7);
        assert_eq!(j.suffix_after(7).len(), 0);
    }

    #[test]
    fn truncation_drops_covered_segments_only() {
        let mut j = EventJournal::new(2);
        for seq in 1..=7 {
            j.append(entry(seq)).unwrap();
        }
        // Segments: [1,2][3,4][5,6][7]. A snapshot through 5 can drop the
        // first two sealed segments but not [5,6] (6 > 5 must survive).
        j.truncate_through(5);
        assert_eq!(j.truncated_through(), 5);
        let seqs: Vec<u64> = j.suffix_after(0).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7]);
        // The replay suffix is unaffected by what truncation kept extra.
        assert_eq!(j.suffix_after(5).len(), 2);
    }

    #[test]
    fn failure_hook_rejects_but_consumes_the_seq() {
        let mut j = EventJournal::new(8);
        let mut toggle = false;
        j.set_failure_hook(Box::new(move |_| {
            toggle = !toggle;
            toggle // reject every other append
        }));
        assert_eq!(j.append(entry(1)), Err(JournalError::Rejected));
        assert_eq!(j.append(entry(2)), Ok(2));
        assert_eq!(j.append(entry(3)), Err(JournalError::Rejected));
        assert_eq!(j.append(entry(4)), Ok(4));
        assert_eq!(j.last_seq(), 4);
        let seqs: Vec<u64> = j.suffix_after(0).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 4]);
    }

    #[test]
    fn file_backend_round_trips_with_markers() {
        let dir = std::env::temp_dir().join(format!("elm-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j1.ndjson");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = EventJournal::with_file(4, &path).unwrap();
            for seq in 1..=5 {
                j.append(entry(seq)).unwrap();
            }
            j.truncate_through(3);
            j.append(entry(6)).unwrap();
        }
        let (through, entries) = EventJournal::read_file(&path).unwrap();
        assert_eq!(through, 3);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn segment_seal_is_the_durability_flush_point() {
        let dir = std::env::temp_dir().join(format!("elm-journal-sync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seal.ndjson");
        let _ = std::fs::remove_file(&path);
        let mut j = EventJournal::with_file(3, &path).unwrap();
        assert_eq!(j.synced_through(), 0);
        j.append(entry(1)).unwrap();
        j.append(entry(2)).unwrap();
        // Active segment not yet full: no flush has been forced.
        assert_eq!(j.synced_through(), 0);
        j.append(entry(3)).unwrap();
        // Seal at capacity 3 fsyncs everything appended so far.
        assert_eq!(j.synced_through(), 3);
        j.append(entry(4)).unwrap();
        assert_eq!(j.synced_through(), 3);
        for seq in 5..=6 {
            j.append(entry(seq)).unwrap();
        }
        assert_eq!(j.synced_through(), 6);
        // The flushed prefix is exactly what a post-kill reader sees.
        let (_, entries) = EventJournal::read_file(&path).unwrap();
        assert!(entries.iter().any(|e| e.seq == 6));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn in_memory_journals_have_no_durability_mark() {
        let mut j = EventJournal::new(2);
        for seq in 1..=5 {
            j.append(entry(seq)).unwrap();
        }
        assert_eq!(j.synced_through(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_seq_is_a_bug() {
        let mut j = EventJournal::new(4);
        j.append(entry(2)).unwrap();
        j.append(entry(2)).unwrap();
    }

    #[test]
    fn fencing_rejects_stale_epochs_without_consuming_seqs() {
        let mut j = EventJournal::new(8);
        // Unfenced: every epoch writes.
        assert_eq!(j.append_owned(1, entry(1)), Ok(1));
        j.fence(3);
        assert_eq!(j.fence_epoch(), 3);
        // A stale writer is refused and the seq is NOT consumed: the
        // rightful owner appends the same seq right after.
        assert_eq!(
            j.append_owned(1, entry(2)),
            Err(JournalError::Fenced {
                writer: 1,
                fence: 3
            })
        );
        assert_eq!(j.append_owned(3, entry(2)), Ok(2));
        // Epochs above the fence also write; the fence never lowers.
        assert_eq!(j.append_owned(4, entry(3)), Ok(3));
        j.fence(2);
        assert_eq!(j.fence_epoch(), 3);
        let seqs: Vec<u64> = j.suffix_after(0).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn plain_append_ignores_the_fence() {
        // Single-process recovery paths predate epochs and must keep
        // working: `append` (no epoch) is deliberately unfenced.
        let mut j = EventJournal::new(8);
        j.fence(5);
        assert_eq!(j.append(entry(1)), Ok(1));
    }

    #[test]
    fn torn_final_line_is_truncated_and_restore_succeeds() {
        let dir = std::env::temp_dir().join(format!("elm-journal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.ndjson");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = EventJournal::with_file(4, &path).unwrap();
            for seq in 1..=3 {
                j.append(entry(seq)).unwrap();
            }
        }
        // Simulate a crash mid-append: half a JSON object, no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"seq\":4,\"input\":\"Mo").unwrap();
        }
        let (through, entries) = EventJournal::read_file(&path).unwrap();
        assert_eq!(through, 0);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        // The torn bytes are gone from disk: a second restore is clean
        // and appending resumes on a well-formed file.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'), "torn tail survived: {text:?}");
        {
            let mut j = EventJournal::with_file(4, &path).unwrap();
            // Re-seed the in-memory seq high-water mark as recovery does.
            j.last_seq = 3;
            j.append(entry(4)).unwrap();
        }
        let (_, entries) = EventJournal::read_file(&path).unwrap();
        assert_eq!(entries.len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_splitting_a_utf8_sequence_is_truncated() {
        let dir = std::env::temp_dir().join(format!("elm-journal-utf8-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("utf8.ndjson");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = EventJournal::with_file(4, &path).unwrap();
            for seq in 1..=2 {
                j.append(entry(seq)).unwrap();
            }
        }
        // A crash mid-append can cut a multi-byte UTF-8 sequence in half:
        // "é" is 0xC3 0xA9, and only the lead byte made it to disk. The
        // whole file is now invalid UTF-8; restore must still treat this
        // as a torn final line, not a fatal read error.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"seq\":3,\"input\":\"caf\xC3").unwrap();
        }
        let (through, entries) = EventJournal::read_file(&path).unwrap();
        assert_eq!(through, 0);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        // The torn bytes are gone and a second restore is clean.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'), "torn tail survived: {text:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_still_fails_the_restore() {
        let dir = std::env::temp_dir().join(format!("elm-journal-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.ndjson");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = EventJournal::with_file(4, &path).unwrap();
            j.append(entry(1)).unwrap();
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            // A malformed line WITH a well-formed line after it is not a
            // torn tail — it is corruption, and restore must refuse.
            f.write_all(b"{\"seq\":2,\"inp\n").unwrap();
            let good = serde_json::to_string(&entry(3)).unwrap();
            f.write_all(good.as_bytes()).unwrap();
            f.write_all(b"\n").unwrap();
        }
        assert!(matches!(
            EventJournal::read_file(&path),
            Err(JournalError::Io(_))
        ));
        let _ = std::fs::remove_file(&path);
    }
}
