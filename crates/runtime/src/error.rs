//! Error types for graph construction and execution.

use std::error::Error;
use std::fmt;

use crate::graph::NodeId;

/// Errors detected when finalizing a [`crate::graph::SignalGraph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no nodes.
    Empty,
    /// A referenced node id does not exist (or an `async` inner reference
    /// points forward).
    UnknownNode(NodeId),
    /// A compute node was declared with zero parents.
    ComputeWithoutParents(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "signal graph has no nodes"),
            GraphError::UnknownNode(id) => write!(f, "unknown node {id}"),
            GraphError::ComputeWithoutParents(id) => {
                write!(f, "compute node {id} has no parents")
            }
        }
    }
}

impl Error for GraphError {}

/// Errors raised while executing a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// An occurrence referenced a node that is not a source of this graph.
    NotASource(NodeId),
    /// An input occurrence arrived without a payload.
    MissingPayload(NodeId),
    /// The runtime was already shut down.
    Stopped,
    /// A worker thread disappeared (channel disconnected / panicked).
    WorkerLost(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::NotASource(id) => write!(f, "node {id} is not a source node"),
            RunError::MissingPayload(id) => {
                write!(f, "input occurrence for {id} carried no payload")
            }
            RunError::Stopped => write!(f, "runtime already stopped"),
            RunError::WorkerLost(what) => write!(f, "worker thread lost: {what}"),
        }
    }
}

impl Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        assert_eq!(GraphError::Empty.to_string(), "signal graph has no nodes");
        assert_eq!(
            RunError::NotASource(NodeId(4)).to_string(),
            "node n4 is not a source node"
        );
        assert_eq!(RunError::Stopped.to_string(), "runtime already stopped");
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
        assert_send_sync::<RunError>();
    }
}
