//! Graphviz DOT rendering of signal graphs.
//!
//! Reproduces the paper's signal-graph figures: Fig. 7 (the relative
//! mouse-position graph) and Fig. 8(a–c) (the `wordPairs` graphs, including
//! the primary/secondary subgraph split introduced by `async`). Source
//! nodes are drawn as boxes with a dashed edge from the global event
//! dispatcher; secondary subgraphs are clustered per owning `async` node.

use std::fmt::Write as _;

use crate::graph::{NodeKind, SignalGraph};

/// Renders `graph` as a Graphviz DOT document.
///
/// ```
/// use elm_runtime::{dot, GraphBuilder, Value};
///
/// let mut g = GraphBuilder::new();
/// let x = g.input("Mouse.x", 0i64);
/// let w = g.input("Window.width", 1i64);
/// let d = g.lift2("divide", |a, b| {
///     Value::Int(a.as_int().unwrap() / b.as_int().unwrap().max(1))
/// }, x, w);
/// let graph = g.finish(d).unwrap();
/// let rendered = dot::to_dot(&graph);
/// assert!(rendered.contains("Mouse.x"));
/// assert!(rendered.contains("dispatcher"));
/// ```
pub fn to_dot(graph: &SignalGraph) -> String {
    to_dot_inner(graph, None)
}

/// Renders `graph` with nodes colored by cumulative compute time ("heat").
///
/// `compute_ns[i]` is node `i`'s cumulative compute time in nanoseconds
/// (e.g. the per-node histogram sums collected by a
/// [`crate::tracing::Tracer`]); missing entries count as zero. Node fill
/// goes from white (cold) to saturated red (the hottest node), and each
/// label is annotated with the cumulative milliseconds, so profiling output
/// is visually inspectable with any Graphviz viewer.
pub fn to_dot_with_heat(graph: &SignalGraph, compute_ns: &[u64]) -> String {
    to_dot_inner(graph, Some(compute_ns))
}

fn to_dot_inner(graph: &SignalGraph, heat: Option<&[u64]>) -> String {
    let mut out = String::new();
    let owner = graph.subgraph_owner();
    out.push_str("digraph signal_graph {\n");
    out.push_str("  rankdir=TB;\n");
    out.push_str(
        "  dispatcher [label=\"Global Event\\nDispatcher\", shape=ellipse, style=dashed];\n",
    );

    // Primary nodes first.
    for node in graph.nodes() {
        if owner[node.id.index()].is_none() {
            write_node(&mut out, "  ", graph, node.id.index(), heat);
        }
    }
    // One cluster per async node's secondary subgraph.
    for a in graph.async_sources() {
        let mut members: Vec<usize> = Vec::new();
        for node in graph.nodes() {
            if owner[node.id.index()] == Some(a) {
                members.push(node.id.index());
            }
        }
        if members.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  subgraph cluster_{} {{", a.index());
        let _ = writeln!(out, "    label=\"secondary subgraph of {a}\";");
        out.push_str("    style=dotted;\n");
        for idx in members {
            write_node(&mut out, "    ", graph, idx, heat);
        }
        out.push_str("  }\n");
    }

    // Edges.
    for node in graph.nodes() {
        for p in &node.parents {
            let _ = writeln!(out, "  {} -> {};", p, node.id);
        }
        match node.kind {
            NodeKind::Input { .. } => {
                let _ = writeln!(out, "  dispatcher -> {} [style=dashed];", node.id);
            }
            NodeKind::Async { inner } => {
                let _ = writeln!(out, "  dispatcher -> {} [style=dashed];", node.id);
                let _ = writeln!(
                    out,
                    "  {} -> {} [style=dotted, label=\"buffer\"];",
                    inner, node.id
                );
            }
            NodeKind::Compute { .. } => {}
        }
    }
    let _ = writeln!(out, "  {} [peripheries=2];", graph.output());
    out.push_str("}\n");
    out
}

fn write_node(
    out: &mut String,
    indent: &str,
    graph: &SignalGraph,
    idx: usize,
    heat: Option<&[u64]>,
) {
    let node = &graph.nodes()[idx];
    let shape = if node.is_source() { "box" } else { "oval" };
    let label = node.label.replace('"', "\\\"");
    match heat {
        Some(compute_ns) => {
            let max = compute_ns.iter().copied().max().unwrap_or(0).max(1);
            let ns = compute_ns.get(idx).copied().unwrap_or(0);
            // White (cold) → saturated red (hottest): scale green/blue down
            // with the node's share of the hottest node's time.
            let frac = ns as f64 / max as f64;
            let cold = (255.0 * (1.0 - frac)).round() as u8;
            let ms = ns as f64 / 1e6;
            let _ = writeln!(
                out,
                "{indent}{} [label=\"{label}\\n{ms:.3} ms\", shape={shape}, \
                 style=filled, fillcolor=\"#ff{cold:02x}{cold:02x}\"];",
                node.id,
            );
        }
        None => {
            let _ = writeln!(
                out,
                "{indent}{} [label=\"{label}\", shape={shape}];",
                node.id
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::value::Value;

    #[test]
    fn fig7_graph_renders_expected_structure() {
        let mut g = GraphBuilder::new();
        let x = g.input("Mouse.x", 0i64);
        let w = g.input("Window.width", 1i64);
        let d = g.lift2("λy.λz.y÷z", |a, _b| a.clone(), x, w);
        let graph = g.finish(d).unwrap();
        let dot = to_dot(&graph);
        assert!(dot.contains("dispatcher -> n0 [style=dashed];"));
        assert!(dot.contains("dispatcher -> n1 [style=dashed];"));
        assert!(dot.contains("n0 -> n2;"));
        assert!(dot.contains("n1 -> n2;"));
        assert!(dot.contains("n2 [peripheries=2];"));
    }

    #[test]
    fn heat_rendering_colors_hottest_node_red() {
        let mut g = GraphBuilder::new();
        let x = g.input("Mouse.x", 0i64);
        let f = g.lift1("f", |v| v.clone(), x);
        let h = g.lift1("hot", |v| v.clone(), f);
        let graph = g.finish(h).unwrap();
        // Node 2 ("hot") has all the compute time.
        let dot = to_dot_with_heat(&graph, &[0, 500_000, 2_000_000]);
        assert!(dot.contains("n2 [label=\"hot\\n2.000 ms\""));
        assert!(dot.contains("fillcolor=\"#ff0000\""), "{dot}");
        // The cold input stays white.
        assert!(dot.contains("fillcolor=\"#ffffff\""), "{dot}");
        // Heat-free rendering is unchanged.
        assert!(!to_dot(&graph).contains("fillcolor"));
    }

    #[test]
    fn fig8c_async_renders_secondary_cluster() {
        let mut g = GraphBuilder::new();
        let words = g.input("words", Value::str(""));
        let fr = g.lift1("toFrench", |v| v.clone(), words);
        let pairs = g.lift2("(,)", |a, b| Value::pair(a.clone(), b.clone()), words, fr);
        let a = g.async_source(pairs);
        let mouse = g.input("Mouse", 0i64);
        let main = g.lift2("(,)", |x, y| Value::pair(x.clone(), y.clone()), a, mouse);
        let graph = g.finish(main).unwrap();
        let dot = to_dot(&graph);
        assert!(dot.contains("subgraph cluster_3"));
        assert!(dot.contains("secondary subgraph of n3"));
        assert!(dot.contains("[style=dotted, label=\"buffer\"]"));
    }
}
