//! Failure injection: a panicking node function must not deadlock the
//! pipelined runtime.
//!
//! The paper's CML model has no story for a crashing node — a real system
//! needs one. Our policy: the node is *poisoned* (counted in stats), emits
//! `NoChange` forever after, and the rest of the graph keeps running; the
//! drain/quiescence protocol stays live.

use elm_runtime::{
    changed_values, ConcurrentRuntime, GraphBuilder, Occurrence, SyncRuntime, Value,
};

fn poison_graph() -> (
    elm_runtime::SignalGraph,
    elm_runtime::NodeId,
    elm_runtime::NodeId,
) {
    let mut g = GraphBuilder::new();
    let a = g.input("a", 0i64);
    let b = g.input("b", 0i64);
    let fragile = g.lift1(
        "fragile",
        |v| {
            let n = v.as_int().unwrap_or(0);
            assert!(n != 13, "unlucky value");
            Value::Int(n * 2)
        },
        a,
    );
    let sturdy = g.lift1("sturdy", |v| Value::Int(v.as_int().unwrap_or(0) + 100), b);
    let join = g.lift2(
        "join",
        |x, y| Value::pair(x.clone(), y.clone()),
        fragile,
        sturdy,
    );
    let graph = g.finish(join).unwrap();
    (graph, a, b)
}

#[test]
fn panicking_node_poisons_but_does_not_deadlock() {
    // Silence the panic backtrace noise from the poisoned worker.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let (graph, a, b) = poison_graph();
    let mut rt = ConcurrentRuntime::start(&graph);
    rt.feed(Occurrence::input(a, 1i64)).unwrap();
    rt.feed(Occurrence::input(a, 13i64)).unwrap(); // boom
    rt.feed(Occurrence::input(a, 2i64)).unwrap(); // poisoned: ignored
    rt.feed(Occurrence::input(b, 5i64)).unwrap(); // unaffected branch
    let outs = rt.drain().expect("drain must complete despite the panic");

    let vals = changed_values(&outs);
    // Event 1: (2, 100). Event 13: poisoned, NoChange at join? No — join
    // sees no change from fragile but nothing else changed either, so the
    // 13-event yields NoChange overall. Event 2: fragile poisoned →
    // NoChange. Event b=5: join recomputes with last good fragile value.
    assert_eq!(vals.len(), 2, "{vals:?}");
    assert_eq!(vals[0], Value::pair(Value::Int(2), Value::Int(100)));
    assert_eq!(vals[1], Value::pair(Value::Int(2), Value::Int(105)));
    assert_eq!(rt.stats().node_panics(), 1);
    rt.stop();

    std::panic::set_hook(prev_hook);
}

#[test]
fn sync_runtime_poisons_like_the_concurrent_one() {
    // Both schedulers share the poisoning policy, so hosts that run many
    // programs on the synchronous engine (the multi-session server) can
    // detect a crashed node via stats and evict the session instead of
    // dying with it.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let (graph, a, b) = poison_graph();
    let mut rt = SyncRuntime::new(&graph);
    rt.feed(Occurrence::input(a, 1i64)).unwrap();
    rt.feed(Occurrence::input(a, 13i64)).unwrap(); // boom
    rt.feed(Occurrence::input(a, 2i64)).unwrap(); // poisoned: ignored
    rt.feed(Occurrence::input(b, 5i64)).unwrap(); // unaffected branch
    let vals = changed_values(&rt.run_to_quiescence());

    // Same observable sequence as the concurrent scheduler's test above.
    assert_eq!(vals.len(), 2, "{vals:?}");
    assert_eq!(vals[0], Value::pair(Value::Int(2), Value::Int(100)));
    assert_eq!(vals[1], Value::pair(Value::Int(2), Value::Int(105)));
    assert_eq!(rt.stats().node_panics(), 1);

    std::panic::set_hook(prev_hook);
}

#[test]
fn poisoned_async_subgraph_still_quiesces() {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut g = GraphBuilder::new();
    let i = g.input("i", 0i64);
    let fragile = g.lift1(
        "fragile",
        |v| {
            assert!(v.as_int() != Some(13), "boom");
            v.clone()
        },
        i,
    );
    let a = g.async_source(fragile);
    let mouse = g.input("m", 0i64);
    let join = g.lift2("join", |x, y| Value::pair(x.clone(), y.clone()), a, mouse);
    let graph = g.finish(join).unwrap();

    let mut rt = ConcurrentRuntime::start(&graph);
    rt.feed(Occurrence::input(i, 13i64)).unwrap(); // poisons the secondary subgraph
    rt.feed(Occurrence::input(mouse, 1i64)).unwrap();
    rt.feed(Occurrence::input(mouse, 2i64)).unwrap();
    let outs = rt
        .drain()
        .expect("quiesces with a poisoned secondary subgraph");
    let vals = changed_values(&outs);
    assert_eq!(vals.len(), 2);
    assert_eq!(rt.stats().node_panics(), 1);
    assert_eq!(rt.stats().async_events(), 0, "no async event was generated");
    rt.stop();

    std::panic::set_hook(prev_hook);
}
