//! Satellite property: crash recovery is semantically invisible on the
//! synchronous engine. For any event sequence and any snapshot point,
//! `restore(snapshot)` + replay of the journal suffix reproduces exactly
//! the state *and* the output stream of an uninterrupted run — the
//! constructive form of the paper's Theorem 1 (a session is a pure
//! function of its event journal).

use elm_runtime::{
    changed_values, EventJournal, GraphBuilder, JournalEntry, Occurrence, PlainValue,
    RuntimeSnapshot, SignalGraph, SyncRuntime, Value, WireSnapshot,
};
use proptest::prelude::*;

/// Two inputs, a stateful fold, and a join — enough structure that any
/// lost, duplicated, or reordered replay event changes the fold's value.
fn graph() -> SignalGraph {
    let mut g = GraphBuilder::new();
    let a = g.input("a", 0i64);
    let b = g.input("b", 0i64);
    let sum = g.foldp(
        "sum",
        |e, acc| Value::Int(acc.as_int().unwrap_or(0) * 3 + e.as_int().unwrap_or(0)),
        0i64,
        a,
    );
    let join = g.lift2(
        "join",
        |s, y| Value::Int(s.as_int().unwrap_or(0) * 1000 + y.as_int().unwrap_or(0)),
        sum,
        b,
    );
    g.finish(join).expect("well-formed test graph")
}

fn feed_one(rt: &mut SyncRuntime, graph: &SignalGraph, input: &str, v: i64) -> Vec<Value> {
    let node = graph.input_named(input).expect("declared input");
    rt.feed(Occurrence::input(node, v)).expect("feed");
    changed_values(&rt.run_to_quiescence())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn restore_plus_journal_suffix_equals_uninterrupted_run(
        events in prop::collection::vec((any::<bool>(), -50i64..50), 0..60),
        cut in 0usize..61,
    ) {
        let g = graph();
        let cut = cut.min(events.len());

        // Uninterrupted oracle: every post-cut output, plus final state.
        let mut oracle = SyncRuntime::new(&g);
        let mut oracle_tail: Vec<Value> = Vec::new();
        for (i, (is_a, v)) in events.iter().enumerate() {
            let outs = feed_one(&mut oracle, &g, if *is_a { "a" } else { "b" }, *v);
            if i >= cut {
                oracle_tail.extend(outs);
            }
        }
        let oracle_final = oracle.output_value().clone();

        // Crashing run: journal every event, snapshot at the cut, then
        // "crash" — drop the runtime on the floor and recover a fresh one
        // from snapshot + journal suffix.
        let mut journal = EventJournal::new(8);
        let mut live = SyncRuntime::new(&g);
        for (i, (is_a, v)) in events.iter().enumerate() {
            journal
                .append(JournalEntry {
                    seq: (i + 1) as u64,
                    input: if *is_a { "a" } else { "b" }.to_string(),
                    value: PlainValue::Int(*v),
                    trace: 0,
                })
                .expect("append");
            feed_one(&mut live, &g, if *is_a { "a" } else { "b" }, *v);
            if i + 1 == cut {
                // Snapshot time: also truncate, as the server does.
                let snap = live.snapshot();
                journal.truncate_through(cut as u64);
                drop(live);

                let mut recovered = SyncRuntime::new(&g);
                recovered.restore(&snap).expect("snapshot matches graph");
                live = recovered;
            }
        }
        // A cut at 0 means recovery from a pristine snapshot.
        if cut == 0 {
            let snap = SyncRuntime::new(&g).snapshot();
            let mut recovered = SyncRuntime::new(&g);
            recovered.restore(&snap).expect("snapshot matches graph");
            live = recovered;
        }

        // The replay above interleaved recovery *into* the feeding loop,
        // proving in-place restoration; now do it the server's way too —
        // from the journal suffix alone.
        let snap_at_cut = {
            let mut rt = SyncRuntime::new(&g);
            for (is_a, v) in &events[..cut] {
                feed_one(&mut rt, &g, if *is_a { "a" } else { "b" }, *v);
            }
            rt.snapshot()
        };
        let mut replayed = SyncRuntime::new(&g);
        replayed.restore(&snap_at_cut).expect("restore");
        let mut replay_tail: Vec<Value> = Vec::new();
        for entry in journal.suffix_after(cut as u64) {
            let v = match entry.value {
                PlainValue::Int(n) => n,
                other => panic!("unexpected journal value {other:?}"),
            };
            replay_tail.extend(feed_one(&mut replayed, &g, &entry.input, v));
        }

        prop_assert_eq!(live.output_value(), &oracle_final);
        prop_assert_eq!(replayed.output_value(), &oracle_final);
        prop_assert_eq!(replay_tail, oracle_tail);
        prop_assert_eq!(replayed.snapshot().next_seq(), oracle.snapshot().next_seq());
    }

    /// The cluster form of the same theorem: the snapshot crosses a
    /// process boundary as a [`WireSnapshot`] JSON blob and the journal
    /// suffix crosses as NDJSON lines — exactly what `journal-append` /
    /// `snapshot-ship` peer verbs carry — and the replica's rebuilt state
    /// must still be byte-identical to the primary's for an arbitrary
    /// kill point.
    #[test]
    fn wire_encoded_restore_equals_primary_for_arbitrary_kill_points(
        events in prop::collection::vec((any::<bool>(), -50i64..50), 0..60),
        snap_at in 0usize..61,
        kill_at in 0usize..61,
    ) {
        let g = graph();
        let snap_at = snap_at.min(events.len());
        // The kill can only land after the snapshot was shipped.
        let kill_at = kill_at.clamp(snap_at, events.len());

        // Primary: journals every event, ships a snapshot at `snap_at`,
        // dies abruptly at `kill_at`.
        let mut primary = SyncRuntime::new(&g);
        let mut shipped_snapshot: Option<String> = None;
        let mut shipped_entries: Vec<String> = Vec::new();
        for (i, (is_a, v)) in events[..kill_at].iter().enumerate() {
            let entry = JournalEntry {
                seq: (i + 1) as u64,
                input: if *is_a { "a" } else { "b" }.to_string(),
                value: PlainValue::Int(*v),
                trace: 0,
            };
            // Replication ships the serialized line, as the wire does.
            shipped_entries.push(serde_json::to_string(&entry).expect("entry encodes"));
            feed_one(&mut primary, &g, if *is_a { "a" } else { "b" }, *v);
            if i + 1 == snap_at {
                let wire = primary.snapshot().to_wire().expect("plain values only");
                shipped_snapshot = Some(serde_json::to_string(&wire).expect("snapshot encodes"));
            }
        }
        if snap_at == 0 {
            let wire = SyncRuntime::new(&g).snapshot().to_wire().expect("plain values only");
            shipped_snapshot = Some(serde_json::to_string(&wire).expect("snapshot encodes"));
        }

        // Replica: decode the shipped snapshot, restore, replay the
        // decoded suffix. This is `Session::adopt` in miniature.
        let wire: WireSnapshot =
            serde_json::from_str(shipped_snapshot.as_deref().expect("snapshot was shipped"))
                .expect("snapshot decodes");
        prop_assert_eq!(wire.fingerprint, g.fingerprint());
        let mut replica = SyncRuntime::new(&g);
        replica
            .restore(&RuntimeSnapshot::from_wire(&wire))
            .expect("wire snapshot matches graph");
        for line in &shipped_entries {
            let entry: JournalEntry = serde_json::from_str(line).expect("entry decodes");
            if entry.seq <= snap_at as u64 {
                continue; // covered by the shipped snapshot
            }
            let v = match entry.value {
                PlainValue::Int(n) => n,
                other => panic!("unexpected journal value {other:?}"),
            };
            feed_one(&mut replica, &g, &entry.input, v);
        }

        prop_assert_eq!(replica.output_value(), primary.output_value());
        prop_assert_eq!(replica.snapshot().next_seq(), primary.snapshot().next_seq());
        // The rebuilt state must round-trip to the identical wire form:
        // a second failover (replica dies too) loses nothing further.
        prop_assert_eq!(
            replica.snapshot().to_wire().expect("still plain"),
            primary.snapshot().to_wire().expect("still plain")
        );
    }
}
