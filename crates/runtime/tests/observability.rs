//! Satellite properties for the observability layer.
//!
//! * Histogram accounting: for any sequence of observations, the per-bucket
//!   counts sum to the recorded sample count (and merging preserves that
//!   invariant) — so the Prometheus `_bucket`/`_count` series can never
//!   disagree.
//! * Span-ring accounting: pushed = drained + dropped, and the ring never
//!   exceeds its capacity.

use elm_runtime::metrics::{Histogram, HISTOGRAM_BUCKETS};
use elm_runtime::tracing::{NodeSpan, SpanKind, SpanRing, TraceId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_bucket_counts_sum_to_sample_count(
        samples in proptest::collection::vec(any::<u64>(), 0..200)
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.observe(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.buckets.len(), HISTOGRAM_BUCKETS);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        // Every observation lands in the bucket whose bound covers it.
        for &s in &samples {
            let idx = Histogram::bucket_index(s);
            prop_assert!(idx < HISTOGRAM_BUCKETS);
            if let Some(le) = Histogram::bucket_le(idx) {
                prop_assert!(s <= le, "sample {} above bucket bound {}", s, le);
                if idx > 0 {
                    let prev = Histogram::bucket_le(idx - 1).unwrap();
                    prop_assert!(s > prev, "sample {} not above previous bound {}", s, prev);
                }
            }
        }
    }

    #[test]
    fn histogram_merge_preserves_bucket_sum_invariant(
        a in proptest::collection::vec(0u64..(1u64 << 50), 0..100),
        b in proptest::collection::vec(0u64..(1u64 << 50), 0..100),
    ) {
        let ha = Histogram::new();
        for &s in &a { ha.observe(s); }
        let hb = Histogram::new();
        for &s in &b { hb.observe(s); }
        let merged = ha.snapshot().merged(&hb.snapshot());
        prop_assert_eq!(merged.count, (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.buckets.iter().sum::<u64>(), merged.count);
        prop_assert_eq!(
            merged.sum,
            a.iter().sum::<u64>() + b.iter().sum::<u64>()
        );
    }

    #[test]
    fn span_ring_conserves_spans(
        pushes in 0usize..300,
        cap in 2usize..64,
    ) {
        let ring = SpanRing::new(cap);
        for i in 0..pushes {
            ring.push(NodeSpan {
                trace: TraceId(1),
                seq: i as u64,
                node: 0,
                kind: SpanKind::Compute,
                start_ns: 0,
                end_ns: 1,
                queue_ns: 0,
                changed: true,
                panicked: false,
            });
        }
        let drained = ring.drain();
        prop_assert!(drained.len() <= ring.capacity());
        prop_assert_eq!(drained.len() as u64 + ring.dropped(), pushes as u64);
        // Drop-oldest: survivors are the newest pushes, in order.
        for (k, s) in drained.iter().enumerate() {
            prop_assert_eq!(s.seq, (pushes - drained.len() + k) as u64);
        }
    }
}
