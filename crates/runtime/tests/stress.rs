//! Stress and corner-case tests for the concurrent pipelined runtime:
//! chained async boundaries, interleaved drains under load, and counter
//! consistency between schedulers.

use elm_runtime::{
    changed_values, ConcurrentRuntime, GraphBuilder, Occurrence, SyncRuntime, Value,
};

/// `async (async s)` and longer chains: each boundary re-enters the
/// dispatcher, so values traverse k extra events but stay ordered.
#[test]
fn chained_async_boundaries_preserve_order() {
    for chain in 1..=3 {
        let mut g = GraphBuilder::new();
        let i = g.input("i", 0i64);
        let mut cur = g.lift1("inc", |v| Value::Int(v.as_int().unwrap() + 1), i);
        for _ in 0..chain {
            cur = g.async_source(cur);
        }
        let out = g.lift1("id", |v| v.clone(), cur);
        let graph = g.finish(out).unwrap();

        let trace: Vec<_> = (0..40).map(|k| Occurrence::input(i, k as i64)).collect();
        let outs = ConcurrentRuntime::run_trace(&graph, trace).unwrap();
        let vals: Vec<i64> = changed_values(&outs)
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(
            vals,
            (1..=40).collect::<Vec<i64>>(),
            "chain depth {chain} reordered or dropped values"
        );
    }
}

/// A diamond where one branch crosses an async boundary: the join keeps
/// consuming one message per edge per event, so queues stay aligned even
/// though one side runs ahead.
#[test]
fn async_diamond_stays_aligned() {
    let mut g = GraphBuilder::new();
    let i = g.input("i", 0i64);
    let fast = g.lift1("fast", |v| v.clone(), i);
    let slow_inner = g.lift1("slow", |v| Value::Int(v.as_int().unwrap() * 100), i);
    let slow = g.async_source(slow_inner);
    let join = g.lift2("join", |a, b| Value::pair(a.clone(), b.clone()), fast, slow);
    let graph = g.finish(join).unwrap();

    let trace: Vec<_> = (1..=30).map(|k| Occurrence::input(i, k as i64)).collect();
    let outs = ConcurrentRuntime::run_trace(&graph, trace).unwrap();
    // One output event per dispatcher event: 30 external + 30 async.
    assert_eq!(outs.len(), 60);
    // The fast side is always the current input; the async side lags but
    // only ever holds values the input actually took, times 100.
    for v in changed_values(&outs) {
        let (a, b) = v.as_pair().unwrap();
        let (a, b) = (a.as_int().unwrap(), b.as_int().unwrap());
        assert!(b % 100 == 0 && (0..=3000).contains(&b));
        assert!((0..=30).contains(&a));
    }
}

/// Many inputs, interleaved feeding and draining, twice over: drain is
/// incremental and the graph remains consistent across rounds.
#[test]
fn repeated_drains_under_many_inputs() {
    let mut g = GraphBuilder::new();
    let inputs: Vec<_> = (0..8).map(|k| g.input(format!("in{k}"), 0i64)).collect();
    let sum = g.lift_n(
        "sum",
        |vs| Value::Int(vs.iter().filter_map(Value::as_int).sum()),
        inputs.clone(),
    );
    let graph = g.finish(sum).unwrap();

    let mut rt = ConcurrentRuntime::start(&graph);
    let mut total_events = 0u64;
    for round in 0..5 {
        for (k, input) in inputs.iter().enumerate() {
            rt.feed(Occurrence::input(*input, (round * 8 + k) as i64))
                .unwrap();
            total_events += 1;
        }
        let outs = rt.drain().unwrap();
        assert_eq!(outs.len(), 8, "one output event per input event");
    }
    // Final value: each input holds its last round's value.
    let last = (0..8).map(|k| (4 * 8 + k) as i64).sum::<i64>();
    rt.feed(Occurrence::input(inputs[0], 32i64)).unwrap(); // no-op change
    let outs = rt.drain().unwrap();
    assert_eq!(
        outs.last().unwrap().value().unwrap().as_int().unwrap(),
        last
    );
    assert_eq!(rt.stats().events(), total_events + 1);
    rt.stop();
}

/// Counter parity: for async-free graphs the concurrent scheduler performs
/// exactly the same computations/skips as the synchronous one.
#[test]
fn stats_match_between_schedulers_on_async_free_graphs() {
    let mut g = GraphBuilder::new();
    let a = g.input("a", 0i64);
    let b = g.input("b", 0i64);
    let fa = g.lift1("fa", |v| v.clone(), a);
    let fb = g.lift1("fb", |v| v.clone(), b);
    let join = g.lift2("join", |x, y| Value::pair(x.clone(), y.clone()), fa, fb);
    let graph = g.finish(join).unwrap();

    let trace: Vec<_> = (0..20)
        .map(|k| {
            if k % 2 == 0 {
                Occurrence::input(a, k as i64)
            } else {
                Occurrence::input(b, k as i64)
            }
        })
        .collect();

    let mut sync_rt = SyncRuntime::new(&graph);
    for occ in trace.clone() {
        sync_rt.feed(occ).unwrap();
    }
    sync_rt.run_to_quiescence();
    let sync_stats = sync_rt.stats().snapshot();

    let mut conc_rt = ConcurrentRuntime::start(&graph);
    for occ in trace {
        conc_rt.feed(occ).unwrap();
    }
    conc_rt.drain().unwrap();
    let conc_stats = conc_rt.stats().snapshot();
    conc_rt.stop();

    assert_eq!(sync_stats.events, conc_stats.events);
    assert_eq!(sync_stats.computations, conc_stats.computations);
    assert_eq!(sync_stats.memo_skips, conc_stats.memo_skips);
}

/// Zero-subscriber nodes (dead branches) must not stall the protocol.
#[test]
fn dead_branches_do_not_block_quiescence() {
    let mut g = GraphBuilder::new();
    let i = g.input("i", 0i64);
    // A branch nobody consumes.
    let _dead = g.lift1("dead", |v| v.clone(), i);
    let live = g.lift1("live", |v| Value::Int(v.as_int().unwrap() + 1), i);
    let graph = g.finish(live).unwrap();

    let outs =
        ConcurrentRuntime::run_trace(&graph, (0..10).map(|k| Occurrence::input(i, k as i64)))
            .unwrap();
    assert_eq!(changed_values(&outs).len(), 10);
}

/// Sources as outputs: a graph whose `main` is an input signal.
#[test]
fn input_as_output_works_on_both_schedulers() {
    let mut g = GraphBuilder::new();
    let i = g.input("i", 7i64);
    let graph = g.finish(i).unwrap();

    let trace = vec![Occurrence::input(i, 1i64), Occurrence::input(i, 2i64)];
    let sync_out = SyncRuntime::run_trace(&graph, trace.clone()).unwrap();
    let conc_out = ConcurrentRuntime::run_trace(&graph, trace).unwrap();
    assert_eq!(sync_out, conc_out);
    assert_eq!(
        changed_values(&sync_out),
        vec![Value::Int(1), Value::Int(2)]
    );
}
