//! The JavaScript signal runtime shipped with every compiled program.
//!
//! The paper's compiler emits JavaScript whose runtime must implement the
//! signal-graph semantics on a single-threaded event loop: "JavaScript has
//! poor support for concurrency, and as such the Elm-to-JavaScript
//! compiler supports concurrent execution only for asynchronous requests"
//! (§5). This prelude therefore:
//!
//! * propagates each event *synchronously* through the graph in
//!   topological order, with `Change`/`NoChange` memoization;
//! * implements `async` by buffering inner changes and re-dispatching
//!   them via `setTimeout(…, 0)` — yielding to the browser event loop, the
//!   JS analogue of re-entering the global dispatcher (and exactly why the
//!   paper's own JS backend confines concurrency to async boundaries);
//! * exposes `notify(name, value)` for environment events and a display
//!   loop writing `main`'s value into the document.

/// The JavaScript runtime prelude, embedded verbatim in compiler output.
pub const JS_RUNTIME: &str = r#"var ElmRT = (function () {
  'use strict';

  // ---- value helpers (FElm semantics: total operators, int division) ----
  var V = {
    div: function (a, b) {
      if (b === 0) return 0;
      if (Number.isInteger(a) && Number.isInteger(b)) return Math.trunc(a / b);
      return a / b;
    },
    mod: function (a, b) { return b === 0 ? 0 : a % b; },
    eq: function (a, b) { return V.same(a, b) ? 1 : 0; },
    ne: function (a, b) { return V.same(a, b) ? 0 : 1; },
    lt: function (a, b) { return a < b ? 1 : 0; },
    le: function (a, b) { return a <= b ? 1 : 0; },
    gt: function (a, b) { return a > b ? 1 : 0; },
    ge: function (a, b) { return a >= b ? 1 : 0; },
    and: function (a, b) { return (a !== 0 && b !== 0) ? 1 : 0; },
    or: function (a, b) { return (a !== 0 || b !== 0) ? 1 : 0; },
    append: function (a, b) { return String(a) + String(b); },
    pair: function (a, b) { return { fst: a, snd: b }; },
    cons: function (h, t) { return [h].concat(t); },
    head: function (l) {
      if (l.length === 0) throw new Error('head of the empty list');
      return l[0];
    },
    tail: function (l) {
      if (l.length === 0) throw new Error('tail of the empty list');
      return l.slice(1);
    },
    isEmpty: function (l) { return l.length === 0 ? 1 : 0; },
    length: function (l) { return l.length; },
    ith: function (i, l) {
      if (i < 0 || i >= l.length) throw new Error('ith index out of bounds');
      return l[i];
    },
    same: function (a, b) {
      if (a === b) return true;
      if (Array.isArray(a) && Array.isArray(b)) {
        if (a.length !== b.length) return false;
        for (var i = 0; i < a.length; i++) if (!V.same(a[i], b[i])) return false;
        return true;
      }
      if (a && b && typeof a === 'object' && typeof b === 'object') {
        var ka = Object.keys(a).sort(), kb = Object.keys(b).sort();
        if (ka.length !== kb.length) return false;
        for (var j = 0; j < ka.length; j++) {
          if (ka[j] !== kb[j] || !V.same(a[ka[j]], b[kb[j]])) return false;
        }
        return true;
      }
      return false;
    },
    show: function (v) {
      if (v === null) return '()';
      if (Array.isArray(v)) return '[' + v.map(V.show).join(', ') + ']';
      if (v && v.ctor !== undefined)
        return [v.ctor].concat(v.args.map(V.show)).join(' ');
      if (v && v.fst !== undefined) return '(' + V.show(v.fst) + ', ' + V.show(v.snd) + ')';
      if (v && typeof v === 'object') {
        return '{' + Object.keys(v).sort().map(function (k) {
          return k + ' = ' + V.show(v[k]);
        }).join(', ') + '}';
      }
      return String(v);
    }
  };

  // ---- the signal graph -------------------------------------------------
  function Runtime() {
    this.nodes = [];
    this.inputsByName = {};
    this.mainNode = null;
    this.display = null;
  }

  Runtime.prototype.input = function (name, defaultValue) {
    var node = { kind: 'input', id: this.nodes.length, name: name, value: defaultValue };
    this.nodes.push(node);
    if (this.inputsByName[name] === undefined) this.inputsByName[name] = node.id;
    return node.id;
  };

  Runtime.prototype.lift = function (f, parents) {
    var args = parents.map(function (p) { return this.nodes[p].value; }, this);
    var node = {
      kind: 'lift', id: this.nodes.length, f: f, parents: parents,
      value: f.apply(null, args)
    };
    this.nodes.push(node);
    return node.id;
  };

  Runtime.prototype.foldp = function (f, base, parent) {
    var node = { kind: 'foldp', id: this.nodes.length, f: f, parents: [parent], value: base };
    this.nodes.push(node);
    return node.id;
  };

  Runtime.prototype.merge = function (a, b) {
    var node = {
      kind: 'merge', id: this.nodes.length, parents: [a, b],
      value: this.nodes[a].value
    };
    this.nodes.push(node);
    return node.id;
  };

  Runtime.prototype.sampleOn = function (ticker, data) {
    var node = {
      kind: 'sampleOn', id: this.nodes.length, parents: [ticker, data],
      value: this.nodes[data].value
    };
    this.nodes.push(node);
    return node.id;
  };

  Runtime.prototype.dropRepeats = function (parent) {
    var node = {
      kind: 'dropRepeats', id: this.nodes.length, parents: [parent],
      value: this.nodes[parent].value
    };
    this.nodes.push(node);
    return node.id;
  };

  Runtime.prototype.keepIf = function (pred, base, parent) {
    var initial = this.nodes[parent].value;
    var node = {
      kind: 'keepIf', id: this.nodes.length, pred: pred, parents: [parent],
      value: pred(initial) !== 0 ? initial : base
    };
    this.nodes.push(node);
    return node.id;
  };

  Runtime.prototype.async = function (inner) {
    var node = {
      kind: 'async', id: this.nodes.length, inner: inner, parents: [],
      pending: [], value: this.nodes[inner].value
    };
    this.nodes.push(node);
    return node.id;
  };

  Runtime.prototype.main = function (id) { this.mainNode = id; return id; };

  // One globally-ordered event: propagate fully before returning
  // (the synchronous semantics; JS is single threaded).
  Runtime.prototype.dispatch = function (sourceId, value) {
    var changed = new Array(this.nodes.length);
    var node = this.nodes[sourceId];
    if (node.kind === 'input') {
      node.value = value;
      changed[sourceId] = true;
    } else if (node.kind === 'async' && node.pending.length > 0) {
      node.value = node.pending.shift();
      changed[sourceId] = true;
    }
    for (var i = 0; i < this.nodes.length; i++) {
      var n = this.nodes[i];
      if (n.kind === 'lift' || n.kind === 'foldp' || n.kind === 'merge' ||
          n.kind === 'sampleOn' || n.kind === 'dropRepeats' || n.kind === 'keepIf') {
        var any = n.parents.some(function (p) { return changed[p]; });
        if (!any) continue; // NoChange memoization
        if (n.kind === 'lift') {
          var args = n.parents.map(function (p) { return this.nodes[p].value; }, this);
          n.value = n.f.apply(null, args);
          changed[i] = true;
        } else if (n.kind === 'foldp') {
          n.value = n.f(this.nodes[n.parents[0]].value)(n.value);
          changed[i] = true;
        } else if (n.kind === 'merge') {
          // Left bias on simultaneous changes.
          var src = changed[n.parents[0]] ? n.parents[0] : n.parents[1];
          n.value = this.nodes[src].value;
          changed[i] = true;
        } else if (n.kind === 'sampleOn') {
          if (changed[n.parents[0]]) {
            n.value = this.nodes[n.parents[1]].value;
            changed[i] = true;
          }
        } else if (n.kind === 'dropRepeats') {
          var candidate = this.nodes[n.parents[0]].value;
          if (!V.same(n.value, candidate)) {
            n.value = candidate;
            changed[i] = true;
          }
        } else { // keepIf
          var v = this.nodes[n.parents[0]].value;
          if (n.pred(v) !== 0) {
            n.value = v;
            changed[i] = true;
          }
        }
      } else if (n.kind === 'async') {
        if (changed[n.inner]) {
          // Buffer and re-enter the event loop: a fresh global event.
          n.pending.push(this.nodes[n.inner].value);
          var self = this, id = n.id;
          setTimeout(function () { self.dispatch(id, null); }, 0);
        }
      }
    }
    if (this.mainNode !== null && changed[this.mainNode] && this.display) {
      this.display(this.nodes[this.mainNode].value);
    }
  };

  Runtime.prototype.notify = function (name, value) {
    var id = this.inputsByName[name];
    if (id === undefined) throw new Error('unknown input: ' + name);
    this.dispatch(id, value);
  };

  Runtime.prototype.start = function (display) {
    this.display = display || function (v) {
      if (typeof document !== 'undefined') {
        var el = document.getElementById('elm-main');
        if (el) el.textContent = V.show(v);
      }
    };
    if (this.mainNode !== null) this.display(this.nodes[this.mainNode].value);
  };

  return { Runtime: Runtime, V: V };
})();
if (typeof module !== 'undefined') module.exports = ElmRT;
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_defines_the_expected_api() {
        for needle in [
            "Runtime.prototype.input",
            "Runtime.prototype.lift",
            "Runtime.prototype.foldp",
            "Runtime.prototype.async",
            "Runtime.prototype.dispatch",
            "Runtime.prototype.notify",
            "NoChange memoization",
            "setTimeout",
        ] {
            assert!(JS_RUNTIME.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn operators_are_total_like_felm() {
        assert!(JS_RUNTIME.contains("if (b === 0) return 0"));
        assert!(JS_RUNTIME.contains("Math.trunc"));
    }
}
