//! JavaScript code generation.
//!
//! Compiles the validated intermediate term (Fig. 5) to JavaScript against
//! the runtime prelude: embedded function values become curried JS
//! functions; the signal term becomes a sequence of graph-construction
//! calls (`rt.input`, `rt.lift`, `rt.foldp`, `rt.async`), with `let`-bound
//! signals as shared JS variables — the multicast translation.

use std::collections::HashMap;
use std::fmt::Write as _;

use elm_runtime::Value;
use felm::ast::{BinOp, Expr, ExprKind, ListOp, Pattern};
use felm::intermediate::{FinalTerm, SignalTerm};

/// Compiles a simple-value expression (function bodies, bases) to a JS
/// expression. Lambdas are curried one-argument functions, matching the
/// runtime's `foldp` call convention.
pub fn js_expr(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Unit => "null".to_string(),
        ExprKind::Int(n) => n.to_string(),
        ExprKind::Float(x) => format!("{x:?}"),
        ExprKind::Str(s) => js_string(s),
        ExprKind::Var(x) => sanitize(x),
        ExprKind::Input(i) => {
            // Cannot occur inside simple values of well-typed programs.
            format!("/* unexpected input {i} */ null")
        }
        ExprKind::Lam { param, body, .. } => {
            format!(
                "function ({}) {{ return {}; }}",
                sanitize(param),
                js_expr(body)
            )
        }
        ExprKind::App(f, a) => format!("({})({})", js_expr(f), js_expr(a)),
        ExprKind::BinOp(op, a, b) => js_binop(*op, a, b),
        ExprKind::If(c, t, f) => format!(
            "(({}) !== 0 ? ({}) : ({}))",
            js_expr(c),
            js_expr(t),
            js_expr(f)
        ),
        ExprKind::Let { name, value, body } => format!(
            "(function ({}) {{ return {}; }})({})",
            sanitize(name),
            js_expr(body),
            js_expr(value)
        ),
        ExprKind::Pair(a, b) => format!("ElmRT.V.pair({}, {})", js_expr(a), js_expr(b)),
        ExprKind::Fst(p) => format!("({}).fst", js_expr(p)),
        ExprKind::Snd(p) => format!("({}).snd", js_expr(p)),
        ExprKind::List(items) => {
            let parts: Vec<String> = items.iter().map(js_expr).collect();
            format!("[{}]", parts.join(", "))
        }
        ExprKind::ListOp(op, l) => {
            let helper = match op {
                ListOp::Head => "head",
                ListOp::Tail => "tail",
                ListOp::IsEmpty => "isEmpty",
                ListOp::Length => "length",
            };
            format!("ElmRT.V.{helper}({})", js_expr(l))
        }
        ExprKind::Ith(index, l) => {
            format!("ElmRT.V.ith({}, {})", js_expr(index), js_expr(l))
        }
        ExprKind::Record(fields) => {
            let parts: Vec<String> = fields
                .iter()
                .map(|(name, value)| format!("{}: {}", js_string(name), js_expr(value)))
                .collect();
            format!("({{{}}})", parts.join(", "))
        }
        ExprKind::Field(rec, name) => format!("({})[{}]", js_expr(rec), js_string(name)),
        // Bare constructors are eliminated by resolution before codegen.
        ExprKind::Ctor(name) => format!("/* unresolved constructor {name} */ null"),
        ExprKind::CtorApp(name, args) => {
            let parts: Vec<String> = args.iter().map(js_expr).collect();
            format!(
                "({{ctor: {}, args: [{}]}})",
                js_string(name),
                parts.join(", ")
            )
        }
        ExprKind::Case {
            scrutinee,
            branches,
        } => {
            // (function (__s) { if (...) return ...; ... })(scrutinee)
            let mut body = String::new();
            for b in branches {
                match &b.pattern {
                    Pattern::Ctor { name, binders } => {
                        let params: Vec<String> = binders.iter().map(|x| sanitize(x)).collect();
                        let args: Vec<String> = (0..binders.len())
                            .map(|k| format!("__s.args[{k}]"))
                            .collect();
                        body.push_str(&format!(
                            "if (__s.ctor === {}) return (function ({}) {{ return {}; }})({}); ",
                            js_string(name),
                            params.join(", "),
                            js_expr(&b.body),
                            args.join(", ")
                        ));
                    }
                    Pattern::Var(x) => {
                        body.push_str(&format!(
                            "return (function ({}) {{ return {}; }})(__s); ",
                            sanitize(x),
                            js_expr(&b.body)
                        ));
                    }
                    Pattern::Wildcard => {
                        body.push_str(&format!("return {}; ", js_expr(&b.body)));
                    }
                }
            }
            body.push_str("throw new Error('no case branch matched');");
            format!("(function (__s) {{ {body} }})({})", js_expr(scrutinee))
        }
        // Signal forms never appear inside simple values.
        ExprKind::Lift { .. }
        | ExprKind::Foldp { .. }
        | ExprKind::Async(_)
        | ExprKind::SignalPrim { .. } => "/* unexpected signal form */ null".to_string(),
    }
}

fn js_binop(op: BinOp, a: &Expr, b: &Expr) -> String {
    let (a, b) = (js_expr(a), js_expr(b));
    match op {
        BinOp::Add => format!("(({a}) + ({b}))"),
        BinOp::Sub => format!("(({a}) - ({b}))"),
        BinOp::Mul => format!("(({a}) * ({b}))"),
        BinOp::Div => format!("ElmRT.V.div({a}, {b})"),
        BinOp::Mod => format!("ElmRT.V.mod({a}, {b})"),
        BinOp::Eq => format!("ElmRT.V.eq({a}, {b})"),
        BinOp::Ne => format!("ElmRT.V.ne({a}, {b})"),
        BinOp::Lt => format!("ElmRT.V.lt({a}, {b})"),
        BinOp::Le => format!("ElmRT.V.le({a}, {b})"),
        BinOp::Gt => format!("ElmRT.V.gt({a}, {b})"),
        BinOp::Ge => format!("ElmRT.V.ge({a}, {b})"),
        BinOp::And => format!("ElmRT.V.and({a}, {b})"),
        BinOp::Or => format!("ElmRT.V.or({a}, {b})"),
        BinOp::Append => format!("ElmRT.V.append({a}, {b})"),
        BinOp::Cons => format!("ElmRT.V.cons({a}, {b})"),
    }
}

/// Quotes a Rust string as a JS string literal.
pub fn js_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

/// Encodes a runtime default value as a JS literal.
pub fn js_value(v: &Value) -> String {
    match v {
        Value::Unit => "null".to_string(),
        Value::Int(n) => n.to_string(),
        Value::Float(x) => format!("{x:?}"),
        Value::Bool(b) => (*b as i64).to_string(),
        Value::Str(s) => js_string(s),
        Value::Pair(p) => format!("ElmRT.V.pair({}, {})", js_value(&p.0), js_value(&p.1)),
        Value::List(items) => {
            let parts: Vec<String> = items.iter().map(js_value).collect();
            format!("[{}]", parts.join(", "))
        }
        Value::Record(fields) => {
            let parts: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{}: {}", js_string(k), js_value(v)))
                .collect();
            format!("({{{}}})", parts.join(", "))
        }
        Value::Tagged(tag, args) => {
            let parts: Vec<String> = args.iter().map(js_value).collect();
            format!(
                "({{ctor: {}, args: [{}]}})",
                js_string(tag),
                parts.join(", ")
            )
        }
        other => format!("/* unsupported default {other:?} */ null"),
    }
}

/// Makes an FElm identifier a valid JS identifier.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    out.push('_');
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push_str(&format!("${:x}", c as u32));
        }
    }
    out
}

/// Generates the graph-construction statements for a signal program.
///
/// Returns the JS statements plus the variable holding the main node id.
pub fn js_signal_program(term: &SignalTerm, env: &felm::env::InputEnv) -> (String, String) {
    let mut gen = Gen {
        env,
        out: String::new(),
        scope: HashMap::new(),
        inputs: HashMap::new(),
        counter: 0,
    };
    let main = gen.walk(term);
    (gen.out, main)
}

struct Gen<'a> {
    env: &'a felm::env::InputEnv,
    out: String,
    scope: HashMap<String, Vec<String>>,
    inputs: HashMap<String, String>,
    counter: u32,
}

impl Gen<'_> {
    fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("n{}", self.counter)
    }

    fn walk(&mut self, term: &SignalTerm) -> String {
        match term {
            SignalTerm::Var(x) => self
                .scope
                .get(x)
                .and_then(|s| s.last())
                .cloned()
                .unwrap_or_else(|| format!("/* unbound {x} */ 0")),
            SignalTerm::Input(name) => {
                if let Some(var) = self.inputs.get(name) {
                    return var.clone();
                }
                let var = self.fresh();
                let default = self
                    .env
                    .get(name)
                    .map(|d| js_value(&d.default))
                    .unwrap_or_else(|| "null".to_string());
                let _ = writeln!(
                    self.out,
                    "var {var} = rt.input({}, {default});",
                    js_string(name)
                );
                self.inputs.insert(name.clone(), var.clone());
                var
            }
            SignalTerm::Let { name, value, body } => {
                let shared = self.walk(value);
                self.scope.entry(name.clone()).or_default().push(shared);
                let result = match &**body {
                    FinalTerm::Signal(s) => self.walk(s),
                    FinalTerm::Value(v) => {
                        // Constant display over a live signal.
                        let var = self.fresh();
                        let shared_var = self
                            .scope
                            .get(name)
                            .and_then(|s| s.last())
                            .cloned()
                            .expect("just pushed");
                        let _ = writeln!(
                            self.out,
                            "var {var} = rt.lift(function (_) {{ return {}; }}, [{shared_var}]);",
                            js_expr(v)
                        );
                        var
                    }
                };
                if let Some(stack) = self.scope.get_mut(name) {
                    stack.pop();
                }
                result
            }
            SignalTerm::Lift { func, args } => {
                let parents: Vec<String> = args.iter().map(|a| self.walk(a)).collect();
                let var = self.fresh();
                // The runtime calls lift functions uncurried; wrap the
                // curried FElm function.
                let params: Vec<String> = (0..parents.len()).map(|i| format!("a{i}")).collect();
                let call = params
                    .iter()
                    .fold(format!("({})", js_expr(func)), |acc, p| {
                        format!("{acc}({p})")
                    });
                let _ = writeln!(
                    self.out,
                    "var {var} = rt.lift(function ({}) {{ return {call}; }}, [{}]);",
                    params.join(", "),
                    parents.join(", ")
                );
                var
            }
            SignalTerm::Foldp { func, init, signal } => {
                let parent = self.walk(signal);
                let var = self.fresh();
                let _ = writeln!(
                    self.out,
                    "var {var} = rt.foldp({}, {}, {parent});",
                    js_expr(func),
                    js_expr(init)
                );
                var
            }
            SignalTerm::Async(inner) => {
                let parent = self.walk(inner);
                let var = self.fresh();
                let _ = writeln!(self.out, "var {var} = rt.async({parent});");
                var
            }
            SignalTerm::Prim {
                op,
                values,
                signals,
            } => {
                use felm::ast::SignalPrimOp;
                let parents: Vec<String> = signals.iter().map(|s| self.walk(s)).collect();
                let var = self.fresh();
                match op {
                    SignalPrimOp::Merge => {
                        let _ = writeln!(
                            self.out,
                            "var {var} = rt.merge({}, {});",
                            parents[0], parents[1]
                        );
                    }
                    SignalPrimOp::SampleOn => {
                        let _ = writeln!(
                            self.out,
                            "var {var} = rt.sampleOn({}, {});",
                            parents[0], parents[1]
                        );
                    }
                    SignalPrimOp::DropRepeats => {
                        let _ = writeln!(self.out, "var {var} = rt.dropRepeats({});", parents[0]);
                    }
                    SignalPrimOp::KeepIf => {
                        let _ = writeln!(
                            self.out,
                            "var {var} = rt.keepIf({}, {}, {});",
                            js_expr(&values[0]),
                            js_expr(&values[1]),
                            parents[0]
                        );
                    }
                }
                var
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felm::parser::parse_expr;

    fn js_of(src: &str) -> String {
        js_expr(&parse_expr(src).unwrap())
    }

    #[test]
    fn literals_and_operators() {
        assert_eq!(js_of("42"), "42");
        assert_eq!(js_of("()"), "null");
        assert_eq!(js_of("1 + 2"), "((1) + (2))");
        assert_eq!(js_of("10 / 3"), "ElmRT.V.div(10, 3)");
        assert_eq!(js_of("\"a\" ++ \"b\""), "ElmRT.V.append(\"a\", \"b\")");
        assert_eq!(js_of("1 < 2"), "ElmRT.V.lt(1, 2)");
    }

    #[test]
    fn lambdas_are_curried() {
        assert_eq!(
            js_of("\\x y -> x + y"),
            "function (_x) { return function (_y) { return ((_x) + (_y)); }; }"
        );
    }

    #[test]
    fn conditionals_test_against_zero() {
        assert_eq!(js_of("if 1 then 2 else 3"), "((1) !== 0 ? (2) : (3))");
    }

    #[test]
    fn pairs_and_projections() {
        assert_eq!(js_of("(1, 2)"), "ElmRT.V.pair(1, 2)");
        assert_eq!(js_of("fst (1, 2)"), "(ElmRT.V.pair(1, 2)).fst");
    }

    #[test]
    fn identifiers_are_sanitized() {
        assert_eq!(js_of("\\x' -> x'"), "function (_x$27) { return _x$27; }");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(js_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
