//! Theorem 1 (Type Soundness and Normalization), property-tested.
//!
//! "If Γinput ⊢ e : t then e →* u and Γinput ⊢ u : t for some final term
//! u." We generate random *well-typed-by-construction* FElm terms, then
//! check machine-verifiable consequences of the theorem:
//!
//! 1. the declarative checker (Fig. 4) accepts the term at its target
//!    type, and inference agrees;
//! 2. stage-one evaluation normalizes (no stuck states, bounded fuel);
//! 3. the normal form is a *final term* and satisfies the Fig. 5
//!    intermediate-language grammar;
//! 4. preservation: the normal form has the same type;
//! 5. the pretty-printer round-trips the generated term through the
//!    parser.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use felm::ast::{BinOp, CaseBranch, DataDef, Expr, ExprKind, Pattern, Type};
use felm::check::type_of_with;
use felm::env::{Adts, InputEnv};
use felm::eval::{is_final, normalize, DEFAULT_FUEL};
use felm::infer::infer_type_with;
use felm::intermediate::FinalTerm;
use felm::parser::parse_expr;
use felm::pretty::pretty;

/// The fixed ADT universe available to generated terms:
/// `data Shade = Dark | Bright Int`.
fn test_adts() -> Adts {
    Adts::from_defs(&[DataDef {
        name: "Shade".to_string(),
        ctors: vec![
            ("Dark".to_string(), vec![]),
            ("Bright".to_string(), vec![Type::Int]),
        ],
    }])
    .expect("valid test ADTs")
}

/// Generator context: variables in scope with their types.
struct Gen {
    rng: StdRng,
    counter: u32,
}

impl Gen {
    fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("v{}", self.counter)
    }

    /// Picks a random simple type (small).
    fn simple_type(&mut self) -> Type {
        match self.rng.gen_range(0..7) {
            0 => Type::Int,
            1 => Type::Str,
            2 => Type::pair(Type::Int, Type::Int),
            3 => Type::list(Type::Int),
            4 => Type::record([("x".to_string(), Type::Int), ("y".to_string(), Type::Str)]),
            5 => Type::Named("Shade".to_string()),
            _ => Type::fun(Type::Int, Type::Int),
        }
    }

    /// Generates an expression of type `ty` using `ctx`.
    fn expr(&mut self, ty: &Type, ctx: &[(String, Type)], depth: u32) -> Expr {
        // Prefer a variable of the right type sometimes.
        if depth == 0 || self.rng.gen_bool(0.25) {
            let candidates: Vec<&(String, Type)> = ctx.iter().filter(|(_, t)| t == ty).collect();
            if !candidates.is_empty() && self.rng.gen_bool(0.7) {
                let (name, _) = candidates[self.rng.gen_range(0..candidates.len())];
                return Expr::synth(ExprKind::Var(name.clone()));
            }
            return self.leaf(ty, ctx, depth);
        }
        match self.rng.gen_range(0..5) {
            0 => self.leaf(ty, ctx, depth),
            // let x = e1 in e2
            1 => {
                let bound_ty = self.simple_type();
                let value = self.expr(&bound_ty, ctx, depth - 1);
                let name = self.fresh();
                let mut ctx2 = ctx.to_vec();
                ctx2.push((name.clone(), bound_ty));
                let body = self.expr(ty, &ctx2, depth - 1);
                Expr::synth(ExprKind::Let {
                    name,
                    value: Box::new(value),
                    body: Box::new(body),
                })
            }
            // if c then t else f (both branches at ty)
            2 => {
                let c = self.expr(&Type::Int, ctx, depth - 1);
                let t = self.expr(ty, ctx, depth - 1);
                let f = self.expr(ty, ctx, depth - 1);
                Expr::synth(ExprKind::If(Box::new(c), Box::new(t), Box::new(f)))
            }
            // application of a generated lambda
            3 => {
                let arg_ty = self.simple_type();
                let param = self.fresh();
                let mut ctx2 = ctx.to_vec();
                ctx2.push((param.clone(), arg_ty.clone()));
                let body = self.expr(ty, &ctx2, depth - 1);
                let lam = Expr::synth(ExprKind::Lam {
                    param,
                    ann: Some(arg_ty.clone()),
                    body: Box::new(body),
                });
                let arg = self.expr(&arg_ty, ctx, depth - 1);
                Expr::synth(ExprKind::App(Box::new(lam), Box::new(arg)))
            }
            _ => self.structured(ty, ctx, depth),
        }
    }

    fn leaf(&mut self, ty: &Type, ctx: &[(String, Type)], depth: u32) -> Expr {
        match ty {
            Type::Int => Expr::synth(ExprKind::Int(self.rng.gen_range(-9..10))),
            Type::Str => Expr::synth(ExprKind::Str(
                ["a", "b", "xyz", ""][self.rng.gen_range(0..4usize)].to_string(),
            )),
            Type::Unit => Expr::synth(ExprKind::Unit),
            Type::Pair(a, b) => Expr::synth(ExprKind::Pair(
                Box::new(self.leaf(a, ctx, depth)),
                Box::new(self.leaf(b, ctx, depth)),
            )),
            Type::List(elem) => {
                let n = self.rng.gen_range(0..4);
                Expr::synth(ExprKind::List(
                    (0..n).map(|_| self.leaf(elem, ctx, depth)).collect(),
                ))
            }
            Type::Record(fields) => Expr::synth(ExprKind::Record(
                fields
                    .iter()
                    .map(|(name, ty)| (name.clone(), self.leaf(ty, ctx, depth)))
                    .collect(),
            )),
            Type::Fun(a, b) => {
                let param = self.fresh();
                let mut ctx2 = ctx.to_vec();
                ctx2.push((param.clone(), (**a).clone()));
                let body = if depth == 0 {
                    self.leaf(b, &ctx2, 0)
                } else {
                    self.expr(b, &ctx2, depth - 1)
                };
                Expr::synth(ExprKind::Lam {
                    param,
                    ann: Some((**a).clone()),
                    body: Box::new(body),
                })
            }
            Type::Signal(payload) => self.signal(payload, ctx, depth),
            Type::Float => Expr::synth(ExprKind::Float(1.5)),
            Type::Named(_) => {
                // Shade leaves.
                if self.rng.gen_bool(0.5) {
                    Expr::synth(ExprKind::CtorApp("Dark".to_string(), vec![]))
                } else {
                    Expr::synth(ExprKind::CtorApp(
                        "Bright".to_string(),
                        vec![self.leaf(&Type::Int, ctx, depth)],
                    ))
                }
            }
            Type::Var(_) => unreachable!("generator uses ground types"),
        }
    }

    fn structured(&mut self, ty: &Type, ctx: &[(String, Type)], depth: u32) -> Expr {
        match ty {
            Type::Int => match self.rng.gen_range(0..4) {
                3 => self.case_over_shade(ty, ctx, depth),
                0 => {
                    let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Mod];
                    let op = ops[self.rng.gen_range(0..ops.len())];
                    Expr::synth(ExprKind::BinOp(
                        op,
                        Box::new(self.expr(&Type::Int, ctx, depth - 1)),
                        Box::new(self.expr(&Type::Int, ctx, depth - 1)),
                    ))
                }
                1 => {
                    if self.rng.gen_bool(0.5) {
                        Expr::synth(ExprKind::Fst(Box::new(self.expr(
                            &Type::pair(Type::Int, Type::Int),
                            ctx,
                            depth - 1,
                        ))))
                    } else {
                        let rec_ty = Type::record([
                            ("x".to_string(), Type::Int),
                            ("y".to_string(), Type::Str),
                        ]);
                        Expr::synth(ExprKind::Field(
                            Box::new(self.expr(&rec_ty, ctx, depth - 1)),
                            "x".to_string(),
                        ))
                    }
                }
                _ => Expr::synth(ExprKind::BinOp(
                    BinOp::Lt,
                    Box::new(self.expr(&Type::Int, ctx, depth - 1)),
                    Box::new(self.expr(&Type::Int, ctx, depth - 1)),
                )),
            },
            Type::Str => Expr::synth(ExprKind::BinOp(
                BinOp::Append,
                Box::new(self.expr(&Type::Str, ctx, depth - 1)),
                Box::new(self.expr(&Type::Str, ctx, depth - 1)),
            )),
            Type::Pair(a, b) => Expr::synth(ExprKind::Pair(
                Box::new(self.expr(a, ctx, depth - 1)),
                Box::new(self.expr(b, ctx, depth - 1)),
            )),
            Type::Record(fields) => Expr::synth(ExprKind::Record(
                fields
                    .iter()
                    .map(|(name, ty)| (name.clone(), self.expr(ty, ctx, depth - 1)))
                    .collect(),
            )),
            Type::Named(_) => {
                if self.rng.gen_bool(0.5) {
                    Expr::synth(ExprKind::CtorApp(
                        "Bright".to_string(),
                        vec![self.expr(&Type::Int, ctx, depth - 1)],
                    ))
                } else {
                    // A case producing a Shade from a Shade.
                    self.case_over_shade(ty, ctx, depth)
                }
            }
            Type::List(elem) => match self.rng.gen_range(0..3) {
                // cons onto a generated list
                0 => Expr::synth(ExprKind::BinOp(
                    BinOp::Cons,
                    Box::new(self.expr(elem, ctx, depth - 1)),
                    Box::new(self.expr(ty, ctx, depth - 1)),
                )),
                // a nonempty literal (so head/tail stay total elsewhere)
                1 => {
                    let n = self.rng.gen_range(1..4);
                    Expr::synth(ExprKind::List(
                        (0..n).map(|_| self.expr(elem, ctx, depth - 1)).collect(),
                    ))
                }
                _ => self.leaf(ty, ctx, depth),
            },
            other => self.leaf(other, ctx, depth),
        }
    }

    /// Generates a signal expression of payload type `payload`.
    fn signal(&mut self, payload: &Type, ctx: &[(String, Type)], depth: u32) -> Expr {
        let sig_ty = Type::signal(payload.clone());
        // Existing signal variable?
        let candidates: Vec<&(String, Type)> = ctx.iter().filter(|(_, t)| *t == sig_ty).collect();
        if !candidates.is_empty() && self.rng.gen_bool(0.3) {
            let (name, _) = candidates[self.rng.gen_range(0..candidates.len())];
            return Expr::synth(ExprKind::Var(name.clone()));
        }
        if depth == 0 {
            return self.input_for(payload);
        }
        match self.rng.gen_range(0..5) {
            // lift1 f s
            0 => {
                let from = if self.rng.gen_bool(0.5) {
                    Type::Int
                } else {
                    payload.clone()
                };
                let f = self.leaf(&Type::fun(from.clone(), payload.clone()), ctx, depth - 1);
                let s = self.signal(&from, ctx, depth - 1);
                Expr::synth(ExprKind::Lift {
                    func: Box::new(f),
                    args: vec![s],
                })
            }
            // lift2 f s1 s2
            1 => {
                let f = self.leaf(
                    &Type::fun(Type::Int, Type::fun(Type::Int, payload.clone())),
                    ctx,
                    depth - 1,
                );
                let s1 = self.signal(&Type::Int, ctx, depth - 1);
                let s2 = self.signal(&Type::Int, ctx, depth - 1);
                Expr::synth(ExprKind::Lift {
                    func: Box::new(f),
                    args: vec![s1, s2],
                })
            }
            // foldp f b s
            2 => {
                let f = self.leaf(
                    &Type::fun(Type::Int, Type::fun(payload.clone(), payload.clone())),
                    ctx,
                    depth - 1,
                );
                let b = self.expr(payload, ctx, depth - 1);
                let s = self.signal(&Type::Int, ctx, depth - 1);
                Expr::synth(ExprKind::Foldp {
                    func: Box::new(f),
                    init: Box::new(b),
                    signal: Box::new(s),
                })
            }
            // async s
            3 => Expr::synth(ExprKind::Async(Box::new(self.signal(
                payload,
                ctx,
                depth - 1,
            )))),
            // let x = s in <signal using x>
            _ => {
                let inner_payload = if self.rng.gen_bool(0.5) {
                    Type::Int
                } else {
                    payload.clone()
                };
                let bound = self.signal(&inner_payload, ctx, depth - 1);
                let name = self.fresh();
                let mut ctx2 = ctx.to_vec();
                ctx2.push((name.clone(), Type::signal(inner_payload)));
                let body = self.signal(payload, &ctx2, depth - 1);
                Expr::synth(ExprKind::Let {
                    name,
                    value: Box::new(bound),
                    body: Box::new(body),
                })
            }
        }
    }

    /// `case <Shade expr> of | Bright b -> e | Dark -> e` at target `ty`.
    fn case_over_shade(&mut self, ty: &Type, ctx: &[(String, Type)], depth: u32) -> Expr {
        let scrutinee = self.expr(&Type::Named("Shade".to_string()), ctx, depth - 1);
        let binder = self.fresh();
        let mut ctx2 = ctx.to_vec();
        ctx2.push((binder.clone(), Type::Int));
        let bright_body = self.expr(ty, &ctx2, depth - 1);
        let dark_body = self.expr(ty, ctx, depth - 1);
        Expr::synth(ExprKind::Case {
            scrutinee: Box::new(scrutinee),
            branches: vec![
                CaseBranch {
                    pattern: Pattern::Ctor {
                        name: "Bright".to_string(),
                        binders: vec![binder],
                    },
                    body: bright_body,
                },
                CaseBranch {
                    pattern: Pattern::Ctor {
                        name: "Dark".to_string(),
                        binders: vec![],
                    },
                    body: dark_body,
                },
            ],
        })
    }

    fn input_for(&mut self, payload: &Type) -> Expr {
        let name = match payload {
            Type::Int => ["Mouse.x", "Mouse.y", "Window.width", "Keyboard.lastPressed"]
                [self.rng.gen_range(0..4usize)],
            Type::Str => "Words.input",
            Type::Pair(_, _) => "Mouse.position",
            Type::Unit => "Mouse.clicks",
            other => panic!("no standard input for payload {other}"),
        };
        Expr::synth(ExprKind::Input(name.to_string()))
    }
}

fn generated_term(seed: u64) -> (Expr, Type) {
    let mut gen = Gen {
        rng: StdRng::seed_from_u64(seed),
        counter: 0,
    };
    let reactive = gen.rng.gen_bool(0.6);
    let ty = if reactive {
        let payload = match gen.rng.gen_range(0..3) {
            0 => Type::Int,
            1 => Type::Str,
            _ => Type::pair(Type::Int, Type::Int),
        };
        Type::signal(payload)
    } else {
        gen.simple_type()
    };
    let depth = gen.rng.gen_range(1..5);
    let e = gen.expr(&ty, &[], depth);
    (e, ty)
}

#[test]
fn theorem1_holds_on_generated_terms() {
    let env = InputEnv::standard();
    let adts = test_adts();
    for seed in 0..600u64 {
        let (e, ty) = generated_term(seed);

        // (1) Well typed at the target type, by both type systems.
        let checked = type_of_with(&env, &adts, &e)
            .unwrap_or_else(|err| panic!("seed {seed}: checker rejected: {err}\n{}", pretty(&e)));
        assert_eq!(
            checked,
            ty,
            "seed {seed}: unexpected type for {}",
            pretty(&e)
        );
        let inferred = infer_type_with(&env, &adts, &e)
            .unwrap_or_else(|err| panic!("seed {seed}: inference rejected: {err}"));
        assert_eq!(inferred, ty, "seed {seed}: inference disagrees");

        // (2) Normalizes within fuel.
        let normal = normalize(&e, DEFAULT_FUEL)
            .unwrap_or_else(|err| panic!("seed {seed}: evaluation failed: {err}\n{}", pretty(&e)));

        // (3) Final term in the Fig. 5 grammar.
        assert!(
            is_final(&normal),
            "seed {seed}: not final: {}",
            pretty(&normal)
        );
        FinalTerm::from_expr(&normal)
            .unwrap_or_else(|err| panic!("seed {seed}: IL violation: {err}"));

        // (4) Preservation.
        let normal_ty = type_of_with(&env, &adts, &normal).unwrap_or_else(|err| {
            panic!(
                "seed {seed}: normal form ill-typed: {err}\nsource: {}\nnormal: {}",
                pretty(&e),
                pretty(&normal)
            )
        });
        assert_eq!(normal_ty, ty, "seed {seed}: type not preserved");
    }
}

#[test]
fn pretty_printer_round_trips_generated_terms() {
    let env = InputEnv::standard();
    let adts = test_adts();
    for seed in 0..400u64 {
        let (e, _ty) = generated_term(seed);
        let printed = pretty(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("seed {seed}: reparse failed: {err}\n{printed}"));
        // Reparsing yields bare `Ctor` references where the generator made
        // saturated applications; resolve before comparing.
        let reparsed = adts.resolve(&reparsed).unwrap();
        // Semantic equality: same type and same normal form.
        assert_eq!(
            type_of_with(&env, &adts, &e).unwrap(),
            type_of_with(&env, &adts, &reparsed).unwrap(),
            "seed {seed}"
        );
        let n1 = normalize(&e, DEFAULT_FUEL).unwrap();
        let n2 = normalize(&reparsed, DEFAULT_FUEL).unwrap();
        // Negative integer literals have no surface syntax (they print as
        // `(0 - n)`), so compare at the printer's fixed point: one extra
        // print→parse cycle canonicalizes both sides.
        let canon = |n: &Expr| {
            let reparsed = parse_expr(&pretty(n)).expect("printed normal forms re-parse");
            pretty(&adts.resolve(&reparsed).unwrap())
        };
        assert_eq!(
            canon(&n1),
            canon(&n2),
            "seed {seed}: normal forms differ after round trip"
        );
    }
}

/// The environment-based big-step interpreter agrees with the Fig. 6
/// small-step machine on all generated data-typed terms.
#[test]
fn big_step_agrees_with_small_step() {
    use felm::eval_big::{eval, to_runtime_value, Env};
    use felm::translate::expr_to_value;

    let mut compared = 0;
    for seed in 0..600u64 {
        let (e, ty) = generated_term(seed);
        if !matches!(
            ty,
            Type::Int
                | Type::Str
                | Type::Pair(_, _)
                | Type::List(_)
                | Type::Record(_)
                | Type::Named(_)
        ) {
            continue;
        }
        let normal = normalize(&e, DEFAULT_FUEL).unwrap();
        let small = expr_to_value(&normal).expect("data-typed result");
        let big = to_runtime_value(&eval(&Env::empty(), &e).unwrap()).expect("data-typed result");
        assert_eq!(
            small,
            big,
            "seed {seed}: interpreters disagree on {}",
            pretty(&e)
        );
        compared += 1;
    }
    assert!(
        compared > 100,
        "expected many data-typed terms, got {compared}"
    );
}

#[test]
fn generated_reactive_terms_translate_and_run() {
    use elm_runtime::{Occurrence, SyncRuntime, Value};
    use felm::translate::translate;

    let env = InputEnv::standard();
    let mut ran = 0;
    for seed in 0..200u64 {
        let (e, ty) = generated_term(seed);
        if !matches!(ty, Type::Signal(_)) {
            continue;
        }
        let normal = normalize(&e, DEFAULT_FUEL).unwrap();
        let FinalTerm::Signal(term) = FinalTerm::from_expr(&normal).unwrap() else {
            // A signal-typed term can still be a let over a value body.
            continue;
        };
        let graph = translate(&term, &env)
            .unwrap_or_else(|err| panic!("seed {seed}: translation failed: {err}"));
        // Drive every declared input once; must not panic or get stuck.
        let mut rt = SyncRuntime::new(&graph);
        for node in graph.nodes() {
            if let elm_runtime::NodeKind::Input { name } = &node.kind {
                let v = env
                    .get(name)
                    .map(|d| d.default.clone())
                    .unwrap_or(Value::Unit);
                rt.feed(Occurrence::input(node.id, v)).unwrap();
            }
        }
        rt.run_to_quiescence();
        ran += 1;
    }
    assert!(ran > 50, "expected many runnable reactive terms, got {ran}");
}
