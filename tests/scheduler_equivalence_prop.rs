//! Property tests: the concurrent pipelined scheduler implements the
//! synchronous semantics.
//!
//! §3.3.2 claims pipelining "preserves the simple synchronous semantics".
//! We check it differentially: random async-free signal graphs driven by
//! random traces produce *identical* output-event sequences on both
//! schedulers; graphs with `async` preserve per-subgraph order and
//! deliver the same multiset of async-borne values.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use elm_runtime::{
    changed_values, ConcurrentRuntime, GraphBuilder, NodeId, Occurrence, SignalGraph, SyncRuntime,
    Value,
};

/// A randomly generated graph plus the ids of its inputs.
struct RandomGraph {
    graph: SignalGraph,
    inputs: Vec<NodeId>,
}

/// Builds a random DAG of lift/foldp/merge/sampleOn/dropRepeats/keepIf
/// nodes. `with_async` additionally inserts exactly one async boundary
/// (several async sources firing off one event interleave
/// nondeterministically *by design*, so equivalence is only stated for a
/// single boundary).
fn random_graph(seed: u64, with_async: bool) -> RandomGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = GraphBuilder::new();
    let n_inputs = rng.gen_range(1..=4);
    let inputs: Vec<NodeId> = (0..n_inputs)
        .map(|i| g.input(format!("in{i}"), rng.gen_range(-5i64..5)))
        .collect();
    let mut pool: Vec<NodeId> = inputs.clone();
    let n_compute = rng.gen_range(2..=14);
    let async_at = if with_async {
        Some(rng.gen_range(0..n_compute))
    } else {
        None
    };
    for k in 0..n_compute {
        let pick = |rng: &mut StdRng, pool: &[NodeId]| pool[rng.gen_range(0..pool.len())];
        let choice = if async_at == Some(k) {
            6
        } else {
            rng.gen_range(0..6)
        };
        let id = match choice {
            0 => {
                let a = pick(&mut rng, &pool);
                g.lift1(
                    format!("neg{k}"),
                    |v| Value::Int(-v.as_int().unwrap_or(0)),
                    a,
                )
            }
            1 => {
                let (a, b) = (pick(&mut rng, &pool), pick(&mut rng, &pool));
                g.lift2(
                    format!("sum{k}"),
                    |x, y| Value::Int(x.as_int().unwrap_or(0) + y.as_int().unwrap_or(0)),
                    a,
                    b,
                )
            }
            2 => {
                let a = pick(&mut rng, &pool);
                g.foldp(
                    format!("acc{k}"),
                    |v, acc| Value::Int(acc.as_int().unwrap_or(0) + v.as_int().unwrap_or(0)),
                    0i64,
                    a,
                )
            }
            3 => {
                let (a, b) = (pick(&mut rng, &pool), pick(&mut rng, &pool));
                g.merge(a, b)
            }
            4 => {
                let (a, b) = (pick(&mut rng, &pool), pick(&mut rng, &pool));
                g.sample_on(a, b)
            }
            5 => {
                let a = pick(&mut rng, &pool);
                if rng.gen_bool(0.5) {
                    g.drop_repeats(a)
                } else {
                    g.keep_if(|v| v.as_int().unwrap_or(0) % 2 == 0, 0i64, a)
                }
            }
            _ => {
                let a = pick(&mut rng, &pool);
                g.async_source(a)
            }
        };
        pool.push(id);
    }
    let output = *pool.last().expect("nonempty");
    RandomGraph {
        graph: g.finish(output).expect("valid random graph"),
        inputs,
    }
}

fn random_trace(seed: u64, inputs: &[NodeId], len: usize) -> Vec<Occurrence> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
    (0..len)
        .map(|_| {
            let input = inputs[rng.gen_range(0..inputs.len())];
            Occurrence::input(input, rng.gen_range(-20i64..20))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Async-free graphs: exact output-event equality (values, seq
    /// numbers, change/no-change flags).
    #[test]
    fn concurrent_equals_sync_on_async_free_graphs(seed in any::<u64>(), len in 1usize..60) {
        let RandomGraph { graph, inputs } = random_graph(seed, false);
        let trace = random_trace(seed, &inputs, len);
        let sync_out = SyncRuntime::run_trace(&graph, trace.clone()).unwrap();
        let conc_out = ConcurrentRuntime::run_trace(&graph, trace).unwrap();
        prop_assert_eq!(sync_out, conc_out);
    }

    /// Graphs with async boundaries: draining between external inputs
    /// forces a canonical interleaving *per async source*, so the
    /// changed-value multiset at the output agrees between schedulers.
    /// (With several async sources fired by one event, their relative
    /// dispatcher order is scheduling-dependent by design — that is the
    /// nondeterminism `async` licenses — hence multiset, not sequence.)
    #[test]
    fn async_graphs_agree_under_step_by_step_draining(seed in any::<u64>(), len in 1usize..30) {
        let RandomGraph { graph, inputs } = random_graph(seed, true);
        let trace = random_trace(seed, &inputs, len);

        // Sync: drain after each event.
        let sync_out = SyncRuntime::run_trace(&graph, trace.clone()).unwrap();

        // Concurrent: drain after each event too.
        let mut rt = ConcurrentRuntime::start(&graph);
        let mut conc_out = Vec::new();
        for occ in trace {
            rt.feed(occ).unwrap();
            conc_out.extend(rt.drain().unwrap());
        }
        rt.stop();

        let as_multiset = |vals: Vec<Value>| {
            let mut keys: Vec<String> = vals.iter().map(|v| format!("{v:?}")).collect();
            keys.sort();
            keys
        };
        prop_assert_eq!(
            as_multiset(changed_values(&sync_out)),
            as_multiset(changed_values(&conc_out))
        );
    }

    /// Stats invariant: with memoization, the synchronous scheduler never
    /// computes more than (nodes × events), and every event is counted.
    #[test]
    fn stats_are_bounded(seed in any::<u64>(), len in 1usize..40) {
        let RandomGraph { graph, inputs } = random_graph(seed, false);
        let trace = random_trace(seed, &inputs, len);
        let mut rt = SyncRuntime::new(&graph);
        for occ in trace.iter().cloned() {
            rt.feed(occ).unwrap();
        }
        rt.run_to_quiescence();
        let snap = rt.stats().snapshot();
        prop_assert_eq!(snap.events, len as u64);
        prop_assert!(snap.computations + snap.memo_skips <= (graph.len() as u64) * (len as u64));
    }
}

/// Values crossing an async boundary arrive in their original per-signal
/// order, for arbitrary upstream graphs (checked outside proptest with a
/// deeper pipeline to stress the dispatcher).
#[test]
fn async_preserves_per_signal_order_under_load() {
    let mut g = GraphBuilder::new();
    let i = g.input("i", 0i64);
    let mut cur = i;
    for d in 0..8 {
        cur = g.lift1(
            format!("stage{d}"),
            |v| Value::Int(v.as_int().unwrap() + 1),
            cur,
        );
    }
    let a = g.async_source(cur);
    let out = g.lift1("id", |v| v.clone(), a);
    let graph = g.finish(out).unwrap();

    for round in 0..10 {
        let trace: Vec<Occurrence> = (0..100)
            .map(|k| Occurrence::input(i, (round * 1000 + k) as i64))
            .collect();
        let outs = ConcurrentRuntime::run_trace(&graph, trace).unwrap();
        let vals: Vec<i64> = changed_values(&outs)
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(vals, sorted, "async reordered values within one signal");
        assert_eq!(vals.len(), 100);
    }
}
