//! Differential testing of the Elm-to-JavaScript compiler (paper §5):
//! the same FElm program, driven by the same event trace, must produce the
//! same output sequence whether executed by
//!
//! * the Rust signal runtime (synchronous scheduler — the reference
//!   semantics), or
//! * the compiled JavaScript under Node.js.
//!
//! Skipped (with a note) when `node` is not on the PATH.

use std::io::Write as _;
use std::process::Command;

use elm_runtime::{changed_values, Occurrence, SyncRuntime, Value};
use felm::env::InputEnv;
use felm::pipeline::{compile_source, ProgramResult};

/// JS driver: loads the compiled module, feeds events, prints the display
/// sequence (initial value + every change) as JSON lines.
const DRIVER: &str = r#"
const compiled = require(process.argv[2]);
const events = JSON.parse(require('fs').readFileSync(process.argv[3], 'utf8'));
const outputs = [];
compiled.rt.start(function (v) { outputs.push(v); });
for (const [name, value] of events) compiled.rt.notify(name, value);
// Let async setTimeout(0) chains drain before reporting.
setTimeout(function () { console.log(JSON.stringify(outputs)); }, 120);
"#;

fn node_available() -> bool {
    Command::new("node")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// Encodes a runtime value the way the JS runtime represents it.
fn to_json(v: &Value) -> String {
    match v {
        Value::Unit => "null".to_string(),
        Value::Int(n) => n.to_string(),
        Value::Float(x) => format!("{x}"),
        Value::Str(s) => format!("{:?}", s.as_ref()),
        Value::Pair(p) => format!("{{\"fst\": {}, \"snd\": {}}}", to_json(&p.0), to_json(&p.1)),
        Value::List(items) => format!(
            "[{}]",
            items.iter().map(to_json).collect::<Vec<_>>().join(", ")
        ),
        Value::Tagged(tag, args) => format!(
            "{{\"ctor\": {:?}, \"args\": [{}]}}",
            tag.as_ref(),
            args.iter().map(to_json).collect::<Vec<_>>().join(", ")
        ),
        Value::Record(fields) => format!(
            "{{{}}}",
            fields
                .iter()
                .map(|(k, v)| format!("{:?}: {}", k, to_json(v)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        other => panic!("not JS-encodable: {other:?}"),
    }
}

/// Normalizes a serde-free JSON string for comparison (strip whitespace).
fn canon(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Runs `src` on both backends with the same events; asserts equal output
/// sequences.
fn differential(src: &str, events: &[(&str, Value)]) {
    if !node_available() {
        eprintln!("skipping JS differential test: node not available");
        return;
    }
    let env = InputEnv::standard();

    // --- Rust reference run -------------------------------------------------
    let compiled = compile_source(src, &env).expect("compiles");
    let ProgramResult::Reactive(graph) = &compiled.result else {
        panic!("test programs are reactive");
    };
    // Feed every external event before draining: this matches the JS
    // event loop, where all `notify` calls run before any `setTimeout`
    // callback delivers an async-generated event.
    let mut rt = SyncRuntime::new(graph);
    let initial = rt.output_value().clone();
    for (name, value) in events {
        let id = graph.input_named(name).expect("declared input");
        rt.feed(Occurrence::input(id, value.clone()))
            .expect("feeds");
    }
    let outs = rt.run_to_quiescence();
    let mut expected: Vec<String> = vec![to_json(&initial)];
    expected.extend(changed_values(&outs).iter().map(to_json));

    // --- JS run --------------------------------------------------------------
    let js = elm_compiler::compile_to_js(src, &env).expect("compiles to JS");
    let dir = std::env::temp_dir().join(format!(
        "elm-frp-jsdiff-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let module = dir.join("program.js");
    let driver = dir.join("driver.js");
    let events_file = dir.join("events.json");
    std::fs::write(&module, &js).unwrap();
    std::fs::write(&driver, DRIVER).unwrap();
    let mut f = std::fs::File::create(&events_file).unwrap();
    write!(
        f,
        "[{}]",
        events
            .iter()
            .map(|(name, v)| format!("[{:?}, {}]", name, to_json(v)))
            .collect::<Vec<_>>()
            .join(", ")
    )
    .unwrap();

    let output = Command::new("node")
        .arg(&driver)
        .arg(&module)
        .arg(&events_file)
        .output()
        .expect("node runs");
    assert!(
        output.status.success(),
        "node failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let got = canon(stdout.trim());
    let want = canon(&format!("[{}]", expected.join(",")));
    assert_eq!(got, want, "JS and Rust runs disagree for:\n{src}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fig7_relative_position_agrees() {
    differential(
        "main = lift2 (\\y z -> (100 * y) / z) Mouse.x Window.width",
        &[
            ("Mouse.x", Value::Int(512)),
            ("Window.width", Value::Int(2048)),
            ("Mouse.x", Value::Int(100)),
        ],
    );
}

#[test]
fn foldp_counter_agrees() {
    differential(
        "main = foldp (\\k c -> c + 1) 0 Keyboard.lastPressed",
        &[
            ("Keyboard.lastPressed", Value::Int(65)),
            ("Keyboard.lastPressed", Value::Int(66)),
            ("Keyboard.lastPressed", Value::Int(67)),
        ],
    );
}

#[test]
fn memoization_agrees_on_multi_input_programs() {
    let src = "\
count s = foldp (\\x c -> c + 1) 0 s
main = lift2 (\\c m -> (c, m)) (count Keyboard.lastPressed) Mouse.x";
    differential(
        src,
        &[
            ("Keyboard.lastPressed", Value::Int(65)),
            ("Mouse.x", Value::Int(10)),
            ("Mouse.x", Value::Int(20)),
            ("Keyboard.lastPressed", Value::Int(66)),
        ],
    );
}

#[test]
fn strings_and_conditionals_agree() {
    let src = "\
label w = if w > 50 then \"wide\" else \"narrow\"
main = lift (\\w -> label w ++ \"!\") Window.width";
    differential(
        src,
        &[
            ("Window.width", Value::Int(10)),
            ("Window.width", Value::Int(100)),
        ],
    );
}

#[test]
fn async_programs_agree_after_drain() {
    // With a single async source fed one word at a time, both backends
    // deliver the same sequence once quiescent.
    let src = "\
translated = lift (\\w -> \"fr:\" ++ w) Words.input
main = lift2 (\\t m -> (t, m)) (async translated) Mouse.x";
    differential(
        src,
        &[
            ("Words.input", Value::str("cat")),
            ("Mouse.x", Value::Int(5)),
            ("Words.input", Value::str("dog")),
        ],
    );
}

#[test]
fn fig14_slideshow_with_lists_agrees() {
    let src = r#"
pics = ["shells.jpg", "car.jpg", "book.jpg"]
display i = ith (i % length pics) pics
count s = foldp (\x c -> c + 1) 0 s
main = lift display (count Mouse.clicks)
"#;
    differential(
        src,
        &[
            ("Mouse.clicks", Value::Unit),
            ("Mouse.clicks", Value::Unit),
            ("Mouse.clicks", Value::Unit),
            ("Mouse.clicks", Value::Unit),
        ],
    );
}

#[test]
fn record_programs_agree() {
    let arrows = |x: i64, y: i64| {
        Value::record([
            ("x".to_string(), Value::Int(x)),
            ("y".to_string(), Value::Int(y)),
        ])
    };
    let src = "\
step a pos = {x = a.x + pos.x, y = a.y + pos.y}
main = foldp step {x = 0, y = 0} Keyboard.arrows";
    differential(
        src,
        &[
            ("Keyboard.arrows", arrows(1, 0)),
            ("Keyboard.arrows", arrows(1, 1)),
            ("Keyboard.arrows", arrows(0, -1)),
        ],
    );
}

#[test]
fn list_folds_agree() {
    let src = "main = foldp (\\k hist -> k :: hist) [] Keyboard.lastPressed";
    differential(
        src,
        &[
            ("Keyboard.lastPressed", Value::Int(1)),
            ("Keyboard.lastPressed", Value::Int(2)),
            ("Keyboard.lastPressed", Value::Int(3)),
        ],
    );
}

#[test]
fn signal_primitives_agree() {
    let src = "\
evens = keepIf (\\n -> n % 2 == 0) 0 Mouse.x
deduped = dropRepeats evens
sampled = sampleOn Mouse.clicks Window.width
main = foldp (\\v acc -> acc + v) 0 (merge deduped sampled)";
    differential(
        src,
        &[
            ("Mouse.x", Value::Int(2)),
            ("Mouse.x", Value::Int(2)), // deduped
            ("Mouse.x", Value::Int(3)), // filtered
            ("Mouse.clicks", Value::Unit),
            ("Mouse.x", Value::Int(4)),
        ],
    );
}

#[test]
fn adt_state_machines_agree() {
    let src = "\
data Light = Red | Green | Blue
next l = case l of | Red -> Green | Green -> Blue | Blue -> Red
main = foldp (\\c l -> next l) Red Mouse.clicks";
    differential(
        src,
        &[
            ("Mouse.clicks", Value::Unit),
            ("Mouse.clicks", Value::Unit),
            ("Mouse.clicks", Value::Unit),
            ("Mouse.clicks", Value::Unit),
        ],
    );
}

#[test]
fn shared_let_signals_agree() {
    let src = "\
shared = lift (\\x -> x * 2) Mouse.x
main = lift2 (\\a b -> a + b) shared shared";
    differential(
        src,
        &[("Mouse.x", Value::Int(3)), ("Mouse.x", Value::Int(7))],
    );
}
