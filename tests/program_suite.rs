//! The bundled FElm program suite (`programs/*.elm`) — every program must
//! compile through the whole pipeline, and every reactive one must also
//! compile to JavaScript and run one smoke event on the Rust runtime.
//! (The paper's compiler was exercised on ~200 site examples; this suite
//! plays that role for the reproduction.)

use elm_runtime::{Occurrence, SyncRuntime};
use felm::env::InputEnv;
use felm::pipeline::{compile_source, ProgramResult};

fn suite() -> Vec<(String, String)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("programs/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_some_and(|e| e == "elm") {
            let name = path.file_name().unwrap().to_string_lossy().to_string();
            let src = std::fs::read_to_string(&path).expect("readable program");
            out.push((name, src));
        }
    }
    out.sort();
    assert!(out.len() >= 10, "the suite should stay substantial");
    out
}

#[test]
fn every_bundled_program_compiles() {
    let env = InputEnv::standard();
    for (name, src) in suite() {
        let compiled = compile_source(&src, &env)
            .unwrap_or_else(|err| panic!("{name} failed to compile: {err}"));
        // And through the JavaScript backend.
        let js = elm_compiler::compile_to_js(&src, &env)
            .unwrap_or_else(|err| panic!("{name} failed to compile to JS: {err}"));
        assert!(js.contains("ElmRT"), "{name}: runtime missing from output");
        let _ = compiled;
    }
}

#[test]
fn every_reactive_program_survives_a_smoke_event_on_each_input() {
    let env = InputEnv::standard();
    for (name, src) in suite() {
        let compiled = compile_source(&src, &env).unwrap();
        let ProgramResult::Reactive(graph) = &compiled.result else {
            continue;
        };
        let mut rt = SyncRuntime::new(graph);
        for node in graph.nodes() {
            if let elm_runtime::NodeKind::Input { name: input } = &node.kind {
                let default = env
                    .get(input)
                    .map(|d| d.default.clone())
                    .unwrap_or(elm_runtime::Value::Unit);
                rt.feed(Occurrence::input(node.id, default))
                    .unwrap_or_else(|err| panic!("{name}: feed {input} failed: {err}"));
            }
        }
        rt.run_to_quiescence();
        assert!(
            rt.stats().events() > 0,
            "{name}: no events processed in the smoke run"
        );
    }
}

#[test]
fn program_types_are_as_documented() {
    let env = InputEnv::standard();
    let types: std::collections::BTreeMap<String, String> = suite()
        .into_iter()
        .map(|(name, src)| {
            let t = compile_source(&src, &env).unwrap().program_type;
            (name, t.to_string())
        })
        .collect();
    assert_eq!(types["mouse_tracker.elm"], "Signal (Int, Int)");
    assert_eq!(types["relative_position.elm"], "Signal Int");
    assert_eq!(types["click_counter.elm"], "Signal Int");
    assert_eq!(types["slideshow.elm"], "Signal String");
    assert_eq!(
        types["word_pairs.elm"],
        "Signal ((String, String), (Int, Int))"
    );
    assert_eq!(types["arrows_walker.elm"], "Signal {x : Int, y : Int}");
    assert_eq!(types["key_history.elm"], "Signal [Int]");
    assert_eq!(types["gate.elm"], "Signal String");
    assert_eq!(types["stopwatch.elm"], "Signal Float");
    assert_eq!(types["windows.elm"], "Signal (Int, Int)");
    assert_eq!(types["pure.elm"], "Int");
    assert_eq!(types["gated_counter.elm"], "Signal Int");
    assert_eq!(types["traffic_light.elm"], "Signal String");
}
