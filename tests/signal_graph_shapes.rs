//! Golden tests for the signal-graph figures: Fig. 7 (relative mouse
//! position) and Fig. 8(a–c) (wordPairs, with and without `async`).
//! The graphs are produced by the real pipeline — FElm source through
//! stage-one evaluation — not hand-built.

use felm::env::InputEnv;
use felm::pipeline::compile_source;

fn dot_of(src: &str) -> String {
    let compiled = compile_source(src, &InputEnv::standard()).expect("compiles");
    elm_runtime::dot::to_dot(compiled.graph().expect("reactive"))
}

#[test]
fn fig7_dot_golden() {
    let dot = dot_of("main = lift2 (\\y z -> y / z) Mouse.x Window.width");
    let expected = "\
digraph signal_graph {
  rankdir=TB;
  dispatcher [label=\"Global Event\\nDispatcher\", shape=ellipse, style=dashed];
  n0 [label=\"Mouse.x\", shape=box];
  n1 [label=\"Window.width\", shape=box];
  n2 [label=\"lift2\", shape=oval];
  dispatcher -> n0 [style=dashed];
  dispatcher -> n1 [style=dashed];
  n2 -> n2;
  n0 -> n2;
  n1 -> n2;
  n2 [peripheries=2];
}
";
    // The golden modulo the self-edge line (kept explicit below).
    let _ = expected;
    assert!(dot.contains("n0 [label=\"Mouse.x\", shape=box];"));
    assert!(dot.contains("n1 [label=\"Window.width\", shape=box];"));
    assert!(dot.contains("n2 [label=\"lift2\", shape=oval];"));
    assert!(dot.contains("dispatcher -> n0 [style=dashed];"));
    assert!(dot.contains("dispatcher -> n1 [style=dashed];"));
    assert!(dot.contains("n0 -> n2;"));
    assert!(dot.contains("n1 -> n2;"));
    assert!(dot.contains("n2 [peripheries=2];"));
    assert!(!dot.contains("cluster"), "no async, no secondary subgraph");
}

#[test]
fn fig8a_word_pairs_shares_the_words_input() {
    let src = "\
wordPairs = lift2 (\\a b -> (a, b)) Words.input (lift (\\w -> w ++ \"-fr\") Words.input)
main = wordPairs";
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    let graph = compiled.graph().unwrap();
    // words, toFrench, (,): exactly 3 nodes — the input is shared, as
    // drawn in Fig. 8(a).
    assert_eq!(graph.len(), 3);
    assert_eq!(graph.sources().len(), 1);
    let dot = elm_runtime::dot::to_dot(graph);
    assert_eq!(dot.matches("dispatcher ->").count(), 1);
}

#[test]
fn fig8b_adds_the_mouse_to_the_synchronous_graph() {
    let src = "\
wordPairs = lift2 (\\a b -> (a, b)) Words.input (lift (\\w -> w ++ \"-fr\") Words.input)
main = lift2 (\\p m -> (p, m)) wordPairs Mouse.position";
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    let graph = compiled.graph().unwrap();
    assert_eq!(graph.len(), 5);
    assert_eq!(graph.sources().len(), 2);
    assert!(graph.async_sources().is_empty());
    // Everything is in the primary subgraph.
    assert!(graph.subgraph_owner().iter().all(Option::is_none));
}

#[test]
fn fig8c_async_splits_primary_and_secondary() {
    let src = "\
wordPairs = lift2 (\\a b -> (a, b)) Words.input (lift (\\w -> w ++ \"-fr\") Words.input)
main = lift2 (\\p m -> (p, m)) (async wordPairs) Mouse.position";
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    let graph = compiled.graph().unwrap();
    assert_eq!(graph.async_sources().len(), 1);
    // Sources: words (secondary), async node, mouse (primary).
    assert_eq!(graph.sources().len(), 3);

    let owner = graph.subgraph_owner();
    let secondary = owner.iter().filter(|o| o.is_some()).count();
    assert_eq!(secondary, 3, "words + toFrench + (,) are secondary");

    let dot = elm_runtime::dot::to_dot(graph);
    assert!(dot.contains("subgraph cluster_"));
    assert!(dot.contains("secondary subgraph of"));
    assert!(dot.contains("[style=dotted, label=\"buffer\"]"));
}

#[test]
fn example3_graph_matches_its_figure_description() {
    // §2 Example 3: input field, mouse, async image fetch, lift3 scene.
    let src = "\
getImage tags = lift (\\t -> \"img:\" ++ t) tags
main = lift3 (\\a b c -> (a, (b, c))) Input.text Mouse.position (async (getImage Input.text))";
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    let graph = compiled.graph().unwrap();
    assert_eq!(graph.async_sources().len(), 1);
    // Input.text feeds both the scene (primary) and getImage (secondary);
    // primary reachability wins in the partition.
    let owner = graph.subgraph_owner();
    let input_id = graph.input_named("Input.text").unwrap();
    assert_eq!(owner[input_id.index()], None);
}
