//! Golden tests for the purely functional layout figures:
//! Fig. 1 (Example 1's layout) and Fig. 12 (the shapes collage).

use elm_graphics::render::{ascii, html, svg};
use elm_graphics::{
    collage, dashed, degrees, flow, layout, ngon, oval, palette, path, rect, solid, Direction,
    Element, Form, Position,
};

fn example1() -> Element {
    let content = flow(
        Direction::Down,
        vec![
            Element::plain_text("Welcome to Elm!"),
            Element::image(150, 50, "flower.jpg"),
            Element::as_text("[9, 8, 7, 6, 5, 4, 3, 2, 1]"),
        ],
    );
    Element::container(180, 100, Position::MIDDLE, content)
}

#[test]
fn fig1_ascii_raster_is_stable() {
    let dl = layout(&example1());
    let raster = ascii::to_ascii(&dl);
    // The raster is deterministic; pin its load-bearing properties.
    // 100px tall scene at 16px per character row → 7 rows.
    assert_eq!(raster.lines().count(), 100usize.div_ceil(16));
    assert!(raster.contains("come to Elm!"), "{raster}");
    assert!(raster.contains('\u{2592}'), "image block present");
}

#[test]
fn fig1_display_list_geometry() {
    let el = example1();
    let dl = layout(&el);
    assert_eq!((dl.width, dl.height), (180, 100));
    assert_eq!(dl.items.len(), 3);
    let [text, image, astext] = &dl.items[..] else {
        panic!("three primitives")
    };
    // Vertically contiguous (flow down), horizontally left-aligned within
    // the flow box, which is centered in the container.
    assert_eq!(image.y, text.y + text.height as i32);
    assert_eq!(astext.y, image.y + image.height as i32);
    assert_eq!(text.x, image.x);
    let flow_height = text.height + image.height + astext.height;
    assert_eq!(text.y, (100 - flow_height as i32) / 2);
}

#[test]
fn fig1_html_golden_structure() {
    let page = html::to_html_page("fig1", &example1());
    assert!(page.contains("<title>fig1</title>"));
    assert_eq!(page.matches("position:absolute").count(), 3);
    assert!(page.contains("Welcome to Elm!"));
    assert!(page.contains("<img"));
    // Rendering twice is byte-identical (pure function).
    assert_eq!(page, html::to_html_page("fig1", &example1()));
}

#[test]
fn fig12_svg_golden() {
    let square = rect(70.0, 70.0);
    let pentagon = ngon(5, 20.0);
    let circle = oval(50.0, 50.0);
    let zigzag = path(vec![(0.0, 0.0), (10.0, 10.0), (0.0, 30.0), (10.0, 40.0)]);
    let main = collage(
        140,
        140,
        vec![
            Form::filled(palette::GREEN, pentagon),
            Form::outlined(dashed(palette::BLUE), circle),
            Form::outlined(solid(palette::BLACK), square).rotated(degrees(70.0)),
            Form::trace(solid(palette::RED), zigzag).shifted(40.0, 40.0),
        ],
    );
    let doc = svg::to_svg(&layout(&main));

    // Structure: 3 polygons (pentagon, circle, square) + 1 polyline.
    assert_eq!(doc.matches("<polygon").count(), 3);
    assert_eq!(doc.matches("<polyline").count(), 1);
    // The pentagon is filled green; circle dashed blue; square solid black.
    assert!(doc.contains("fill=\"rgba(115,210,22,1)\""));
    assert!(doc.contains(
        "stroke=\"rgba(52,101,164,1)\" stroke-width=\"1\" fill=\"none\" stroke-dasharray=\"8,4\""
    ));
    assert!(doc.contains("stroke=\"rgba(0,0,0,1)\""));
    // The zigzag was moved (40, 40): its first point lands at collage
    // center (70,70) + (40,-40) = (110, 30).
    assert!(doc.contains("110,30"), "{doc}");
    // Deterministic output.
    let doc2 = svg::to_svg(&layout(&collage(140, 140, vec![])));
    assert!(doc2.starts_with("<svg"));
}

#[test]
fn rotated_square_vertices_land_where_the_math_says() {
    let f = Form::outlined(solid(palette::BLACK), rect(70.0, 70.0)).rotated(degrees(70.0));
    let e = collage(140, 140, vec![f]);
    let dl = layout(&e);
    let elm_graphics::Primitive::Form(sf) = &dl.items[0].primitive else {
        panic!()
    };
    let elm_graphics::layout::ScreenFormKind::Shape { points, .. } = &sf.kind else {
        panic!()
    };
    // Corner (-35, -35) rotated 70° CCW then mapped to screen:
    let (sin, cos) = degrees(70.0).sin_cos();
    let (x, y) = (-35.0 * cos - -35.0 * sin, -35.0 * sin + -35.0 * cos);
    let expect = (70.0 + x, 70.0 - y);
    let found = points
        .iter()
        .any(|p| (p.0 - expect.0).abs() < 1e-9 && (p.1 - expect.1).abs() < 1e-9);
    assert!(found, "expected corner {expect:?} in {points:?}");
}
