//! Cross-crate integration: FElm source programs, the typed Signal DSL,
//! both schedulers, the environment simulator, and the GUI harness working
//! together.

use std::time::Duration;

use elm_environment::{Gui, MockHttp, Simulator};
use elm_graphics::Element;
use elm_runtime::{changed_values, ConcurrentRuntime, Occurrence, SyncRuntime, Value};
use elm_signals::{lift2, Engine, Opaque, SignalNetwork};
use felm::env::InputEnv;
use felm::pipeline::compile_source;

/// The FElm interpreter and the typed DSL produce identical output for the
/// same program and trace.
#[test]
fn felm_and_dsl_agree_on_the_click_counter() {
    // FElm version.
    let compiled = compile_source(
        "main = foldp (\\x c -> c + 1) 0 Mouse.clicks",
        &InputEnv::standard(),
    )
    .unwrap();
    let graph = compiled.graph().unwrap();
    let clicks = graph.input_named("Mouse.clicks").unwrap();
    let felm_out = SyncRuntime::run_trace(
        graph,
        (0..5).map(|_| Occurrence::input(clicks, Value::Unit)),
    )
    .unwrap();

    // DSL version.
    let mut net = SignalNetwork::new();
    let (c, h) = net.input::<()>("Mouse.clicks", ());
    let count = c.count();
    let prog = net.program(&count).unwrap();
    let mut run = prog.start(Engine::Synchronous);
    for _ in 0..5 {
        run.send(&h, ()).unwrap();
    }
    let dsl_out = run.drain_changes().unwrap();

    assert_eq!(
        changed_values(&felm_out),
        dsl_out.into_iter().map(Value::Int).collect::<Vec<_>>()
    );
}

/// The same FElm program behaves identically on the synchronous and the
/// concurrent scheduler (async-free ⇒ equal sequences).
#[test]
fn felm_graphs_run_identically_on_both_schedulers() {
    let compiled = compile_source(
        "main = lift2 (\\a b -> (a * 10, b)) Mouse.x (foldp (\\k n -> n + k) 0 Keyboard.lastPressed)",
        &InputEnv::standard(),
    )
    .unwrap();
    let graph = compiled.graph().unwrap();
    let mx = graph.input_named("Mouse.x").unwrap();
    let keys = graph.input_named("Keyboard.lastPressed").unwrap();
    let trace: Vec<Occurrence> = (0..40)
        .map(|k| {
            if k % 3 == 0 {
                Occurrence::input(keys, Value::Int(k))
            } else {
                Occurrence::input(mx, Value::Int(k))
            }
        })
        .collect();
    let sync_out = SyncRuntime::run_trace(graph, trace.clone()).unwrap();
    let conc_out = ConcurrentRuntime::run_trace(graph, trace).unwrap();
    assert_eq!(sync_out, conc_out);
}

/// Paper Example 3 end to end: text field + mouse + async image fetch in
/// the headless GUI, on the concurrent engine.
#[test]
fn example3_gui_stays_responsive_and_converges() {
    let http = MockHttp::image_service(Duration::from_millis(10));

    let mut net = SignalNetwork::new();
    let (field, tags, tags_h) = elm_environment::text_input(&mut net, "Enter a tag");
    let (mouse, mouse_h) = net.input::<(i64, i64)>("Mouse.position", (0, 0));
    let requests = tags.map(|t| MockHttp::request_tag(&t));
    let responses = elm_environment::sync_get(http, &requests);
    let image = responses
        .map(|r| {
            Opaque(Element::fitted_image(
                300,
                200,
                MockHttp::image_url_of(&r).unwrap_or_default(),
            ))
        })
        .async_();
    let scene = elm_signals::lift3(
        |f: Opaque<Element>, p: (i64, i64), img: Opaque<Element>| {
            Opaque(elm_graphics::flow(
                elm_graphics::Direction::Down,
                vec![f.0, Element::as_text(format!("{p:?}")), img.0],
            ))
        },
        &field,
        &mouse,
        &image,
    );
    let prog = net.program(&scene).unwrap();

    let mut gui = Gui::start(&prog, Engine::Concurrent);
    gui.send(&tags_h, "flower".to_string()).unwrap();
    gui.send(&mouse_h, (42, 7)).unwrap();
    let screen = gui.screen_ascii();
    assert!(
        screen.contains("(42, 7)"),
        "mouse position visible:\n{screen}"
    );
    // After quiescence the async image result has arrived; layout contains
    // the fitted image box (rastered as ▒).
    assert!(screen.contains('\u{2592}'), "image visible:\n{screen}");
    gui.stop();
}

/// A recorded simulator session replays identically on both engines.
#[test]
fn recorded_sessions_replay_deterministically() {
    let mut sim = Simulator::with_seed(99);
    sim.resize(300, 200);
    sim.mouse_walk(25, 20, 16);
    sim.mouse_click();
    sim.mouse_walk(25, 20, 16);
    sim.mouse_click();
    let full = sim.into_trace();
    // Keep the signals the program declares.
    let trace = elm_runtime::Trace {
        events: full
            .events
            .into_iter()
            .filter(|e| e.input == "Mouse.position" || e.input == "Mouse.clicks")
            .collect(),
    };

    let build = || {
        let mut net = SignalNetwork::new();
        let (pos, _h) = net.input::<(i64, i64)>("Mouse.position", (0, 0));
        let (clicks, _h2) = net.input::<()>("Mouse.clicks", ());
        let count = clicks.count();
        let main = lift2(|p: (i64, i64), c: i64| (p, c), &pos, &count);
        net.program(&main).unwrap()
    };

    let run_on = |engine: Engine| {
        let prog = build();
        let mut run = prog.start(engine);
        run.send_trace(&trace).unwrap();
        let out = run.drain_changes().unwrap();
        run.stop();
        out
    };

    let sync_out = run_on(Engine::Synchronous);
    let conc_out = run_on(Engine::Concurrent);
    assert_eq!(sync_out, conc_out);
    assert_eq!(sync_out.last().unwrap().1, 2, "two clicks counted");
}

/// Trace serialization round-trips through JSON (record/replay substrate).
#[test]
fn traces_round_trip_through_json() {
    let mut sim = Simulator::with_seed(7);
    sim.type_text("hi");
    sim.mouse_move(1, 2);
    sim.run_timer(50, 200);
    let trace = sim.into_trace();

    let json = serde_json::to_string_pretty(&trace).unwrap();
    let back: elm_runtime::Trace = serde_json::from_str(&json).unwrap();
    assert_eq!(trace, back);
}
