//! Richer end-to-end GUI scenarios: whole paper examples driven by the
//! simulated environment, with assertions on the rendered screens.

use elm_environment::{inputs, Gui, Simulator};
use elm_graphics::{flow, Direction, Element};
use elm_runtime::Trace;
use elm_signals::{lift2, lift3, Engine, Opaque, SignalNetwork};

/// Keeps only the inputs a program declares, so simulator recordings can
/// drive narrower programs.
fn restrict(trace: Trace, names: &[&str]) -> Trace {
    Trace {
        events: trace
            .events
            .into_iter()
            .filter(|e| names.contains(&e.input.as_str()))
            .collect(),
    }
}

/// Fig. 14's slide show driven by a *timer* (index2): three seconds per
/// slide, recorded on the virtual clock and replayed.
#[test]
fn slideshow_advances_on_timer_ticks() {
    const PICS: [&str; 3] = ["shells.jpg", "car.jpg", "book.jpg"];

    let mut net = SignalNetwork::new();
    let (timer, _h) = net.input::<i64>(inputs::TIME_MILLIS, 0);
    let index2 = timer.count();
    let main = index2.map(|i| {
        let pic = PICS[(i.rem_euclid(PICS.len() as i64)) as usize];
        Opaque(flow(
            Direction::Down,
            vec![
                Element::image(200, 120, pic),
                Element::plain_text(format!("slide {i}: {pic}")),
            ],
        ))
    });
    let prog = net.program(&main).unwrap();

    // Record 9 seconds of timer at 3000 ms.
    let mut sim = Simulator::new();
    sim.run_timer(3000, 9000);
    let trace = restrict(sim.into_trace(), &[inputs::TIME_MILLIS]);

    let mut gui = Gui::start(&prog, Engine::Synchronous);
    let frames = gui.play(&trace).unwrap();
    assert_eq!(frames, 3, "three ticks in nine seconds");
    assert!(gui.screen_ascii().contains("slide 3: shells.jpg"));
    gui.stop();
}

/// A character moved by arrow keys (Fig. 13's `Keyboard.arrows` record),
/// drawn as a collage; the screen reflects the accumulated position.
#[test]
fn arrows_move_a_character_on_screen() {
    use elm_graphics::{palette, rect, Form};
    use elm_signals::SignalValue;

    // The DSL program declares arrows as a record via the dynamic Value.
    let mut net = SignalNetwork::new();
    let (arrows, _h) = net.input::<elm_runtime::Value>(
        inputs::KEY_ARROWS,
        elm_runtime::Value::record([
            ("x".to_string(), elm_runtime::Value::Int(0)),
            ("y".to_string(), elm_runtime::Value::Int(0)),
        ]),
    );
    let pos = arrows.foldp((0i64, 0i64), |a, (x, y)| {
        let rec = a.as_record().expect("arrows record");
        (
            x + rec["x"].as_int().unwrap_or(0) * 20,
            y + rec["y"].as_int().unwrap_or(0) * 20,
        )
    });
    let main = pos.map(|(x, y)| {
        Opaque(elm_graphics::collage(
            160,
            160,
            vec![Form::filled(palette::RED, rect(16.0, 16.0)).shifted(x as f64, y as f64)],
        ))
    });
    let prog = net.program(&main).unwrap();

    let mut sim = Simulator::new();
    sim.arrows(1, 0).advance(50);
    sim.arrows(1, 1).advance(50);
    sim.arrows(0, 1).advance(50);
    let trace = restrict(sim.into_trace(), &[inputs::KEY_ARROWS]);

    let mut gui = Gui::start(&prog, Engine::Synchronous);
    gui.play(&trace).unwrap();
    // Position should be (40, 40) in collage coordinates: the square sits
    // up-right of center → screen up-right quadrant.
    let dl = gui.screen_layout();
    let elm_graphics::Primitive::Form(sf) = &dl.items[0].primitive else {
        panic!("expected the character form")
    };
    let elm_graphics::layout::ScreenFormKind::Shape { points, .. } = &sf.kind else {
        panic!()
    };
    let cx = points.iter().map(|p| p.0).sum::<f64>() / points.len() as f64;
    let cy = points.iter().map(|p| p.1).sum::<f64>() / points.len() as f64;
    assert!((cx - 120.0).abs() < 1e-9, "x: {cx}");
    assert!((cy - 40.0).abs() < 1e-9, "y: {cy}");
    let _ = <(i64, i64)>::from_value; // silence unused-import pedantry paths
    gui.stop();
}

/// The full Example 3 session recorded by the simulator: typing emits both
/// `Keyboard.lastPressed` and `Input.text`, the mouse keeps moving, and
/// the final screen shows everything.
#[test]
fn example3_full_session_via_simulator() {
    use elm_environment::MockHttp;
    use std::time::Duration;

    let http = MockHttp::image_service(Duration::from_millis(5));

    let mut net = SignalNetwork::new();
    let (field, tags, _ht) = elm_environment::text_input(&mut net, "Enter a tag");
    let (mouse, _hm) = net.input::<(i64, i64)>(inputs::MOUSE_POSITION, (0, 0));
    let requests = tags.map(|t| MockHttp::request_tag(&t));
    let responses = elm_environment::sync_get(http.clone(), &requests);
    let image = responses
        .map(|r| {
            Opaque(Element::fitted_image(
                300,
                60,
                MockHttp::image_url_of(&r).unwrap_or_default(),
            ))
        })
        .async_();
    let scene = lift3(
        |f: Opaque<Element>, p: (i64, i64), img: Opaque<Element>| {
            Opaque(flow(
                Direction::Down,
                vec![f.0, Element::as_text(format!("{p:?}")), img.0],
            ))
        },
        &field,
        &mouse,
        &image,
    );
    let prog = net.program(&scene).unwrap();

    let mut sim = Simulator::with_seed(42);
    sim.mouse_move(5, 5).advance(20);
    sim.type_text("cat");
    sim.mouse_move(50, 60).advance(20);
    let trace = restrict(
        sim.into_trace(),
        &[inputs::MOUSE_POSITION, inputs::INPUT_TEXT],
    );

    let mut gui = Gui::start(&prog, Engine::Concurrent);
    gui.play(&trace).unwrap();
    let screen = gui.screen_ascii();
    assert!(screen.contains("cat"), "typed text visible:\n{screen}");
    assert!(screen.contains("(50, 60)"), "mouse visible:\n{screen}");
    assert!(
        http.requests_served() >= 3,
        "one request per keystroke (plus the default)"
    );
    gui.stop();
}

/// keepWhen gating from the shift key: a recorder that only logs mouse
/// positions while shift is held.
#[test]
fn shift_gated_recording() {
    let mut net = SignalNetwork::new();
    let (shift, _hs) = net.input::<i64>(inputs::KEY_SHIFT, 0);
    let (mouse, _hm) = net.input::<(i64, i64)>(inputs::MOUSE_POSITION, (0, 0));
    let gate = shift.map(|s| s != 0);
    let gated = mouse.keep_when(&gate, (0, 0));
    let count = gated.count();
    let main = lift2(|c: i64, m: (i64, i64)| (c, m), &count, &mouse);
    let prog = net.program(&main).unwrap();

    let mut sim = Simulator::new();
    sim.mouse_move(1, 1).advance(10); // not recorded
    sim.shift(true).advance(10);
    sim.mouse_move(2, 2).advance(10); // recorded
    sim.mouse_move(3, 3).advance(10); // recorded
    sim.shift(false).advance(10);
    sim.mouse_move(4, 4).advance(10); // not recorded
    let trace = restrict(
        sim.into_trace(),
        &[inputs::KEY_SHIFT, inputs::MOUSE_POSITION],
    );

    let mut gui_prog = prog.start(Engine::Synchronous);
    gui_prog.send_trace(&trace).unwrap();
    let outs = gui_prog.drain_changes().unwrap();
    assert_eq!(outs.last().unwrap().0, 2, "exactly two gated positions");
}
