//! # elm-frp — a reproduction of *Asynchronous Functional Reactive
//! Programming for GUIs* (Czaplicki & Chong, PLDI 2013)
//!
//! This workspace rebuilds the paper's entire system in Rust:
//!
//! | Crate | Paper artifact |
//! |-------|----------------|
//! | [`runtime`] | the concurrent pipelined signal runtime (§3.3.2, Figs. 9–11), plus synchronous and pull-based baseline schedulers |
//! | [`signals`] | the typed `Signal` library with `lift`/`foldp`/`async` and the §4.2 combinators |
//! | [`felm`] | the FElm core calculus: parser, stratified type system (Fig. 4), two-stage semantics (Figs. 5–6) |
//! | [`graphics`] | purely functional layout: Elements, Forms, collage (§4.1, Fig. 12) |
//! | [`automaton`] | discrete Arrowized FRP (§4.3) |
//! | [`environment`] | the simulated browser: virtual clock, input devices, mock HTTP, headless GUI harness |
//! | [`compiler`] | the Elm-to-JavaScript compiler (§5) |
//!
//! See `DESIGN.md` for the system inventory and per-experiment index, and
//! `EXPERIMENTS.md` for reproduced results.
//!
//! ## Quickstart
//!
//! ```
//! use elm_frp::prelude::*;
//!
//! // main = lift asText Mouse.position      (paper Example 2)
//! let mut net = SignalNetwork::new();
//! let (mouse, h) = net.input::<(i64, i64)>("Mouse.position", (0, 0));
//! let main = mouse.map(|p| Opaque(Element::as_text(format!("{p:?}"))));
//! let program = net.program(&main).unwrap();
//!
//! let mut gui = Gui::start(&program, Engine::Concurrent);
//! gui.send(&h, (3, 4)).unwrap();
//! assert!(gui.screen_ascii().contains("(3, 4)"));
//! gui.stop();
//! ```

pub use elm_automaton as automaton;
pub use elm_compiler as compiler;
pub use elm_environment as environment;
pub use elm_graphics as graphics;
pub use elm_runtime as runtime;
pub use elm_signals as signals;
pub use felm;

/// The most common imports, for examples and quick starts.
pub mod prelude {
    pub use elm_automaton::{combine, foldp_via_automaton, run as run_automaton, Automaton};
    pub use elm_environment::{text_input, Gui, MockHttp, Simulator, VirtualClock};
    pub use elm_graphics::{
        collage, flow, layers, palette, Color, Direction, Element, Form, Position, Text,
    };
    pub use elm_signals::{
        combine as combine_signals, lift2, lift3, lift4, merges, zip, Engine, InputHandle, Opaque,
        Program, Running, Signal, SignalNetwork, SignalValue,
    };
}
