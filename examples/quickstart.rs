//! Quickstart — paper §2, Example 1: purely functional layout.
//!
//! ```text
//! content = flow down [ plainText "Welcome to Elm!"
//!                     , image 150 50 "flower.jpg"
//!                     , asText (reverse [1..9]) ]
//! main = container 180 100 middle content
//! ```
//!
//! Run with `cargo run --example quickstart`. The "screen" is printed as
//! an ASCII raster (the headless display), and the HTML the paper's
//! compiler would emit is written to `target/quickstart.html`.

use elm_frp::prelude::*;
use elm_graphics::render::{ascii, html};

fn main() {
    let reversed: Vec<i64> = (1..=9).rev().collect();
    let content = flow(
        Direction::Down,
        vec![
            Element::plain_text("Welcome to Elm!"),
            Element::image(150, 50, "flower.jpg"),
            Element::as_text(format!("{reversed:?}")),
        ],
    );
    let main_el = Element::container(180, 100, Position::MIDDLE, content);

    println!(
        "-- Figure 1: basic layout ({}x{}) --",
        main_el.width, main_el.height
    );
    let dl = elm_graphics::layout(&main_el);
    print!("{}", ascii::to_ascii(&dl));

    let page = html::to_html_page("Welcome to Elm!", &main_el);
    let out = std::path::Path::new("target/quickstart.html");
    if let Err(e) = std::fs::write(out, &page) {
        eprintln!("could not write {}: {e}", out.display());
    } else {
        println!("\nwrote {} ({} bytes)", out.display(), page.len());
    }

    // The same layout, inspected: the container centers its content.
    println!("\nprimitives:");
    for item in &dl.items {
        println!(
            "  at ({:>3},{:>3}) {:>3}x{:<3} {:?}",
            item.x,
            item.y,
            item.width,
            item.height,
            kind_name(&item.primitive)
        );
    }
}

fn kind_name(p: &elm_graphics::Primitive) -> &'static str {
    match p {
        elm_graphics::Primitive::Fill(_) => "fill",
        elm_graphics::Primitive::Text(_) => "text",
        elm_graphics::Primitive::Image { .. } => "image",
        elm_graphics::Primitive::Video { .. } => "video",
        elm_graphics::Primitive::Form(_) => "form",
    }
}
