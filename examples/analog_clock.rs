//! The analog clock — §5 mentions "a nine-line analog clock" among the
//! programs built with the Elm compiler. The reactive core here is the
//! same nine lines of signal code: a timer signal lifted through a pure
//! rendering function built from collage forms.
//!
//! Run with `cargo run --example analog_clock`; writes `target/clock.svg`.

use elm_frp::prelude::*;
use elm_graphics::render::{ascii, svg};
use elm_graphics::{circle, degrees, ngon, segment, solid, Form};

/// The pure view: a clock face for a time in seconds. (The nine-line Elm
/// program is `main = lift clock (every second)` plus this arithmetic.)
fn clock(seconds: i64) -> Element {
    let hand = |len: f64, turns: f64, color| {
        let angle = degrees(90.0 - turns * 360.0);
        Form::trace(
            solid(color),
            segment((0.0, 0.0), (len * angle.cos(), len * angle.sin())),
        )
    };
    let s = (seconds % 60) as f64 / 60.0;
    let m = (seconds % 3600) as f64 / 3600.0;
    let h = (seconds % 43200) as f64 / 43200.0;
    collage(
        200,
        200,
        vec![
            Form::outlined(solid(palette::BLACK), circle(90.0)),
            Form::filled(palette::CHARCOAL, ngon(12, 4.0)),
            hand(80.0, s, palette::RED),
            hand(70.0, m, palette::BLACK),
            hand(45.0, h, palette::BLACK),
        ],
    )
}

fn main() {
    // The reactive program: main = lift clock Time.millis-as-seconds.
    let mut net = SignalNetwork::new();
    let (time_ms, tick) = net.input::<i64>("Time.millis", 0);
    let main_sig = time_ms.map(|ms| Opaque(clock(ms / 1000)));
    let program = net.program(&main_sig).unwrap();

    let mut gui = Gui::start(&program, Engine::Synchronous);

    // Simulate 10:08:30 and a couple of ticking seconds.
    let base = (10 * 3600 + 8 * 60 + 30) * 1000i64;
    for extra in [0i64, 1000, 2000] {
        gui.send(&tick, base + extra).unwrap();
    }
    println!("clock at 10:08:32 —");
    print!("{}", gui.screen_ascii());

    let doc = svg::to_svg(&gui.screen_layout());
    std::fs::create_dir_all("target").ok();
    match std::fs::write("target/clock.svg", &doc) {
        Ok(()) => println!("wrote target/clock.svg ({} bytes)", doc.len()),
        Err(e) => eprintln!("could not write clock.svg: {e}"),
    }
    println!("frames rendered: {}", gui.frames().len());
    let _ = ascii::CELL_W; // renderer constants are public API
    gui.stop();
}
