//! Mouse tracker — paper §2, Example 2: `main = lift asText Mouse.position`.
//!
//! "Although extremely simple to describe, this is often head-scratchingly
//! difficult to implement in today's GUI frameworks … In Elm, however, it
//! is a one liner."
//!
//! A simulated user moves the mouse; each change re-renders the screen.
//! Run with `cargo run --example mouse_tracker`.

use elm_frp::prelude::*;

fn main() {
    // The one-liner.
    let mut net = SignalNetwork::new();
    let (mouse, _h) = net.input::<(i64, i64)>("Mouse.position", (0, 0));
    let main_sig = mouse.map(|p| Opaque(Element::as_text(format!("{p:?}"))));
    let program = net.program(&main_sig).unwrap();

    println!("signal graph:\n{}", program.to_dot());

    // Drive it with a recorded mouse session.
    let mut sim = Simulator::with_seed(2013);
    sim.resize(200, 60);
    sim.mouse_walk(8, 40, 16);
    let trace = only(sim.into_trace(), "Mouse.position");

    let mut gui = Gui::start(&program, Engine::Concurrent);
    let frames = gui.play(&trace).expect("trace replays");
    println!("{frames} frames rendered; final screen:");
    print!("{}", gui.screen_ascii());
    let snapshot = gui.stats();
    println!(
        "events={} computations={} memo_skips={}",
        snapshot.events, snapshot.computations, snapshot.memo_skips
    );
    gui.stop();
}

/// Restricts a trace to the inputs a program declares.
fn only(trace: elm_runtime::Trace, input: &str) -> elm_runtime::Trace {
    elm_runtime::Trace {
        events: trace
            .events
            .into_iter()
            .filter(|e| e.input == input)
            .collect(),
    }
}
