//! The Elm-to-JavaScript compiler (paper §5) as a command-line tool.
//!
//! Compiles a bundled FElm program (or a file passed as the first
//! argument) to JavaScript and HTML, prints the front-end's inferred type
//! and the signal-graph shape, and writes the artifacts under `target/`.
//!
//! Run with `cargo run --example compile_elm [-- path/to/program.elm]`.

use felm::env::InputEnv;
use felm::pipeline::compile_source;

const BUNDLED: &str = "\
-- Paper Fig. 14's counting core, compiled to JavaScript.
count s = foldp (\\x c -> c + 1) 0 s
index1 = count Mouse.clicks
main = lift (\\i -> i % 3) index1
";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (name, source) = match args.get(1) {
        Some(path) => {
            let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            (path.clone(), src)
        }
        None => (
            "<bundled slideshow counter>".to_string(),
            BUNDLED.to_string(),
        ),
    };

    let env = InputEnv::standard();

    println!("compiling {name}…");
    let compiled = match compile_source(&source, &env) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile error: {e}");
            std::process::exit(1);
        }
    };
    println!("  main : {}", compiled.program_type);
    if let Some(graph) = compiled.graph() {
        println!(
            "  signal graph: {} nodes ({} sources, {} async)",
            graph.len(),
            graph.sources().len(),
            graph.async_sources().len()
        );
    } else {
        println!("  program is pure (no signal graph)");
    }

    let (js, stats) = elm_compiler::compile_with_stats(&source, &env).expect("compiles");
    let html =
        elm_compiler::compile_to_html("compiled elm program", &source, &env).expect("compiles");
    println!(
        "  {} bytes of FElm -> {} bytes of JavaScript ({} graph nodes)",
        stats.source_bytes, stats.output_bytes, stats.graph_nodes
    );

    std::fs::create_dir_all("target").ok();
    std::fs::write("target/compiled.js", &js).expect("write js");
    std::fs::write("target/compiled.html", &html).expect("write html");
    println!("  wrote target/compiled.js and target/compiled.html");

    println!("\ngenerated program section:");
    let program_start = js
        .lines()
        .position(|l| l.starts_with("var rt = new"))
        .unwrap_or(0);
    for line in js.lines().skip(program_start) {
        if !line.starts_with("if (typeof module") {
            println!("  {line}");
        }
    }
}
