//! A FElm read-eval-print loop over the full pipeline.
//!
//! Reads one expression per line from stdin, then prints its inferred type
//! and — for pure expressions — its value via both interpreters; for
//! signal expressions it prints the signal-graph summary instead.
//!
//! Try: `echo '1 + 2 * 3
//! lift (\x -> x * 2) Mouse.x
//! foldp (\k c -> c + 1) 0 Mouse.clicks' | cargo run --example felm_repl`

use std::io::BufRead;

use felm::env::InputEnv;
use felm::eval::{normalize, DEFAULT_FUEL};
use felm::eval_big::{eval, Env};
use felm::infer::infer_type;
use felm::intermediate::FinalTerm;
use felm::parser::parse_expr;
use felm::pretty::pretty;
use felm::translate::translate;

fn main() {
    let env = InputEnv::standard();
    println!("FElm REPL — one expression per line (Ctrl-D to exit)");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        println!("> {line}");
        let expr = match parse_expr(line) {
            Ok(e) => e,
            Err(e) => {
                println!("  parse error: {e}");
                continue;
            }
        };
        let ty = match infer_type(&env, &expr) {
            Ok(t) => t,
            Err(e) => {
                println!("  type error: {e}");
                continue;
            }
        };
        let normal = match normalize(&expr, DEFAULT_FUEL) {
            Ok(n) => n,
            Err(e) => {
                println!("  evaluation error: {e}");
                continue;
            }
        };
        match FinalTerm::from_expr(&normal) {
            Ok(FinalTerm::Value(v)) => {
                // Cross-check the two interpreters on the fly.
                let big = eval(&Env::empty(), &expr)
                    .map(|r| format!("{r:?}"))
                    .unwrap_or_else(|e| format!("<{e}>"));
                println!("  : {ty}");
                println!("  = {}   (big-step: {big})", pretty(&v));
            }
            Ok(FinalTerm::Signal(term)) => {
                println!("  : {ty}");
                match translate(&term, &env) {
                    Ok(graph) => println!(
                        "  = signal graph with {} node(s) ({} source(s), {} async)",
                        graph.len(),
                        graph.sources().len(),
                        graph.async_sources().len()
                    ),
                    Err(e) => println!("  translation error: {e}"),
                }
            }
            Err(e) => println!("  internal error: {e}"),
        }
    }
}
