//! Dynamic component collections — the §4.3 argument made concrete.
//!
//! "Dynamic collections and dynamic switching are possible because an
//! automaton is a pure data structure with no innate dependencies on
//! inputs … This direct embedding of AFRP gives Elm the flexibility of
//! signal functions without resorting to the use of signals-of-signals."
//!
//! Each click *adds a new counter widget at runtime*. No signals are
//! created after startup — the collection of automatons lives inside one
//! `foldp` accumulator, stepped with `combine`. Run with
//! `cargo run --example dynamic_components`.

use elm_frp::prelude::*;
use elm_signals::lift2;

/// What drives the widget collection: a new widget, or a tick for all.
#[derive(Clone, Debug, PartialEq)]
enum Msg {
    AddWidget,
    Tick,
}

/// The dynamic state: a live collection of automatons plus their outputs.
#[derive(Clone)]
struct Board {
    widgets: Vec<Automaton<i64, i64>>,
    outputs: Vec<i64>,
}

impl Board {
    fn new() -> Board {
        Board {
            widgets: Vec::new(),
            outputs: Vec::new(),
        }
    }

    fn update(&self, msg: &Msg) -> Board {
        let mut next = self.clone();
        match msg {
            Msg::AddWidget => {
                // A fresh stateful component, created at runtime: counts
                // ticks seen *since it was added*, scaled by its index.
                let scale = (next.widgets.len() + 1) as i64;
                next.widgets
                    .push(Automaton::state(0i64, move |dt, acc| acc + dt * scale));
                next.outputs.push(0);
            }
            Msg::Tick => {
                let (stepped, outs): (Vec<_>, Vec<_>) =
                    next.widgets.iter().map(|w| w.step(&1)).unzip();
                next.widgets = stepped;
                next.outputs = outs;
            }
        }
        next
    }

    fn view(&self) -> Element {
        let mut rows = vec![Element::plain_text(format!(
            "{} widget(s); click adds one, ticks advance all:",
            self.widgets.len()
        ))];
        rows.extend(
            self.outputs
                .iter()
                .enumerate()
                .map(|(k, v)| Element::as_text(format!("  widget {k} (x{}): {v}", k + 1))),
        );
        flow(Direction::Down, rows)
    }
}

fn main() {
    let mut net = SignalNetwork::new();
    let (clicks, hclick) = net.input::<()>("Mouse.clicks", ());
    let (ticks, htick) = net.input::<i64>("Time.millis", 0);

    let msgs = clicks
        .map(|()| Opaque(Msg::AddWidget))
        .merge(&ticks.map(|_| Opaque(Msg::Tick)));
    let board = msgs.foldp(Opaque(Board::new()), |m, b| Opaque(b.0.update(&m.0)));
    let main_sig = lift2(
        |b: Opaque<Board>, t: i64| {
            Opaque(flow(
                Direction::Down,
                vec![b.0.view(), Element::plain_text(format!("t = {t} ms"))],
            ))
        },
        &board,
        &ticks,
    );
    let program = net.program(&main_sig).unwrap();

    let mut gui = Gui::start(&program, Engine::Synchronous);
    // Add a widget, tick twice, add another, tick once more.
    gui.send(&hclick, ()).unwrap();
    gui.send(&htick, 100).unwrap();
    gui.send(&htick, 200).unwrap();
    gui.send(&hclick, ()).unwrap();
    gui.send(&htick, 300).unwrap();

    println!("{}", gui.screen_ascii());
    // widget 0 saw 3 ticks at x1 = 3; widget 1 saw 1 tick at x2 = 2.
    let screen = gui.screen_ascii();
    assert!(screen.contains("widget 0 (x1): 3"), "{screen}");
    assert!(screen.contains("widget 1 (x2): 2"), "{screen}");
    println!("dynamic collection behaved as specified — no signals-of-signals needed.");
    gui.stop();
}
