//! Pong — §5: "Elm has also been used to make Pong and other games, which
//! require highly interactive GUIs."
//!
//! The classic FRP game shape: inputs (frame ticks, mouse, arrow keys) are
//! sampled per frame, a pure `step` function folds the game state over
//! time (`foldp`), and a pure `view` renders the state as a collage.
//! A scripted match runs headlessly; frames render to ASCII.
//!
//! Run with `cargo run --example pong`.

use elm_frp::prelude::*;
use elm_graphics::{oval, rect, solid, Form, Text};
use elm_signals::lift3;

const W: f64 = 400.0;
const H: f64 = 240.0;
const PADDLE_H: f64 = 60.0;

/// The full game state — a pure value folded over frame inputs.
#[derive(Clone, Debug, PartialEq)]
struct Game {
    ball: (f64, f64),
    velocity: (f64, f64),
    left_y: f64,
    right_y: f64,
    score: (u32, u32),
}

impl Game {
    fn new() -> Game {
        Game {
            ball: (0.0, 0.0),
            velocity: (120.0, 75.0),
            left_y: 0.0,
            right_y: 0.0,
            score: (0, 0),
        }
    }
}

/// One frame's inputs: elapsed time, left paddle target (mouse y in
/// collage coordinates), right paddle direction (arrow keys).
#[derive(Clone, Debug, PartialEq)]
struct Frame {
    dt: f64,
    mouse_y: f64,
    arrows_y: f64,
}

/// The pure physics/logic step.
fn step(input: &Frame, g: &Game) -> Game {
    let mut g = g.clone();
    let dt = input.dt;
    // Paddles.
    g.left_y = input
        .mouse_y
        .clamp(-H / 2.0 + PADDLE_H / 2.0, H / 2.0 - PADDLE_H / 2.0);
    g.right_y = (g.right_y + input.arrows_y * 180.0 * dt)
        .clamp(-H / 2.0 + PADDLE_H / 2.0, H / 2.0 - PADDLE_H / 2.0);
    // Ball.
    let (mut x, mut y) = g.ball;
    let (mut vx, mut vy) = g.velocity;
    x += vx * dt;
    y += vy * dt;
    // Walls.
    if !(-H / 2.0 + 5.0..=H / 2.0 - 5.0).contains(&y) {
        vy = -vy;
        y = y.clamp(-H / 2.0 + 5.0, H / 2.0 - 5.0);
    }
    // Paddles at x = ±(W/2 - 15).
    let hits = |paddle_y: f64| (y - paddle_y).abs() < PADDLE_H / 2.0 + 5.0;
    if x < -W / 2.0 + 20.0 && vx < 0.0 && hits(g.left_y) {
        vx = -vx * 1.05;
        x = -W / 2.0 + 20.0;
    } else if x > W / 2.0 - 20.0 && vx > 0.0 && hits(g.right_y) {
        vx = -vx * 1.05;
        x = W / 2.0 - 20.0;
    }
    // Scoring.
    if x < -W / 2.0 {
        g.score.1 += 1;
        (x, y, vx, vy) = (0.0, 0.0, 120.0, 75.0);
    } else if x > W / 2.0 {
        g.score.0 += 1;
        (x, y, vx, vy) = (0.0, 0.0, -120.0, 75.0);
    }
    g.ball = (x, y);
    g.velocity = (vx, vy);
    g
}

/// The pure view: state to collage.
fn view(g: &Game) -> Element {
    collage(
        W as u32,
        H as u32,
        vec![
            Form::outlined(solid(palette::CHARCOAL), rect(W - 2.0, H - 2.0)),
            Form::filled(palette::BLACK, rect(10.0, PADDLE_H)).shifted(-W / 2.0 + 12.0, g.left_y),
            Form::filled(palette::BLACK, rect(10.0, PADDLE_H)).shifted(W / 2.0 - 12.0, g.right_y),
            Form::filled(palette::RED, oval(10.0, 10.0)).shifted(g.ball.0, g.ball.1),
            Form::text(Text::plain(format!("{} : {}", g.score.0, g.score.1)).size(18))
                .shifted(0.0, H / 2.0 - 16.0),
        ],
    )
}

fn main() {
    let mut net = SignalNetwork::new();
    let (fps, tick) = net.input::<f64>("Time.fps", 0.0);
    let (mouse_y, hm) = net.input::<i64>("Mouse.y", 0);
    let (arrows, ha) = net.input::<(i64, i64)>("Keyboard.arrows", (0, 0));

    // Pack the current inputs, then sample them on each frame tick so the
    // game advances exactly once per frame (the Fig. 13 `Time.fps` idiom).
    let packed = lift3(
        |dt: f64, my: i64, ar: (i64, i64)| {
            Opaque(Frame {
                dt: dt / 1000.0,
                // screen y (down) to collage y (up)
                mouse_y: (H / 2.0) - my as f64,
                arrows_y: ar.1 as f64,
            })
        },
        &fps,
        &mouse_y,
        &arrows,
    );
    let per_frame = fps.sample_on(&packed);
    let state = per_frame.foldp(Opaque(Game::new()), |input, acc| {
        Opaque(step(&input.0, &acc.0))
    });
    let main_sig = state.map(|g| Opaque(view(&g.0)));
    let program = net.program(&main_sig).unwrap();

    println!("signal graph:\n{}", program.to_dot());

    let mut gui = Gui::start(&program, Engine::Synchronous);

    // Scripted match: 60 frames at ~30 fps; the left player tracks the
    // ball lazily via the mouse, the right player holds "up".
    gui.send(&ha, (0, 1)).unwrap();
    let mut shown = 0;
    for frame in 0..60 {
        // The "player" chases the ball's height with the mouse.
        let target = 120 - (frame % 30) * 4;
        gui.send(&hm, target as i64).unwrap();
        gui.send(&tick, 33.0).unwrap();
        if frame % 20 == 19 {
            shown += 1;
            println!("-- frame {} --", frame + 1);
            print!("{}", gui.screen_ascii());
        }
    }
    assert!(shown > 0);
    println!("total frames rendered: {}", gui.frames().len());
    gui.stop();
}
