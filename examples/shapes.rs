//! Shapes — paper Fig. 12: creating and combining forms.
//!
//! ```text
//! square   = rect 70 70
//! pentagon = ngon 5 20
//! circle   = oval 50 50
//! zigzag   = path [ (0,0), (10,10), (0,30), (10,40) ]
//! main = collage 140 140
//!   [ filled green pentagon
//!   , outlined (dashed blue) circle
//!   , rotate (degrees 70) (outlined (solid black) square)
//!   , move 40 40 (trace (solid red) zigzag) ]
//! ```
//!
//! Run with `cargo run --example shapes`; writes `target/shapes.svg`.

use elm_frp::prelude::*;
use elm_graphics::render::{ascii, svg};
use elm_graphics::{dashed, degrees, ngon, oval, path, rect, solid};

fn main() {
    let square = rect(70.0, 70.0);
    let pentagon = ngon(5, 20.0);
    let circle = oval(50.0, 50.0);
    let zigzag = path(vec![(0.0, 0.0), (10.0, 10.0), (0.0, 30.0), (10.0, 40.0)]);

    let main_el = collage(
        140,
        140,
        vec![
            Form::filled(palette::GREEN, pentagon),
            Form::outlined(dashed(palette::BLUE), circle),
            Form::outlined(solid(palette::BLACK), square).rotated(degrees(70.0)),
            Form::trace(solid(palette::RED), zigzag).shifted(40.0, 40.0),
        ],
    );

    let dl = elm_graphics::layout(&main_el);
    println!("-- Figure 12 collage, ASCII raster --");
    print!("{}", ascii::to_ascii(&dl));

    let doc = svg::to_svg(&dl);
    let out = std::path::Path::new("target/shapes.svg");
    match std::fs::write(out, &doc) {
        Ok(()) => println!("\nwrote {} ({} bytes of SVG)", out.display(), doc.len()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }

    // Demonstrate the transform algebra: bounds before and after rotation.
    let plain = Form::outlined(solid(palette::BLACK), rect(70.0, 70.0));
    let rotated = plain.clone().rotated(degrees(45.0));
    println!("\nsquare bounds:          {:?}", plain.bounds().unwrap());
    println!("rotated 45° bounds:     {:?}", rotated.bounds().unwrap());
}
