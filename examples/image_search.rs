//! Image search — paper §2, Example 3: the headline `async` demo.
//!
//! ```text
//! (inputField, tags) = Input.text "Enter a tag"
//! getImage tags = lift (fittedImage 300 200) (syncGet (lift requestTag tags))
//! scene input pos img = flow down [ input, asText pos, img ]
//! main = lift3 scene inputField Mouse.position (async (getImage tags))
//! ```
//!
//! The mock image service takes 40 ms per request. With `async`, mouse
//! updates keep flowing while fetches are in flight; the measured
//! responsiveness comparison is experiment E5 (`cargo bench`). Run with
//! `cargo run --example image_search`.

use std::time::Duration;

use elm_frp::prelude::*;
use elm_signals::lift3;

fn main() {
    let http = MockHttp::image_service(Duration::from_millis(40));

    let mut net = SignalNetwork::new();
    let (input_field, tags, tags_handle) = elm_environment::text_input(&mut net, "Enter a tag");
    let (mouse, mouse_handle) = net.input::<(i64, i64)>("Mouse.position", (0, 0));

    // getImage: tag -> request -> (blocking) response -> fitted image.
    let requests = tags.map(|t| MockHttp::request_tag(&t));
    let responses = elm_environment::sync_get(http.clone(), &requests);
    let image = responses.map(|r| {
        let url = MockHttp::image_url_of(&r).unwrap_or_default();
        Opaque(Element::fitted_image(300, 200, url))
    });

    // The async annotation: without it, every mouse update would wait for
    // the fetch in flight.
    let async_image = image.async_();

    let scene = lift3(
        |field: Opaque<Element>, pos: (i64, i64), img: Opaque<Element>| {
            Opaque(flow(
                Direction::Down,
                vec![field.0, Element::as_text(format!("{pos:?}")), img.0],
            ))
        },
        &input_field,
        &mouse,
        &async_image,
    );

    let program = net.program(&scene).unwrap();
    println!("signal graph:\n{}", program.to_dot());

    let mut gui = Gui::start(&program, Engine::Concurrent);

    // The user types "flower", then wiggles the mouse while the fetch is
    // in flight.
    for (i, prefix) in ["f", "fl", "flo", "flow", "flowe", "flower"]
        .iter()
        .enumerate()
    {
        gui.send(&tags_handle, prefix.to_string()).unwrap();
        gui.send(&mouse_handle, (10 + i as i64, 20)).unwrap();
    }
    println!("final screen after typing + mouse movement:");
    print!("{}", gui.screen_ascii());
    println!(
        "requests served by the mock image service: {}",
        http.requests_served()
    );
    let stats = gui.stats();
    println!(
        "events={} (async-generated: {})",
        stats.events, stats.async_events
    );
    gui.stop();
}
