//! Input widgets — §4.2: "Input components such as text boxes, buttons,
//! and sliders are represented as a pair of signals: an element (for the
//! graphical component) and a value (for the value input)."
//!
//! A small settings panel built from all four widgets, driven headlessly.
//! Run with `cargo run --example widgets`.

use elm_environment::{button, checkbox, slider, text_input};
use elm_frp::prelude::*;
use elm_signals::lift4;

fn main() {
    let mut net = SignalNetwork::new();
    let (name_field, name, h_name) = text_input(&mut net, "Your name");
    let (save_btn, saves, h_save) = button(&mut net, "Save");
    let (dark_box, dark, h_dark) = checkbox(&mut net, "dark mode");
    let (vol_slider, volume, h_vol) = slider(&mut net, "volume", 0.0, 1.0, 0.5);

    let save_count = saves.count();
    let summary = lift4(
        |n: String, d: bool, v: f64, s: i64| {
            format!("settings: name={n:?} dark={d} volume={v:.2} (saved {s}x)",)
        },
        &name,
        &dark,
        &volume,
        &save_count,
    );

    let widgets = lift4(
        |a: Opaque<Element>, b: Opaque<Element>, c: Opaque<Element>, d: Opaque<Element>| {
            Opaque(flow(Direction::Down, vec![a.0, b.0, c.0, d.0]))
        },
        &name_field,
        &save_btn,
        &dark_box,
        &vol_slider,
    );
    let main_sig = lift2(
        |w: Opaque<Element>, s: String| {
            Opaque(flow(Direction::Down, vec![w.0, Element::plain_text(s)]))
        },
        &widgets,
        &summary,
    );
    let program = net.program(&main_sig).unwrap();

    let mut gui = Gui::start(&program, Engine::Synchronous);
    println!("initial panel:");
    print!("{}", gui.screen_ascii());

    // The user fills in the panel.
    gui.send(&h_name, "Evan".to_string()).unwrap();
    gui.send(&h_dark, true).unwrap();
    gui.send(&h_vol, 0.8).unwrap();
    gui.send(&h_save, ()).unwrap();

    println!("\nafter interaction:");
    print!("{}", gui.screen_ascii());
    assert!(gui
        .screen_ascii()
        .contains("settings: name=\"Evan\" dark=true volume=0.80 (saved 1x)"));
    gui.stop();
}
