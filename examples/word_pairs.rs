//! Word pairs — paper §3.3.2's worked example and Fig. 8(a–c).
//!
//! `wordPairs = lift2 (,) words (lift toFrench words)` must stay
//! synchronous (each word matches its translation), while
//! `lift2 (,) (async wordPairs) Mouse.position` lets mouse events "jump
//! ahead" of slow translations. This example builds all three graphs of
//! Fig. 8, prints their DOT renderings, and demonstrates both behaviours.
//!
//! Run with `cargo run --example word_pairs`.

use std::time::Duration;

use elm_frp::prelude::*;

/// The slow dictionary: per-word translation cost is real wall-clock time.
fn to_french(word: &str) -> String {
    std::thread::sleep(Duration::from_millis(15));
    match word {
        "cat" => "chat".to_string(),
        "dog" => "chien".to_string(),
        "house" => "maison".to_string(),
        other => format!("le {other}"),
    }
}

fn word_pairs(net: &mut SignalNetwork) -> (Signal<(String, String)>, InputHandle<String>) {
    let (words, h) = net.input::<String>("Words.input", String::new());
    let french = words.map(|w| to_french(&w));
    (lift2(|a, b| (a, b), &words, &french), h)
}

fn main() {
    // Fig. 8(a): the synchronous wordPairs graph.
    {
        let mut net = SignalNetwork::new();
        let (pairs, h) = word_pairs(&mut net);
        let program = net.program(&pairs).unwrap();
        println!("-- Fig. 8(a): wordPairs --\n{}", program.to_dot());

        let mut run = program.start(Engine::Concurrent);
        for w in ["cat", "dog", "house"] {
            run.send(&h, w.to_string()).unwrap();
        }
        let outs = run.drain_changes().unwrap();
        println!("synchronous pairs (each word matches its translation):");
        for (en, fr) in &outs {
            println!("  {en} -> {fr}");
        }
        assert!(outs.iter().all(|(en, fr)| to_french(en) == *fr));
        run.stop();
    }

    // Fig. 8(c): async wordPairs combined with the mouse.
    {
        let mut net = SignalNetwork::new();
        let (pairs, hw) = word_pairs(&mut net);
        let (mouse, hm) = net.input::<(i64, i64)>("Mouse.position", (0, 0));
        let main_sig = lift2(
            |p: (String, String), m: (i64, i64)| (p, m),
            &pairs.async_(),
            &mouse,
        );
        let program = net.program(&main_sig).unwrap();
        println!(
            "-- Fig. 8(c): async wordPairs + mouse --\n{}",
            program.to_dot()
        );

        let mut run = program.start(Engine::Concurrent);
        run.send(&hw, "house".to_string()).unwrap();
        for k in 0..10 {
            run.send(&hm, (k, k)).unwrap();
        }
        let outs = run.drain_changes().unwrap();
        println!("interleaving (mouse may jump ahead of the translation):");
        for ((en, fr), m) in &outs {
            println!("  pairs=({en},{fr})  mouse={m:?}");
        }
        // Per-signal order is preserved even though global order is not.
        let mouse_seq: Vec<i64> = outs.iter().map(|(_, (x, _))| *x).collect();
        let mut sorted = mouse_seq.clone();
        sorted.sort_unstable();
        assert_eq!(mouse_seq, sorted, "mouse updates must stay ordered");
        run.stop();
    }
}
