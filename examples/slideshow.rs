//! Slide show — paper Fig. 14: reacting to user input.
//!
//! ```text
//! pics = [ "shells.jpg", "car.jpg", "book.jpg" ]
//! display i = image 475 315 (ith (i `mod` length pics) pics)
//! count s = foldp (\_ c -> c + 1) 0 s
//! index1 = count Mouse.clicks
//! index2 = count (Time.every (3 * second))
//! index3 = count Keyboard.lastPressed
//! main = lift display index1
//! ```
//!
//! All three index variants from the figure are built; clicks drive the
//! screen, and the timer/keyboard variants are shown side by side.
//! Run with `cargo run --example slideshow`.

use elm_frp::prelude::*;

const PICS: [&str; 3] = ["shells.jpg", "car.jpg", "book.jpg"];

fn display(i: i64) -> Element {
    let pic = PICS[(i.rem_euclid(PICS.len() as i64)) as usize];
    flow(
        Direction::Down,
        vec![
            Element::image(475, 315, pic),
            Element::plain_text(format!("showing {pic}")),
        ],
    )
}

fn main() {
    let mut net = SignalNetwork::new();
    let (clicks, click_handle) = net.input::<()>("Mouse.clicks", ());
    let (timer, timer_handle) = net.input::<i64>("Time.millis", 0);
    let (keys, key_handle) = net.input::<i64>("Keyboard.lastPressed", 0);

    // The three counters of Fig. 14.
    let index1 = clicks.count();
    let index2 = timer.count();
    let index3 = keys.count();

    let main_sig = lift3(
        |i1: i64, i2: i64, i3: i64| {
            Opaque(flow(
                Direction::Down,
                vec![
                    display(i1),
                    Element::plain_text(format!(
                        "clicks: {i1}  timer ticks: {i2}  key presses: {i3}"
                    )),
                ],
            ))
        },
        &index1,
        &index2,
        &index3,
    );
    let program = net.program(&main_sig).unwrap();

    let mut gui = Gui::start(&program, Engine::Synchronous);
    println!("initial screen:");
    print!("{}", gui.screen_ascii());

    // The user clicks through the slide show…
    for _ in 0..2 {
        gui.send(&click_handle, ()).unwrap();
    }
    // …three seconds pass (one tick per 3000 ms, simulated)…
    gui.send(&timer_handle, 3000).unwrap();
    // …and a key is pressed.
    gui.send(&key_handle, 32).unwrap();

    println!("\nafter 2 clicks, 1 timer tick, 1 key press:");
    print!("{}", gui.screen_ascii());

    println!("\nframes rendered: {}", gui.frames().len());
    gui.stop();
}

use elm_signals::lift3;
