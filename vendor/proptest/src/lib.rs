//! Offline stand-in for the `proptest` crate.
//!
//! Random-generation property testing with proptest's API shape but
//! without shrinking: a failing case panics with the generated inputs in
//! the assertion message instead of minimizing them. Strategies are
//! composable generator objects ([`strategy::Strategy`]); the `proptest!`
//! macro expands each property into a `#[test]` that runs
//! `ProptestConfig::cases` deterministic cases.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy combinators and the [`Strategy`](strategy::Strategy) trait.
pub mod strategy {
    use super::*;

    /// A generator of values of type `Value`.
    ///
    /// Unlike real proptest there is no shrinking: `new_tree` captures a
    /// single generated value.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
        where
            Self: 'static,
            Self::Value: 'static,
            O: 'static,
            F: Fn(Self::Value) -> O + 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| f(inner.generate(rng)))
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
            Self::Value: 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| inner.generate(rng))
        }

        /// Generates one value wrapped in a [`ValueTree`].
        ///
        /// # Errors
        ///
        /// Never fails here; the `Result` mirrors real proptest.
        fn new_tree(
            &self,
            runner: &mut crate::test_runner::TestRunner,
        ) -> Result<TestTree<Self::Value>, String> {
            Ok(TestTree {
                value: self.generate(runner.rng()),
            })
        }
    }

    /// A generated value (real proptest's shrink tree, minus shrinking).
    pub trait ValueTree {
        /// The type of the captured value.
        type Value;

        /// The current (= only) value.
        fn current(&self) -> Self::Value;
    }

    /// The concrete [`ValueTree`]: just the generated value.
    pub struct TestTree<T> {
        pub(crate) value: T,
    }

    impl<T: Clone> ValueTree for TestTree<T> {
        type Value = T;

        fn current(&self) -> T {
            self.value.clone()
        }
    }

    /// A type-erased, reference-counted strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut StdRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a generator closure.
        pub fn from_fn(f: impl Fn(&mut StdRng) -> T + 'static) -> Self {
            BoxedStrategy { gen: Rc::new(f) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.gen)(rng)
        }
    }

    /// A strategy that always yields the same value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice among boxed strategies (`prop_oneof!` backend).
    pub struct Union;

    impl Union {
        /// Builds the weighted-choice strategy.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty or all weights are zero.
        #[allow(clippy::new_ret_no_self)] // mirrors the real proptest signature
        pub fn new<T: 'static>(options: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
            let total: u32 = options.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted option");
            BoxedStrategy::from_fn(move |rng| {
                let mut pick = rng.gen_range(0..total);
                for (w, s) in &options {
                    if pick < *w {
                        return s.generate(rng);
                    }
                    pick -= w;
                }
                unreachable!("weights covered the whole range")
            })
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident $idx:tt),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// String strategies from a small regex subset: literal characters,
    /// `[a-z0-9_]`-style classes, and `{n}` / `{m,n}` / `?` / `*` / `+`
    /// quantifiers (with `*`/`+` capped at 8 repeats).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal.
            let atom: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
                    let class = expand_class(&chars[i + 1..close], pattern);
                    i = close + 1;
                    class
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling `\\` in pattern {pattern:?}"));
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse::<usize>().unwrap(),
                            n.trim().parse::<usize>().unwrap(),
                        ),
                        None => {
                            let n = body.trim().parse::<usize>().unwrap();
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            let reps = rng.gen_range(lo..=hi);
            for _ in 0..reps {
                out.push(atom[rng.gen_range(0..atom.len())]);
            }
        }
        out
    }

    fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
        let mut chars = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                for c in lo..=hi {
                    chars.push(char::from_u32(c).unwrap());
                }
                i += 3;
            } else {
                chars.push(body[i]);
                i += 1;
            }
        }
        assert!(!chars.is_empty(), "empty class in pattern {pattern:?}");
        chars
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::{BoxedStrategy, Strategy};
    use super::*;

    /// A range of collection sizes.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// A strategy for `Vec`s whose length is drawn from `size`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        let size = size.into();
        BoxedStrategy::from_fn(move |rng| {
            let len = rng.gen_range(size.lo..size.hi_exclusive);
            (0..len).map(|_| element.generate(rng)).collect()
        })
    }
}

/// Test-runner state and configuration.
pub mod test_runner {
    use super::*;

    /// How many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Holds the RNG driving generation.
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// A runner with a fixed seed: identical values every run.
        pub fn deterministic() -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(0x70726f7074657374),
            }
        }

        /// The generation RNG.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner::deterministic()
        }
    }
}

/// Arbitrary: default strategies per type (`any::<T>()`).
pub mod arbitrary {
    use super::strategy::BoxedStrategy;
    use super::*;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// The whole-domain strategy for `Self`.
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> BoxedStrategy<$t> {
                    BoxedStrategy::from_fn(|rng| rng.gen_range(<$t>::MIN..=<$t>::MAX))
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary() -> BoxedStrategy<bool> {
            BoxedStrategy::from_fn(|rng| rng.gen_bool(0.5))
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary() -> BoxedStrategy<f64> {
            // Finite, sign-symmetric, spanning many magnitudes.
            BoxedStrategy::from_fn(|rng| {
                let mag = rng.gen_range(-300i32..=300);
                rng.gen_range(-1.0f64..1.0) * 10f64.powi(mag / 10)
            })
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        T::arbitrary()
    }
}

/// Everything test files import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module alias (`prop::collection::vec`, …).
    pub use crate as prop;
}

/// Asserts a condition inside a property (panics with the message; no
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted or unweighted choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (
        ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::deterministic();
            for _case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        runner.rng(),
                    );
                )+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut runner = TestRunner::deterministic();
        let strat = (1u32..10, 0.0f64..=1.0);
        for _ in 0..200 {
            let (a, b) = strat.generate(runner.rng());
            assert!((1..10).contains(&a));
            assert!((0.0..=1.0).contains(&b));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut runner = TestRunner::deterministic();
        for _ in 0..200 {
            let s = "[a-z]{1,12}".generate(runner.rng());
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn oneof_respects_weights_loosely() {
        let mut runner = TestRunner::deterministic();
        let strat = prop_oneof![
            9 => Just(1i32),
            1 => Just(2i32),
        ];
        let ones = (0..500)
            .filter(|_| strat.generate(runner.rng()) == 1)
            .count();
        assert!(ones > 300, "weighted pick looks broken: {ones}/500");
    }

    #[test]
    fn collection_vec_obeys_size_range() {
        let mut runner = TestRunner::deterministic();
        let strat = prop::collection::vec(0u8..5, 2..6);
        for _ in 0..100 {
            let v = strat.generate(runner.rng());
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0i64..100, v in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x >= 0);
            prop_assert!(v.len() < 4);
        }
    }
}
