//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! small slice of `parking_lot` it actually uses: [`Mutex`], [`RwLock`], and
//! [`Condvar`] with the poison-free API. Each type wraps its `std::sync`
//! counterpart and swallows poisoning (parking_lot semantics: a panicking
//! holder does not poison the lock).

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex with `parking_lot`'s non-poisoning `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&self.0).finish()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&self.0).finish()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable paired with [`Mutex`], `parking_lot`-style: `wait`
/// takes the guard by `&mut`.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

/// Result of a timed wait: whether the wait timed out.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(&mut guard.0, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(&mut guard.0, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Temporarily moves the std guard out of `slot` to thread it through a
/// consuming std API, then puts the returned guard back.
fn replace_guard<'a, T: ?Sized>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // Safety: `slot` is immediately re-initialized with the guard returned
    // by `f`; no code can observe the moved-out state, and `f` returning a
    // guard for the same mutex preserves the lock invariant. A panic inside
    // `f` (only possible on poisoned-mutex unwrap, which we map away)
    // would abort via double-drop protection, never expose uninitialized
    // memory to safe code.
    unsafe {
        let guard = std::ptr::read(slot);
        let new = f(guard);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
