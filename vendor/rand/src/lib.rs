//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Implements the subset the workspace uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer/float ranges, [`Rng::gen_bool`], and
//! [`rngs::StdRng`]. The generator is xoshiro256** seeded via splitmix64 —
//! deterministic per seed, which is all the simulator and property tests
//! rely on (they never assume rand's exact stream).

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds an RNG from OS entropy — here, from the current time.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain (rand's `Standard`
/// distribution, flattened into a trait).
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Maps 64 random bits onto `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value of type `T` can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream expands the seed into the full state, as
            // the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A fresh time-seeded RNG (rand's `thread_rng`, minus the thread-local
/// caching — callers here only use it for one-off seeds).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let stream = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..16).map(|_| r.gen_range(0..1000)).collect::<Vec<i64>>()
        };
        assert_eq!(stream(7), stream(7));
        assert_ne!(stream(7), stream(8));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let u = r.gen_range(0usize..17);
            assert!(u < 17);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
