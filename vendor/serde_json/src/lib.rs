//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde [`Content`] tree as JSON text and parses JSON
//! text back into it. Covers the subset this workspace relies on:
//! `to_string`, `to_string_pretty`, `from_str`, `to_value`, `from_value`,
//! and a [`Value`] alias for dynamic JSON.

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// Dynamic JSON value — the vendored serde data model itself.
pub type Value = Content;

/// JSON serialization or parse failure.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON.
///
/// # Errors
///
/// Never fails for the vendored data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a dynamic [`Value`].
///
/// # Errors
///
/// Never fails for the vendored data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_content())
}

/// Rebuilds a typed value from a dynamic [`Value`].
///
/// # Errors
///
/// Fails when the value's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_content(&value).map_err(Error::from)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_content(&content).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip float formatting, with serde_json's
                // convention of keeping a fractional part for integral floats.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
                    out.push_str(".0");
                }
            } else {
                // serde_json maps NaN/inf to null.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Content::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Content::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pair handling for astral chars.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Content::I64(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Content::U64(n))
        } else {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = Content::Map(vec![
            ("a".to_string(), Content::I64(-3)),
            (
                "b".to_string(),
                Content::Seq(vec![Content::Bool(true), Content::Null]),
            ),
            ("s".to_string(), Content::Str("hi \"there\"\n".to_string())),
            ("f".to_string(), Content::F64(1.5)),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"a":-3,"b":[true,null],"s":"hi \"there\"\n","f":1.5}"#
        );
        let back: Content = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = Content::Map(vec![("k".to_string(), Content::Seq(vec![Content::I64(1)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"k\": [\n"));
        let back: Content = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integral_floats_keep_fraction() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let x: f64 = from_str("2.0").unwrap();
        assert_eq!(x, 2.0);
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(s, "é😀");
        let round = to_string(&s).unwrap();
        let back: String = from_str(&round).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn typed_round_trip_via_derive_free_impls() {
        let v: Vec<(String, i64)> = vec![("x".to_string(), 1), ("y".to_string(), 2)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"[["x",1],["y",2]]"#);
        let back: Vec<(String, i64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Content>("{\"a\":").is_err());
        assert!(from_str::<Content>("[1,]").is_err());
        assert!(from_str::<Content>("12 34").is_err());
    }
}
