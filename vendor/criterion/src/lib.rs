//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness-`false` benchmark API this workspace uses:
//! groups, `bench_function` / `bench_with_input`, `iter` / `iter_custom`,
//! throughput annotation, and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is simple wall-clock sampling (no statistics
//! beyond mean over samples).
//!
//! `cargo test` also runs harness-`false` bench binaries; to keep the test
//! suite fast, each benchmark body executes exactly once in that mode.
//! Full timing only happens under `cargo bench` (detected via the
//! `--bench` argument cargo passes) or with `CRITERION_FORCE=1`.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units for per-iteration throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_id/parameter`.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Whether this process should actually measure or just smoke-run.
fn measuring() -> bool {
    std::env::args().any(|a| a == "--bench") || std::env::var_os("CRITERION_FORCE").is_some()
}

/// The top-level harness handle.
pub struct Criterion {
    measuring: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measuring: measuring(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if self.measuring {
            eprintln!("group {name}");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("default");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Annotates following benchmarks with per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into(), |b| f(b));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        if !self.criterion.measuring {
            // Smoke mode (`cargo test`): one iteration, no timing output.
            let mut b = Bencher {
                mode: Mode::Smoke,
                elapsed: Duration::ZERO,
                iters_done: 0,
            };
            f(&mut b);
            return;
        }
        // Warm-up.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut per_iter = loop {
            let mut b = Bencher {
                mode: Mode::Measure { iters: 1 },
                elapsed: Duration::ZERO,
                iters_done: 0,
            };
            f(&mut b);
            let per = b.elapsed.max(Duration::from_nanos(1));
            if Instant::now() >= warm_deadline {
                break per;
            }
        };
        // Sampling: pick an iteration count per sample that fits the budget.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
                .clamp(1, 1_000_000_000) as u64;
            let mut b = Bencher {
                mode: Mode::Measure { iters },
                elapsed: Duration::ZERO,
                iters_done: 0,
            };
            f(&mut b);
            total += b.elapsed;
            total_iters += b.iters_done;
            per_iter = Duration::from_nanos(
                (b.elapsed.as_nanos() / u128::from(b.iters_done.max(1))).max(1) as u64,
            );
        }
        let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!(" ({:.3} Melem/s)", n as f64 / mean_ns * 1e9 / 1e6),
            Throughput::Bytes(n) => format!(
                " ({:.3} MiB/s)",
                n as f64 / mean_ns * 1e9 / (1 << 20) as f64
            ),
        });
        eprintln!(
            "  {}/{:<40} {:>12.1} ns/iter{}",
            self.name,
            id.id,
            mean_ns,
            rate.unwrap_or_default()
        );
    }

    /// Ends the group (display symmetry with real criterion).
    pub fn finish(&mut self) {}
}

enum Mode {
    Smoke,
    Measure { iters: u64 },
}

/// Passed to each benchmark body to drive iterations.
pub struct Bencher {
    mode: Mode,
    elapsed: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Times repeated executions of `f`.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let iters = match self.mode {
            Mode::Smoke => 1,
            Mode::Measure { iters } => iters,
        };
        let start = Instant::now();
        for _ in 0..iters {
            hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters_done += iters;
    }

    /// Lets the body time `iters` iterations itself and report the total.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        let iters = match self.mode {
            Mode::Smoke => 1,
            Mode::Measure { iters } => iters,
        };
        self.elapsed += f(iters);
        self.iters_done += iters;
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_body_once() {
        let mut c = Criterion { measuring: false };
        let mut calls = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(50);
            group.bench_function("one", |b| b.iter(|| calls += 1));
            group.finish();
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn measuring_mode_reports_and_iterates() {
        let mut c = Criterion { measuring: true };
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.measurement_time(Duration::from_millis(30));
            group.warm_up_time(Duration::from_millis(5));
            group.throughput(Throughput::Elements(10));
            group.bench_with_input(BenchmarkId::new("n", 4), &4u32, |b, &_x| {
                b.iter(|| calls += 1)
            });
            group.finish();
        }
        assert!(calls > 3);
    }

    #[test]
    fn iter_custom_accumulates_reported_time() {
        let mut c = Criterion { measuring: true };
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.measurement_time(Duration::from_millis(10));
            group.warm_up_time(Duration::from_millis(1));
            group.bench_function("custom", |b| {
                b.iter_custom(|iters| Duration::from_nanos(iters * 100))
            });
            group.finish();
        }
    }
}
