//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides [`channel`] — MPMC channels with the `crossbeam-channel` API
//! the workspace uses (`unbounded`, `bounded`, cloneable senders *and*
//! receivers, `recv_timeout`, `try_recv`). Built on `Mutex` + `Condvar`;
//! slower than the real lock-free implementation but semantically
//! equivalent, including disconnect behavior on last-handle drop.

pub mod channel;
