//! MPMC channels (the `crossbeam-channel` subset the workspace uses).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error on [`Sender::send`]: all receivers are gone. Carries the value.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error on [`Sender::try_send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Error on [`Receiver::recv`]: channel empty and all senders gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error on [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// Channel empty and all senders gone.
    Disconnected,
}

/// Error on [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// Channel empty and all senders gone.
    Disconnected,
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    /// Waiters blocked in `recv` (signalled on push / disconnect).
    readable: Condvar,
    /// Waiters blocked in bounded `send` (signalled on pop / disconnect).
    writable: Condvar,
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Inner<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel. Cloneable (MPMC: each message is
/// delivered to exactly one receiver).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a channel of unbounded capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel holding at most `cap` messages; `send` blocks when
/// full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        readable: Condvar::new(),
        writable: Condvar::new(),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake blocked receivers so they observe
            // disconnection.
            let _guard = self.inner.lock();
            self.inner.readable.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.inner.lock();
            self.inner.writable.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Fails (returning the value) if all receivers were dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut q = self.inner.lock();
        loop {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            match self.inner.capacity {
                Some(cap) if q.len() >= cap => {
                    q = self
                        .inner
                        .writable
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        q.push_back(value);
        self.inner.readable.notify_one();
        Ok(())
    }

    /// Sends without blocking.
    ///
    /// # Errors
    ///
    /// Fails with `Full` if a bounded channel is at capacity, or
    /// `Disconnected` if all receivers were dropped.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut q = self.inner.lock();
        if self.inner.receivers.load(Ordering::SeqCst) == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.inner.capacity {
            if q.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        q.push_back(value);
        self.inner.readable.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Fails once the channel is empty and all senders were dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.inner.lock();
        loop {
            if let Some(v) = q.pop_front() {
                self.inner.writable.notify_one();
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            q = self
                .inner
                .readable
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receives a message, blocking up to `timeout`.
    ///
    /// # Errors
    ///
    /// `Timeout` if nothing arrived in time; `Disconnected` once the
    /// channel is empty and all senders were dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.inner.lock();
        loop {
            if let Some(v) = q.pop_front() {
                self.inner.writable.notify_one();
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, res) = self
                .inner
                .readable
                .wait_timeout(q, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
            if res.timed_out() && q.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// `Empty` if no message is ready; `Disconnected` once the channel is
    /// empty and all senders were dropped.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.inner.lock();
        if let Some(v) = q.pop_front() {
            self.inner.writable.notify_one();
            return Ok(v);
        }
        if self.inner.senders.load(Ordering::SeqCst) == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator over messages until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Non-blocking iterator over currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }
}

/// Blocking iterator for [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

/// Non-blocking iterator for [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let t = std::thread::spawn(move || tx.send(7).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
        t.join().unwrap();
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn mpmc_distributes_across_receivers() {
        let (tx, rx) = unbounded::<usize>();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h = std::thread::spawn(move || rx2.iter().count());
        let a = rx.iter().count();
        let b = h.join().unwrap();
        assert_eq!(a + b, 100);
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }
}
