//! Deserialization: rebuilding values from [`Content`].

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use crate::Content;

/// Deserialization failure: a human-readable path-less message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// A type-mismatch error naming what was expected and found.
    pub fn expected(what: &str, found: &Content) -> Self {
        Error(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be rebuilt from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a content tree.
    ///
    /// # Errors
    ///
    /// Fails when the tree's shape does not match `Self`.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

/// Reads a struct field from a map, treating a missing key as `Null` (so
/// `Option` fields default to `None`, as with real serde's derive).
pub fn field<T: Deserialize>(map: &Content, name: &str) -> Result<T, Error> {
    match map.get(name) {
        Some(v) => T::from_content(v).map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => {
            T::from_content(&Content::Null).map_err(|_| Error(format!("missing field `{name}`")))
        }
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let n: i128 = match content {
                    Content::I64(n) => i128::from(*n),
                    Content::U64(n) => i128::from(*n),
                    // Tolerate floats that are exactly integral (JSON has
                    // one number type).
                    Content::F64(x) if x.fract() == 0.0 => *x as i128,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(x) => Ok(*x),
            Content::I64(n) => Ok(*n as f64),
            Content::U64(n) => Ok(*n as f64),
            // serde_json writes non-finite floats as null.
            Content::Null => Ok(f64::NAN),
            other => Err(Error::expected("float", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        f64::from_content(content).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-char string", other)),
        }
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(()),
            other => Err(Error::expected("null", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Rc::new)
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Arc::new)
    }
}

impl Deserialize for Arc<str> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        String::from_content(content).map(Arc::from)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::expected("seq", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(Error::expected("map", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(Error::expected("map", other)),
        }
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let seq = content
                    .as_seq()
                    .ok_or_else(|| Error::expected("seq (tuple)", content))?;
                if seq.len() != $len {
                    return Err(Error::custom(format!(
                        "expected tuple of {} elements, found {}",
                        $len,
                        seq.len()
                    )));
                }
                Ok(($($t::from_content(&seq[$n])?,)+))
            }
        }
    )*};
}
impl_de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}
