//! Offline stand-in for the `serde` crate.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! compact serialization framework under serde's names. Instead of serde's
//! visitor architecture, values convert to and from a single self-describing
//! tree, [`Content`]; `serde_json` (also vendored) renders that tree as
//! JSON. Enum representation follows serde's externally-tagged convention,
//! so the wire shapes match what real serde would produce for the same
//! types.
//!
//! `#[derive(Serialize, Deserialize)]` works via the vendored
//! `serde_derive` proc-macro for non-generic structs and enums — exactly
//! the shapes this workspace defines.

pub mod de;
pub mod ser;

pub use de::Deserialize;
pub use ser::Serialize;
// The derive macros shadow the trait names in the macro namespace, exactly
// like real serde with the `derive` feature.
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree: the data model every [`Serialize`] type
/// lowers to and every [`Deserialize`] type is rebuilt from.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// Null / unit / `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (array / tuple).
    Seq(Vec<Content>),
    /// A map with string keys, in insertion order (struct / map / tagged
    /// enum variant).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a map key.
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short label for error messages ("map", "seq", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "seq",
            Content::Map(_) => "map",
        }
    }
}
