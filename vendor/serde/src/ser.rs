//! Serialization: lowering values into [`Content`].

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;

use crate::Content;

/// Types that can lower themselves into the [`Content`] data model.
pub trait Serialize {
    /// Produces the content tree for `self`.
    fn to_content(&self) -> Content;
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn to_content(&self) -> Content {
        if *self <= i64::MAX as u64 {
            Content::I64(*self as i64)
        } else {
            Content::U64(*self)
        }
    }
}

impl Serialize for usize {
    fn to_content(&self) -> Content {
        (*self as u64).to_content()
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        // Deterministic output regardless of hasher state.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}
