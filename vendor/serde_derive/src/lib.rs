//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote` available offline) derive macros targeting
//! the vendored `serde` crate's [`Content`] data model. Supports the item
//! shapes this workspace defines: non-generic structs (named, tuple, unit)
//! and non-generic enums (unit, tuple, and struct variants), with serde's
//! externally-tagged enum representation.
//!
//! `#[serde(...)]` attributes are not supported and produce a compile
//! error rather than silently changing meaning.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (vendored data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(item) => gen(&item)
            .parse()
            .unwrap_or_else(|e| error(&format!("serde_derive internal codegen error: {e}"))),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Input model + parser
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    data: Data,
}

enum Data {
    StructNamed(Vec<String>),
    StructTuple(usize),
    StructUnit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` outer attributes; rejects `#[serde(...)]`.
    fn skip_attrs(&mut self) -> Result<(), String> {
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let body = g.stream().to_string();
                    if body.starts_with("serde") {
                        return Err(
                            "vendored serde_derive does not support #[serde(...)] attributes"
                                .to_string(),
                        );
                    }
                }
                _ => return Err("malformed attribute".to_string()),
            }
        }
        Ok(())
    }

    /// Skips `pub`, `pub(...)`.
    fn skip_vis(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    /// Consumes tokens until a top-level `,` (angle-bracket aware),
    /// leaving the cursor *after* the comma. Returns whether anything was
    /// consumed before it.
    fn skip_until_comma(&mut self) {
        let mut angle: i32 = 0;
        let mut prev_dash = false;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && angle == 0 {
                        self.next();
                        return;
                    }
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' && !prev_dash {
                        angle -= 1;
                    }
                    prev_dash = c == '-';
                }
                _ => prev_dash = false,
            }
            self.next();
        }
    }
}

fn parse_input(ts: TokenStream) -> Result<Input, String> {
    let mut c = Cursor::new(ts);
    c.skip_attrs()?;
    c.skip_vis();
    let kw = c.expect_ident()?;
    let name = c.expect_ident()?;
    if c.is_punct('<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }
    match kw.as_str() {
        "struct" => {
            if c.is_punct(';') || c.at_end() {
                return Ok(Input {
                    name,
                    data: Data::StructUnit,
                });
            }
            match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                    name,
                    data: Data::StructNamed(parse_named_fields(g.stream())?),
                }),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Input {
                    name,
                    data: Data::StructTuple(count_tuple_elems(g.stream())),
                }),
                other => Err(format!("unsupported struct body: {other:?}")),
            }
        }
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                data: Data::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(ts: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs()?;
        if c.at_end() {
            return Ok(fields);
        }
        c.skip_vis();
        let field = c.expect_ident()?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        fields.push(field);
        c.skip_until_comma();
    }
}

/// Counts the elements of a tuple body (`A, B<C, D>, E`), angle-aware.
fn count_tuple_elems(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    let mut count = 0;
    while !c.at_end() {
        count += 1;
        c.skip_until_comma();
    }
    count
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs()?;
        if c.at_end() {
            return Ok(variants);
        }
        let name = c.expect_ident()?;
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_elems(g.stream());
                c.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip an optional discriminant and the trailing comma.
        c.skip_until_comma();
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::StructUnit => "::serde::Content::Null".to_string(),
        Data::StructTuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Data::StructTuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
        }
        Data::StructNamed(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Content::Str(::std::string::String::from({vname:?})),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Content::Map(vec![(::std::string::String::from({vname:?}), ::serde::Serialize::to_content(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Content::Map(vec![(::std::string::String::from({vname:?}), ::serde::Content::Seq(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(vec![(::std::string::String::from({vname:?}), ::serde::Content::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
             fn to_content(&self) -> ::serde::Content {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::StructUnit => format!(
            "match content {{ \
                 ::serde::Content::Null => Ok({name}), \
                 other => Err(::serde::de::Error::expected(\"null for unit struct {name}\", other)), \
             }}"
        ),
        Data::StructTuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_content(content)?))")
        }
        Data::StructTuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&seq[{i}])?"))
                .collect();
            format!(
                "let seq = content.as_seq().ok_or_else(|| ::serde::de::Error::expected(\"seq for tuple struct {name}\", content))?; \
                 if seq.len() != {n} {{ return Err(::serde::de::Error::custom(format!(\"expected {n} elements for {name}, found {{}}\", seq.len()))); }} \
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Data::StructNamed(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(content, {f:?})?"))
                .collect();
            format!(
                "if content.as_map().is_none() {{ return Err(::serde::de::Error::expected(\"map for struct {name}\", content)); }} \
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Data::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push(format!("{vname:?} => Ok({name}::{vname}),"));
                    }
                    VariantKind::Tuple(1) => {
                        tagged_arms.push(format!(
                            "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_content(inner)?)),"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&seq[{i}])?"))
                            .collect();
                        tagged_arms.push(format!(
                            "{vname:?} => {{ \
                                 let seq = inner.as_seq().ok_or_else(|| ::serde::de::Error::expected(\"seq for variant {name}::{vname}\", inner))?; \
                                 if seq.len() != {n} {{ return Err(::serde::de::Error::custom(format!(\"expected {n} elements for {name}::{vname}, found {{}}\", seq.len()))); }} \
                                 Ok({name}::{vname}({})) \
                             }}",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::de::field(inner, {f:?})?"))
                            .collect();
                        tagged_arms.push(format!(
                            "{vname:?} => Ok({name}::{vname} {{ {} }}),",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match content {{ \
                     ::serde::Content::Str(tag) => match tag.as_str() {{ \
                         {} \
                         other => Err(::serde::de::Error::custom(format!(\"unknown unit variant `{{other}}` for {name}\"))), \
                     }}, \
                     ::serde::Content::Map(entries) if entries.len() == 1 => {{ \
                         let (tag, inner) = &entries[0]; \
                         match tag.as_str() {{ \
                             {} \
                             other => Err(::serde::de::Error::custom(format!(\"unknown variant `{{other}}` for {name}\"))), \
                         }} \
                     }}, \
                     other => Err(::serde::de::Error::expected(\"externally tagged enum {name}\", other)), \
                 }}",
                unit_arms.join(" "),
                tagged_arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
             fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::de::Error> {{ {body} }} \
         }}"
    )
}
